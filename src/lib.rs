//! # popmon — Optimal Positioning of Active and Passive Monitoring Devices
//!
//! Facade crate for the reproduction of Chaudet, Fleury, Guérin Lassous,
//! Rivano & Voge, *Optimal Positioning of Active and Passive Monitoring
//! Devices*, CoNEXT 2005.
//!
//! This crate re-exports the whole workspace so that applications can write
//! `use popmon::placement::...` without tracking individual crates:
//!
//! * [`netgraph`] — graph substrate (shortest paths, k-shortest paths);
//! * [`milp`] — from-scratch LP/MIP solver standing in for CPLEX;
//! * [`mcmf`] — min-cost flow / max flow and the MECF auxiliary graph;
//! * [`popgen`] — POP topology and traffic-matrix generators;
//! * [`placement`] — the paper's contribution: PPM(k), PPME(h,k),
//!   PPME*(x,h,k) and active beacon placement;
//! * [`engine`] — the parallel scenario engine driving experiment sweeps
//!   across a worker pool with deterministic reports.
//!
//! See `examples/quickstart.rs` for an end-to-end tour and `DESIGN.md` for
//! the crate graph, the experiment index, and the engine's threading
//! model.

#![forbid(unsafe_code)]

pub use engine;
pub use mcmf;
pub use milp;
pub use netgraph;
pub use placement;
pub use popgen;
