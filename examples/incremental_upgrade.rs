//! Incremental deployment (paper Sections 1 and 4.3): an operator already
//! runs a monitoring deployment and wants to (a) know what a coverage
//! upgrade costs when installed taps cannot move, and (b) estimate the
//! gain of buying a few more devices before committing budget.
//!
//! Run with: `cargo run --release --example incremental_upgrade`

use popmon::placement::instance::PpmInstance;
use popmon::placement::passive::{
    expected_gain, solve_budget, solve_incremental, solve_ppm_exact, ExactOptions,
};
use popmon::popgen::{PopSpec, TrafficSpec};

fn main() {
    let pop = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop, 123);
    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    let opts = ExactOptions::default();

    // Year one: the operator deployed an optimal k = 0.8 architecture.
    let base = solve_ppm_exact(&inst, 0.8, &opts).expect("feasible");
    println!(
        "installed base: {} devices covering {:.1}% of the traffic",
        base.device_count(),
        100.0 * base.coverage_fraction()
    );

    // Year two: upgrade targets, devices cannot move.
    println!("\nupgrade cost (installed devices are pinned):");
    println!("  target | total devices | from-scratch optimum | pin penalty");
    for k_pct in [90, 95, 100] {
        let k = k_pct as f64 / 100.0;
        let inc = solve_incremental(&inst, k, &base.edges, &opts).expect("feasible");
        let scratch = solve_ppm_exact(&inst, k, &opts).expect("feasible");
        println!(
            "    {k_pct}%  |      {:>2}       |          {:>2}          |     {}",
            inc.device_count(),
            scratch.device_count(),
            inc.device_count() - scratch.device_count()
        );
    }

    // Procurement: what does each extra device buy?
    println!("\nexpected gain of buying devices (placed optimally on the base):");
    for extra in 1..=4usize {
        let gain = expected_gain(&inst, &base.edges, extra, &opts);
        let after = solve_budget(&inst, extra, &base.edges, &opts);
        println!(
            "  +{extra} device(s): +{:.1} volume -> {:.1}% coverage",
            gain,
            100.0 * after.coverage_fraction()
        );
    }
}
