//! Active monitoring (paper Section 6): compute the probe set Φ for a set
//! of candidate beacons and compare the three placement strategies.
//!
//! Run with: `cargo run --release --example active_probing`

use popmon::placement::active::{
    compute_probes, place_beacons_greedy, place_beacons_ilp, place_beacons_thiran,
};
use popmon::popgen::PopSpec;

fn main() {
    let pop = PopSpec::paper_15().build();
    // Probes travel between routers only: strip the virtual endpoints.
    let (graph, _) = pop.router_subgraph();
    println!(
        "router graph: {} routers, {} links",
        graph.node_count(),
        graph.edge_count()
    );

    // Candidate beacons V_B: every router may host a beacon.
    let candidates: Vec<_> = graph.nodes().collect();
    let probes = compute_probes(&graph, &candidates);
    println!(
        "probe set Phi: {} probes covering {}/{} links",
        probes.len(),
        probes.covered.iter().filter(|&&c| c).count(),
        graph.edge_count()
    );

    let thiran = place_beacons_thiran(&probes, &candidates);
    let greedy = place_beacons_greedy(&probes, &candidates);
    let ilp = place_beacons_ilp(&graph, &probes, &candidates);
    assert!(thiran.covers(&probes) && greedy.covers(&probes) && ilp.covers(&probes));

    println!("\nbeacons placed ({} candidates):", candidates.len());
    println!("  Thiran [15] (arbitrary pick): {}", thiran.len());
    println!("  improved greedy:              {}", greedy.len());
    println!(
        "  exact ILP:                    {}{}",
        ilp.len(),
        if ilp.proven_optimal {
            " (proven optimal)"
        } else {
            ""
        }
    );
    println!(
        "\nILP reduction over Thiran: {:.0}% (paper reports up to 50% on this POP)",
        100.0 * (thiran.len() as f64 - ilp.len() as f64) / thiran.len() as f64
    );
    print!("ILP beacons at:");
    for b in &ilp.beacons {
        print!(" {}", graph.label(*b));
    }
    println!();

    assert!(ilp.len() <= greedy.len() && greedy.len() <= thiran.len());
}
