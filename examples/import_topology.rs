//! Substituting measured data: load a topology + traffic matrix from the
//! text format instead of the generator (the hook for real Rocketfuel-
//! style maps), then place monitors on it.
//!
//! Run with: `cargo run --release --example import_topology`

use popmon::placement::instance::PpmInstance;
use popmon::placement::passive::{greedy_static, solve_ppm_exact, ExactOptions};
use popmon::popgen::fileio;

/// A small POP in the interchange format — in production this would be a
/// file converted from `rocketfuel .cch` + a measured traffic matrix.
const DOCUMENT: &str = "\
# two backbone routers, three access routers, five customer sites
node bb0 backbone
node bb1 backbone
node ac0 access
node ac1 access
node ac2 access
node c0 customer
node c1 customer
node c2 customer
node c3 customer
node c4 customer

edge bb0 bb1 1.0
edge ac0 bb0 1.0
edge ac0 bb1 1.0
edge ac1 bb0 1.0
edge ac2 bb1 1.0
edge c0 ac0 1.0
edge c1 ac0 1.0
edge c2 ac1 1.0
edge c3 ac2 1.0
edge c4 ac2 1.0

traffic c0 c2 10.0
traffic c2 c0 8.0
traffic c0 c3 2.5
traffic c3 c4 1.0
traffic c1 c4 4.0
traffic c4 c1 3.5
traffic c1 c2 0.5
";

fn main() {
    let (pop, ts) = fileio::parse(DOCUMENT).expect("valid document");
    println!(
        "imported: {} nodes, {} links, {} traffics, volume {:.1}",
        pop.graph.node_count(),
        pop.graph.edge_count(),
        ts.len(),
        ts.total_volume()
    );

    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    for k in [0.8, 1.0] {
        let greedy = greedy_static(&inst, k).expect("feasible");
        let ilp = solve_ppm_exact(&inst, k, &ExactOptions::default()).expect("feasible");
        println!(
            "k = {k}: greedy {} devices, ILP {} devices",
            greedy.device_count(),
            ilp.device_count()
        );
        for &e in &ilp.edges {
            let (u, v) = pop.graph.endpoints(popmon::netgraph::EdgeId(e as u32));
            println!("  tap {} -- {}", pop.graph.label(u), pop.graph.label(v));
        }
    }

    // Round-trip: the serializer writes the same structure back out.
    let text = fileio::serialize(&pop, &ts);
    let (pop2, ts2) = fileio::parse(&text).expect("round-trip");
    assert_eq!(pop2.graph.edge_count(), pop.graph.edge_count());
    assert_eq!(ts2.len(), ts.len());
    println!("round-trip through the interchange format: ok");
}
