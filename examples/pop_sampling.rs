//! Sampling-capable monitoring (paper Section 5) and the dynamic-traffic
//! controller (Section 5.4).
//!
//! Scenario: an operator wants 90% of the traffic monitored but devices
//! cannot sample at 100% on fast links; each device has a setup cost and
//! an exploitation cost proportional to its sampling rate. After the
//! initial `PPME(h, k)` deployment, traffic drifts and the operator adapts
//! only the sampling rates — never the device positions.
//!
//! Run with: `cargo run --release --example pop_sampling`

use popmon::placement::dynamic::{run_controller, ControllerSpec};
use popmon::placement::sampling::{solve_ppme, PpmeOptions, SamplingProblem};
use popmon::popgen::dynamic::{DynamicSpec, TrafficProcess};
use popmon::popgen::{PopSpec, TrafficSpec};

fn main() {
    // The fixed-charge PPME MILP is solved on a compact POP (see
    // EXPERIMENTS.md on why proving optimality at 27 binaries is slow).
    let pop = PopSpec::small().build();
    let ne = pop.graph.edge_count();

    // Multi-routed traffics: load balancing spreads each demand on up to
    // two shortest routes.
    let multi = TrafficSpec::default().generate_multi(&pop, 7, 2);
    let (setup, exploit) = SamplingProblem::uniform_costs(ne);
    let prob = SamplingProblem::from_multi(&pop.graph, &multi, 0.2, 0.9, setup, exploit);

    let sol = solve_ppme(&prob, &PpmeOptions::default()).expect("feasible");
    prob.check_solution(&sol.installed, &sol.rates, 1e-5)
        .expect("valid");
    println!(
        "PPME(h=0.2, k=0.9): {} devices, setup cost {:.1}, exploitation cost {:.2}",
        sol.device_count(),
        sol.setup_cost,
        sol.exploit_cost
    );
    for e in 0..ne {
        if sol.installed[e] {
            let (u, v) = pop.graph.endpoints(popmon::netgraph::EdgeId(e as u32));
            println!(
                "  link {} -- {}: sampling rate {:.0}%",
                pop.graph.label(u),
                pop.graph.label(v),
                100.0 * sol.rates[e]
            );
        }
    }

    // Dynamic phase: single-path snapshot traffic, evolving volumes; the
    // controller re-optimizes rates when coverage sinks below T = 0.85.
    let ts = TrafficSpec::default().generate(&pop, 7);
    let spec = ControllerSpec {
        k: 0.9,
        h: 0.0,
        threshold: 0.85,
    };
    let drift = DynamicSpec {
        shift_probability: 0.3,
        ..Default::default()
    };
    let mut process = TrafficProcess::new(ts, drift, 99);
    let trace = run_controller(
        &mut process,
        &pop.graph,
        &sol.installed,
        &spec,
        vec![1.0; ne],
        vec![0.5; ne],
        40,
    );
    println!(
        "\ncontroller: {} re-optimizations over {} steps",
        trace.reoptimizations,
        trace.steps.len()
    );
    let dips = trace
        .steps
        .iter()
        .filter(|s| s.coverage_before < spec.threshold)
        .count();
    println!(
        "coverage dipped below T = {} at {} steps; every dip was repaired",
        spec.threshold, dips
    );
    for s in trace.steps.iter().filter(|s| s.reoptimized).take(5) {
        println!(
            "  step {:>3}: coverage {:.1}% -> {:.1}% (exploitation cost {:.2})",
            s.step,
            100.0 * s.coverage_before,
            100.0 * s.coverage_after,
            s.exploit_cost
        );
    }
}
