//! Quickstart: generate a POP, route a traffic matrix, and place passive
//! monitors with the greedy heuristic and the exact ILP.
//!
//! Run with: `cargo run --release --example quickstart`

use popmon::placement::instance::PpmInstance;
use popmon::placement::passive::{greedy_static, solve_ppm_exact, ExactOptions};
use popmon::popgen::{PopSpec, TrafficSpec};

fn main() {
    // 1. A 10-router POP in the paper's two-level shape: 3 backbone
    //    routers, 7 access routers, 12 virtual traffic endpoints.
    let pop = PopSpec::paper_10().build();
    println!(
        "POP: {} routers, {} links, {} traffic endpoints",
        pop.router_count(),
        pop.graph.edge_count(),
        pop.endpoints.len()
    );

    // 2. A non-uniform traffic matrix (seeded, reproducible): every ordered
    //    endpoint pair plus a few boosted "preferred pairs".
    let ts = TrafficSpec::default().generate(&pop, 42);
    println!(
        "traffic: {} flows, total volume {:.1}",
        ts.len(),
        ts.total_volume()
    );

    // 3. The PPM(k) instance: cover 95% of the traffic with the fewest
    //    devices (the paper's sweet spot before the 100% cost cliff).
    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    let k = 0.95;

    let greedy = greedy_static(&inst, k).expect("target reachable");
    println!(
        "greedy (decreasing load): {} devices, coverage {:.1}%",
        greedy.device_count(),
        100.0 * greedy.coverage_fraction()
    );

    let ilp = solve_ppm_exact(&inst, k, &ExactOptions::default()).expect("target reachable");
    println!(
        "exact ILP:                {} devices, coverage {:.1}%{}",
        ilp.device_count(),
        100.0 * ilp.coverage_fraction(),
        if ilp.proven_optimal {
            " (proven optimal)"
        } else {
            ""
        }
    );

    // 4. Where do the monitors go?
    for &e in &ilp.edges {
        let (u, v) = pop.graph.endpoints(popmon::netgraph::EdgeId(e as u32));
        println!(
            "  tap on link {} -- {}",
            pop.graph.label(u),
            pop.graph.label(v)
        );
    }

    assert!(ilp.device_count() <= greedy.device_count());
}
