//! Cross-crate integration tests for `PPME(h, k)` and the dynamic
//! controller: sampling solutions validate end-to-end, the LP/flow
//! re-optimizers relate correctly, and the controller repairs coverage.

use popmon::placement::dynamic::{
    reoptimize_rates, reoptimize_rates_flow, run_controller, ControllerSpec,
};
use popmon::placement::instance::PpmInstance;
use popmon::placement::passive::{solve_ppm_exact, ExactOptions};
use popmon::placement::sampling::{solve_ppme, PpmeOptions, SamplingProblem};
use popmon::popgen::dynamic::{DynamicSpec, TrafficProcess};
use popmon::popgen::{PopSpec, TrafficSpec};

#[test]
fn ppme_solution_validates_and_beats_naive_full_rate() {
    let pop = PopSpec::small().build();
    let multi = TrafficSpec::default().generate_multi(&pop, 1, 2);
    let ne = pop.graph.edge_count();
    let (ci, ce) = SamplingProblem::uniform_costs(ne);
    let prob = SamplingProblem::from_multi(&pop.graph, &multi, 0.1, 0.8, ci, ce);
    let sol = solve_ppme(&prob, &PpmeOptions::default()).unwrap();
    prob.check_solution(&sol.installed, &sol.rates, 1e-5)
        .unwrap();

    // Naive alternative: same devices, all at rate 1 — must cost at least
    // as much in exploitation.
    let naive_exploit: f64 = sol
        .installed
        .iter()
        .zip(&prob.exploit_cost)
        .filter(|(i, _)| **i)
        .map(|(_, c)| c)
        .sum();
    assert!(sol.exploit_cost <= naive_exploit + 1e-6);
}

#[test]
fn ppme_cost_monotone_in_k() {
    let pop = PopSpec::small().build();
    let multi = TrafficSpec::default().generate_multi(&pop, 2, 2);
    let ne = pop.graph.edge_count();
    let mut last = 0.0f64;
    for k in [0.4, 0.6, 0.8, 0.95] {
        let (ci, ce) = SamplingProblem::uniform_costs(ne);
        let prob = SamplingProblem::from_multi(&pop.graph, &multi, 0.0, k, ci, ce);
        let sol = solve_ppme(&prob, &PpmeOptions::default()).unwrap();
        assert!(
            sol.total_cost() + 1e-6 >= last,
            "optimal cost must not decrease with k (k = {k})"
        );
        last = sol.total_cost();
    }
}

#[test]
fn reoptimizers_agree_on_their_bound_relation() {
    let pop = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop, 3);
    let ne = pop.graph.edge_count();
    let (ci, ce) = SamplingProblem::uniform_costs(ne);
    let prob = SamplingProblem::from_traffic_set(&pop.graph, &ts, 0.0, 0.9, ci, ce);
    let installed = vec![true; ne];
    let lp = reoptimize_rates(&prob, &installed).unwrap();
    let flow = reoptimize_rates_flow(&prob, &installed).unwrap();
    // Volume-attribution semantics is a relaxation: its cost lower-bounds
    // the per-device-rate LP optimum.
    assert!(flow.exploit_cost <= lp.exploit_cost + 1e-6);
    // The LP rates genuinely achieve the target in the rate semantics.
    assert!(lp.monitored + 1e-6 >= 0.9 * prob.total_volume());
}

#[test]
fn controller_end_to_end_on_exact_deployment() {
    let pop = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop, 4);
    let ne = pop.graph.edge_count();
    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    let placed = solve_ppm_exact(&inst, 0.95, &ExactOptions::default()).unwrap();
    let mut installed = vec![false; ne];
    for &e in &placed.edges {
        installed[e] = true;
    }

    let spec = ControllerSpec {
        k: 0.9,
        h: 0.0,
        threshold: 0.85,
    };
    let drift = DynamicSpec {
        shift_probability: 0.3,
        ..Default::default()
    };
    let mut process = TrafficProcess::new(ts, drift, 21);
    let trace = run_controller(
        &mut process,
        &pop.graph,
        &installed,
        &spec,
        vec![1.0; ne],
        vec![0.5; ne],
        25,
    );
    assert_eq!(trace.steps.len(), 25);
    // Invariant: the controller only acts below the threshold, and its
    // action (when feasible) restores at least k.
    for s in &trace.steps {
        if s.coverage_before >= spec.threshold {
            assert!(
                !s.reoptimized,
                "no action above the threshold (step {})",
                s.step
            );
        }
        if s.reoptimized {
            assert!(s.coverage_after + 1e-6 >= s.coverage_before);
        }
    }
}

#[test]
fn single_path_ppme_specializes_to_ppm_structure() {
    // With exploitation cost 0 and h = 0, PPME device placement solves the
    // same covering problem as PPM: the optimal device count matches.
    let pop = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop, 5);
    let ne = pop.graph.edge_count();
    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    let k = 0.85;

    let ppm = solve_ppm_exact(&inst, k, &ExactOptions::default()).unwrap();
    let prob =
        SamplingProblem::from_traffic_set(&pop.graph, &ts, 0.0, k, vec![1.0; ne], vec![0.0; ne]);
    let ppme = solve_ppme(&prob, &PpmeOptions::default()).unwrap();
    assert_eq!(
        ppm.device_count(),
        ppme.device_count(),
        "zero-exploitation PPME must match PPM's optimal device count"
    );
}
