//! Cross-crate integration tests for active monitoring: router subgraphs,
//! probe computation, and the three beacon-placement strategies across the
//! paper's POP sizes.

use popmon::netgraph::NodeId;
use popmon::placement::active::{
    compute_probes, place_beacons_greedy, place_beacons_ilp, place_beacons_thiran,
};
use popmon::popgen::PopSpec;
use rand::seq::SliceRandom;
use rand::SeedableRng;

#[test]
fn figures_ordering_holds_on_all_pop_sizes() {
    for spec in [PopSpec::paper_15(), PopSpec::paper_29()] {
        let pop = spec.build();
        let (g, _) = pop.router_subgraph();
        let routers: Vec<NodeId> = g.nodes().collect();
        for size in [4, routers.len() / 2, routers.len()] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(size as u64);
            let mut pool = routers.clone();
            pool.shuffle(&mut rng);
            let candidates = &pool[..size];
            let probes = compute_probes(&g, candidates);
            let t = place_beacons_thiran(&probes, candidates);
            let gr = place_beacons_greedy(&probes, candidates);
            let i = place_beacons_ilp(&g, &probes, candidates);
            assert!(t.covers(&probes) && gr.covers(&probes) && i.covers(&probes));
            assert!(
                i.len() <= gr.len(),
                "{} routers, |V_B|={size}",
                routers.len()
            );
            assert!(i.len() <= t.len());
            assert!(i.proven_optimal);
        }
    }
}

#[test]
fn ilp_improves_on_thiran_with_full_candidates() {
    // The paper's headline for Figures 9-11: with |V_B| = n the ILP beats
    // the arbitrary-pick baseline substantially.
    let pop = PopSpec::paper_15().build();
    let (g, _) = pop.router_subgraph();
    let candidates: Vec<NodeId> = g.nodes().collect();
    let probes = compute_probes(&g, &candidates);
    let t = place_beacons_thiran(&probes, &candidates);
    let i = place_beacons_ilp(&g, &probes, &candidates);
    assert!(
        i.len() < t.len(),
        "ILP ({}) must strictly beat Thiran ({}) at full candidate set",
        i.len(),
        t.len()
    );
}

#[test]
fn probe_coverage_is_monotone_in_candidates() {
    let pop = PopSpec::paper_29().build();
    let (g, _) = pop.router_subgraph();
    let routers: Vec<NodeId> = g.nodes().collect();
    let mut covered_last = 0usize;
    for size in [2, 6, 12, 20, routers.len()] {
        let probes = compute_probes(&g, &routers[..size]);
        let covered = probes.covered.iter().filter(|&&c| c).count();
        assert!(
            covered >= covered_last,
            "prefix candidate sets must cover monotonically more links"
        );
        covered_last = covered;
    }
}

#[test]
fn beacons_only_on_candidates_even_when_suboptimal() {
    let pop = PopSpec::paper_15().build();
    let (g, _) = pop.router_subgraph();
    let routers: Vec<NodeId> = g.nodes().collect();
    let candidates = &routers[3..9];
    let probes = compute_probes(&g, candidates);
    for placement in [
        place_beacons_thiran(&probes, candidates),
        place_beacons_greedy(&probes, candidates),
        place_beacons_ilp(&g, &probes, candidates),
    ] {
        for b in &placement.beacons {
            assert!(candidates.contains(b), "beacon {b} not in V_B");
        }
    }
}

#[test]
fn endpoint_links_are_uncoverable_by_router_probes() {
    // Probes run between routers; on the full POP graph (with virtual
    // endpoints) the endpoint links can never be covered when candidates
    // are routers only.
    let pop = PopSpec::paper_10().build();
    let routers = pop.routers();
    let probes = compute_probes(&pop.graph, &routers);
    assert_eq!(
        probes.uncoverable.len(),
        pop.endpoints.len(),
        "each endpoint hangs off one uncoverable link"
    );
}
