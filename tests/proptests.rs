//! Property-based tests over the whole stack (proptest).
//!
//! These pin the load-bearing invariants: the MIP solver agrees with brute
//! force on random covering instances, Theorem 1's reduction preserves
//! optima, greedy solutions are always feasible and within the Slavík
//! bound, and flows conserve.

use proptest::prelude::*;

use popmon::milp::{Cmp, Model, Sense, VarKind};
use popmon::placement::instance::PpmInstance;
use popmon::placement::passive::{
    brute_force_ppm, greedy_adaptive, greedy_static, solve_ppm_exact, ExactOptions,
};
use popmon::placement::reduction::{msc_to_ppm, ppm_solution_to_msc, ppm_to_msc};
use popmon::placement::setcover::{brute_force_cover, slavik_bound, SetCoverInstance};

/// Strategy: a random small PPM instance (≤ 8 edges, ≤ 10 traffics, every
/// traffic crossing 1–3 edges).
fn ppm_instances() -> impl Strategy<Value = PpmInstance> {
    (2usize..=8).prop_flat_map(|ne| {
        let traffic = (1.0f64..10.0, proptest::collection::vec(0..ne, 1..=3));
        proptest::collection::vec(traffic, 1..=10).prop_map(move |ts| PpmInstance::new(ne, ts))
    })
}

/// Strategy: a random small set-cover instance where every element is
/// coverable.
fn msc_instances() -> impl Strategy<Value = SetCoverInstance> {
    // Kept small: the MSC -> PPM gadget has one edge per set plus two per
    // intersecting pair, and the brute-force PPM oracle caps at 20 edges.
    (2usize..=5, 2usize..=4).prop_flat_map(|(n, m)| {
        proptest::collection::vec(proptest::collection::vec(0..n, 1..=n), m).prop_map(
            move |mut sets| {
                // Guarantee coverability: set 0 covers everything.
                sets[0] = (0..n).collect();
                SetCoverInstance::unweighted(n, sets)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_ppm_matches_brute_force(inst in ppm_instances(), k_pct in 10u32..=100) {
        let k = k_pct as f64 / 100.0;
        let exact = solve_ppm_exact(&inst, k, &ExactOptions::default());
        let brute = brute_force_ppm(&inst, k);
        match (exact, brute) {
            (Some(e), Some(b)) => {
                prop_assert_eq!(e.device_count(), b.device_count());
                prop_assert!(inst.is_feasible(&e.edges, k));
            }
            (None, None) => {}
            (e, b) => prop_assert!(
                false,
                "feasibility disagreement: exact {:?} vs brute {:?}",
                e.map(|s| s.edges), b.map(|s| s.edges)
            ),
        }
    }

    #[test]
    fn greedy_is_feasible_and_bounded(inst in ppm_instances()) {
        // Full cover when possible.
        if let Some(g) = greedy_adaptive(&inst, 1.0) {
            prop_assert!(inst.is_feasible(&g.edges, 1.0));
            let opt = brute_force_ppm(&inst, 1.0).expect("greedy found one, so must brute");
            let bound = slavik_bound(inst.traffics.len()).max(1.0);
            prop_assert!(
                g.device_count() as f64 <= bound * opt.device_count() as f64 + 1e-9,
                "greedy {} vs opt {} exceeds Slavik bound {}",
                g.device_count(), opt.device_count(), bound
            );
        }
        if let Some(g) = greedy_static(&inst, 0.5) {
            prop_assert!(inst.is_feasible(&g.edges, 0.5));
        }
    }

    #[test]
    fn theorem1_roundtrip_preserves_optimum(msc in msc_instances()) {
        let gadget = msc_to_ppm(&msc);
        let opt_msc = brute_force_cover(&msc, msc.total_weight()).expect("coverable");
        let opt_ppm = brute_force_ppm(&gadget.instance, 1.0).expect("coverable");
        // Theorem 1: the optima coincide.
        prop_assert_eq!(opt_msc.len(), opt_ppm.device_count());
        // And mapping the PPM optimum back gives a valid cover of the same
        // size or smaller (replacement can merge picks).
        let back = ppm_solution_to_msc(&gadget, &opt_ppm.edges);
        prop_assert!(back.len() <= opt_ppm.device_count());
        let covered = msc.covered_weight(&back);
        prop_assert!((covered - msc.total_weight()).abs() < 1e-9,
            "mapped-back selection must be a full cover");
    }

    #[test]
    fn reverse_reduction_preserves_coverage(inst in ppm_instances(), k_pct in 10u32..=100) {
        let msc = ppm_to_msc(&inst);
        prop_assert_eq!(msc.total_weight(), inst.total_volume());
        let target = k_pct as f64 / 100.0 * inst.total_volume();
        let sel: Vec<usize> = (0..inst.num_edges).step_by(2).collect();
        // Covered weight in MSC equals coverage in PPM for any selection.
        prop_assert!((msc.covered_weight(&sel) - inst.coverage(&sel)).abs() < 1e-9);
        let _ = target;
    }

    #[test]
    fn milp_binary_cover_matches_exhaustive(
        rows in proptest::collection::vec(proptest::collection::vec(0usize..6, 1..=4), 1..=6)
    ) {
        // min Σx s.t. per row Σ_{i ∈ row} x_i >= 1 over 6 binaries:
        // a tiny vertex-coverish MIP checked against 2^6 enumeration.
        let mut m = Model::new(Sense::Minimize);
        let xs: Vec<_> = (0..6)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Binary, 0.0, 1.0, 1.0))
            .collect();
        for row in &rows {
            let mut r = row.clone();
            r.sort_unstable();
            r.dedup();
            let terms: Vec<_> = r.iter().map(|&i| (xs[i], 1.0)).collect();
            m.add_constr(terms, Cmp::Ge, 1.0);
        }
        let sol = m.solve_mip().expect("always feasible: all ones works");
        // Exhaustive check.
        let mut best = usize::MAX;
        for mask in 0u32..64 {
            let ok = rows.iter().all(|row| row.iter().any(|&i| mask >> i & 1 == 1));
            if ok {
                best = best.min(mask.count_ones() as usize);
            }
        }
        prop_assert_eq!(sol.objective.round() as usize, best);
    }

    #[test]
    fn lp_respects_bounds_and_constraints(
        costs in proptest::collection::vec(-5.0f64..5.0, 4),
        rhs in 0.5f64..3.0,
    ) {
        // min c·x s.t. Σx >= rhs, x in [0,1]^4 — always feasible when
        // rhs <= 4; solution must verify via the model checker.
        let mut m = Model::new(Sense::Minimize);
        let xs: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| m.add_var(format!("x{i}"), VarKind::Continuous, 0.0, 1.0, c))
            .collect();
        let terms: Vec<_> = xs.iter().map(|&x| (x, 1.0)).collect();
        m.add_constr(terms, Cmp::Ge, rhs);
        let sol = m.solve_lp().expect("feasible");
        prop_assert!(m.check_feasible(&sol.values, 1e-6).is_ok());
        // Optimality spot check: objective can't beat taking the cheapest
        // variables greedily to fill rhs.
        let mut sorted = costs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut need = rhs;
        let mut lb = 0.0;
        for c in sorted {
            // Negative costs are always taken fully (they help).
            if c < 0.0 { lb += c; need -= 1.0; }
            else if need > 0.0 { let take = need.min(1.0); lb += c * take; need -= take; }
        }
        prop_assert!(sol.objective <= lb + 1e-6 || (sol.objective - lb).abs() < 1e-6);
    }

    #[test]
    fn flow_conservation_on_random_mecf(inst in ppm_instances(), k_pct in 10u32..=100) {
        let k = k_pct as f64 / 100.0;
        let mon = inst.to_monitoring();
        if let Some(r) = popmon::mcmf::mecf::flow_greedy(&mon, k) {
            // The flow-greedy result is a feasible PPM solution.
            let edges: Vec<usize> = r
                .selected
                .iter()
                .enumerate()
                .filter(|(_, &s)| s)
                .map(|(e, _)| e)
                .collect();
            prop_assert!(inst.coverage(&edges) + 1e-9 >= r.routed - 1e-9);
        }
    }
}
