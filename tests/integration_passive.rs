//! Cross-crate integration tests for the passive-monitoring pipeline:
//! popgen → placement instance → greedy / flow / exact solvers → validation.

use popmon::placement::instance::PpmInstance;
use popmon::placement::passive::{
    brute_force_ppm, flow_greedy_ppm, greedy_adaptive, greedy_static, solve_ppm_exact,
    solve_ppm_mecf, ExactOptions,
};
use popmon::popgen::{PopSpec, TrafficSpec};

fn instance(seed: u64) -> PpmInstance {
    let pop = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop, seed);
    PpmInstance::from_traffic(&pop.graph, &ts)
}

#[test]
fn all_solvers_produce_feasible_solutions() {
    let inst = instance(0);
    for k in [0.75, 0.9, 1.0] {
        for (name, sol) in [
            ("static", greedy_static(&inst, k).unwrap()),
            ("adaptive", greedy_adaptive(&inst, k).unwrap()),
            ("flow", flow_greedy_ppm(&inst, k).unwrap()),
            (
                "exact",
                solve_ppm_exact(&inst, k, &ExactOptions::default()).unwrap(),
            ),
        ] {
            assert!(
                inst.is_feasible(&sol.edges, k),
                "{name} infeasible at k={k}"
            );
        }
    }
}

#[test]
fn exact_dominates_every_heuristic() {
    for seed in 0..3 {
        let inst = instance(seed);
        for k in [0.8, 0.95, 1.0] {
            let exact = solve_ppm_exact(&inst, k, &ExactOptions::default()).unwrap();
            assert!(exact.proven_optimal, "seed {seed} k {k} must be proven");
            for sol in [
                greedy_static(&inst, k).unwrap(),
                greedy_adaptive(&inst, k).unwrap(),
                flow_greedy_ppm(&inst, k).unwrap(),
            ] {
                assert!(
                    exact.device_count() <= sol.device_count(),
                    "seed {seed} k {k}: exact {} > heuristic {}",
                    exact.device_count(),
                    sol.device_count()
                );
            }
        }
    }
}

#[test]
fn device_count_is_monotone_in_k() {
    let inst = instance(1);
    let mut last = 0usize;
    for k_pct in [60, 70, 80, 90, 95, 100] {
        let s = solve_ppm_exact(&inst, k_pct as f64 / 100.0, &ExactOptions::default()).unwrap();
        assert!(
            s.device_count() >= last,
            "optimal device count must not decrease with k ({k_pct}%)"
        );
        last = s.device_count();
    }
}

#[test]
fn full_coverage_costs_strictly_more_than_95_percent_usually() {
    // The paper's headline: the 95% -> 100% step is expensive. On any
    // single seed the step is at least not-negative; across seeds it is
    // strictly positive on average.
    let mut gap_total = 0i64;
    for seed in 0..5 {
        let inst = instance(seed);
        let s95 = solve_ppm_exact(&inst, 0.95, &ExactOptions::default()).unwrap();
        let s100 = solve_ppm_exact(&inst, 1.0, &ExactOptions::default()).unwrap();
        assert!(s100.device_count() >= s95.device_count());
        gap_total += s100.device_count() as i64 - s95.device_count() as i64;
    }
    assert!(
        gap_total > 0,
        "covering the last 5% must cost extra devices on average"
    );
}

#[test]
fn lp1_and_lp2_agree_on_reduced_instances() {
    // Merge a 10-router instance down and compare the two MIP forms on a
    // subsample (LP1 is big: restrict to the first 40 merged traffics).
    let inst = instance(2).merged();
    let small = PpmInstance::new(
        inst.num_edges,
        inst.traffics.iter().take(40).cloned().collect(),
    );
    for k in [0.8, 1.0] {
        let a = solve_ppm_exact(&small, k, &ExactOptions::default()).unwrap();
        let b = solve_ppm_mecf(&small, k, &ExactOptions::default()).unwrap();
        assert_eq!(a.device_count(), b.device_count(), "k = {k}");
    }
}

#[test]
fn exact_matches_brute_force_on_subsampled_instances() {
    // Take a real generated instance and restrict it to its 12 heaviest
    // edges so brute force stays tractable, remapping supports.
    let inst = instance(3);
    let loads = inst.edge_loads();
    let mut order: Vec<usize> = (0..inst.num_edges).collect();
    order.sort_by(|&a, &b| loads[b].partial_cmp(&loads[a]).unwrap());
    let keep: Vec<usize> = order.into_iter().take(12).collect();
    let remap: std::collections::HashMap<usize, usize> = keep
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();
    let traffics: Vec<(f64, Vec<usize>)> = inst
        .traffics
        .iter()
        .map(|(v, support)| {
            (
                *v,
                support
                    .iter()
                    .filter_map(|e| remap.get(e).copied())
                    .collect(),
            )
        })
        .collect();
    let small = PpmInstance::new(12, traffics);

    for k in [0.5, 0.7] {
        let exact = solve_ppm_exact(&small, k, &ExactOptions::default()).unwrap();
        let brute = brute_force_ppm(&small, k).unwrap();
        assert_eq!(exact.device_count(), brute.device_count(), "k = {k}");
    }
}

#[test]
fn greedy_factor_on_paper_pop_is_bounded() {
    // The paper observes greedy ≈ 2× ILP on the 10-router POP; check the
    // ratio stays within the Slavík worst case with margin.
    let inst = instance(4);
    let k = 0.9;
    let greedy = greedy_static(&inst, k).unwrap();
    let exact = solve_ppm_exact(&inst, k, &ExactOptions::default()).unwrap();
    let ratio = greedy.device_count() as f64 / exact.device_count() as f64;
    assert!(ratio >= 1.0);
    assert!(ratio <= 6.0, "greedy/ILP ratio {ratio} looks broken");
}

#[test]
fn merged_instance_yields_same_optimum() {
    let inst = instance(5);
    let merged = inst.merged();
    let a = solve_ppm_exact(&inst, 0.9, &ExactOptions::default()).unwrap();
    let b = solve_ppm_exact(&merged, 0.9, &ExactOptions::default()).unwrap();
    assert_eq!(a.device_count(), b.device_count());
}

#[test]
fn fileio_roundtrip_preserves_solutions() {
    let pop = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop, 6);
    let text = popmon::popgen::fileio::serialize(&pop, &ts);
    let (pop2, ts2) = popmon::popgen::fileio::parse(&text).unwrap();
    let a = PpmInstance::from_traffic(&pop.graph, &ts);
    let b = PpmInstance::from_traffic(&pop2.graph, &ts2);
    let sa = solve_ppm_exact(&a, 0.9, &ExactOptions::default()).unwrap();
    let sb = solve_ppm_exact(&b, 0.9, &ExactOptions::default()).unwrap();
    assert_eq!(sa.device_count(), sb.device_count());
}
