//! Graph substrate for the POP monitoring library.
//!
//! This crate provides the network model used throughout the reproduction of
//! *Optimal Positioning of Active and Passive Monitoring Devices* (CoNEXT
//! 2005): an undirected multigraph `G = (V, E)` whose nodes are routers (or
//! virtual customer/peer endpoints) and whose edges are communication links.
//!
//! The crate is deliberately small and dependency-free. It offers:
//!
//! * [`Graph`] — an undirected multigraph with per-edge routing weights,
//!   built through [`GraphBuilder`] and stored in adjacency-list form;
//! * [`Path`] — a validated node/edge sequence between two endpoints;
//! * [`dijkstra`] — single-pair and single-source shortest paths with
//!   deterministic tie-breaking (so that experiments are reproducible);
//! * [`ksp`] — Yen's algorithm for the k shortest loopless paths, used for
//!   the multi-routed traffics of the paper's Section 5;
//! * [`delta`] — delta-aware re-routing: cached route plans that re-run
//!   Yen only for the pairs a link perturbation can actually affect;
//! * [`bfs`] — unweighted traversal and connectivity checks;
//! * [`dot`] — Graphviz export used by the figure-regeneration binaries.
//!
//! # Example
//!
//! ```
//! use netgraph::{GraphBuilder, dijkstra};
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node("a");
//! let c = b.add_node("c");
//! let d = b.add_node("d");
//! b.add_edge(a, c, 1.0);
//! b.add_edge(c, d, 1.0);
//! b.add_edge(a, d, 5.0);
//! let g = b.build();
//!
//! let path = dijkstra::shortest_path(&g, a, d).expect("connected");
//! assert_eq!(path.nodes().len(), 3); // a -> c -> d beats the direct 5.0 edge
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod delta;
pub mod dijkstra;
pub mod dot;
mod error;
mod graph;
pub mod ksp;
mod path;

pub use error::GraphError;
pub use graph::{EdgeId, Graph, GraphBuilder, NodeId};
pub use path::Path;

/// Convenience alias used by all algorithms in this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
