use crate::{EdgeId, Graph, GraphError, NodeId, Result};

/// A validated walk through a [`Graph`]: `k` edges chaining `k + 1` nodes.
///
/// Traffics in the paper are *single paths* between two routers (Section
/// 4.1), later generalized to sets of paths (Section 5). `Path` stores both
/// the node sequence and the edge sequence because parallel links make the
/// edge sequence ambiguous given nodes alone, and the placement algorithms
/// work on edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl Path {
    /// Builds a path from a node sequence and an edge sequence, validating
    /// against `graph` that consecutive nodes are joined by the matching
    /// edge.
    pub fn new(graph: &Graph, nodes: Vec<NodeId>, edges: Vec<EdgeId>) -> Result<Self> {
        if nodes.is_empty() {
            return Err(GraphError::MalformedPath("empty node sequence".into()));
        }
        if edges.len() + 1 != nodes.len() {
            return Err(GraphError::MalformedPath(format!(
                "{} nodes require {} edges, got {}",
                nodes.len(),
                nodes.len() - 1,
                edges.len()
            )));
        }
        for &n in &nodes {
            graph.check_node(n)?;
        }
        for (i, &e) in edges.iter().enumerate() {
            graph.check_edge(e)?;
            let (u, v) = graph.endpoints(e);
            let (a, b) = (nodes[i], nodes[i + 1]);
            if !((u == a && v == b) || (u == b && v == a)) {
                return Err(GraphError::MalformedPath(format!(
                    "edge {e} does not join {a} and {b}"
                )));
            }
        }
        Ok(Self { nodes, edges })
    }

    /// Builds a single-node path (zero edges).
    pub fn trivial(graph: &Graph, node: NodeId) -> Result<Self> {
        graph.check_node(node)?;
        Ok(Self {
            nodes: vec![node],
            edges: Vec::new(),
        })
    }

    /// Builds a path from a node sequence alone, resolving each hop to the
    /// smallest-id edge joining the pair.
    pub fn from_nodes(graph: &Graph, nodes: Vec<NodeId>) -> Result<Self> {
        if nodes.is_empty() {
            return Err(GraphError::MalformedPath("empty node sequence".into()));
        }
        let mut edges = Vec::with_capacity(nodes.len() - 1);
        for w in nodes.windows(2) {
            let e = graph.find_edge(w[0], w[1]).ok_or_else(|| {
                GraphError::MalformedPath(format!("no edge between {} and {}", w[0], w[1]))
            })?;
            edges.push(e);
        }
        Path::new(graph, nodes, edges)
    }

    /// The node sequence, source first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The edge sequence, in traversal order.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// First node of the path.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node of the path.
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// Number of edges (hops).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` when the path has no edges (a single node).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Sum of routing weights along the path.
    pub fn cost(&self, graph: &Graph) -> f64 {
        self.edges.iter().map(|&e| graph.weight(e)).sum()
    }

    /// `true` when no node repeats (the path is simple / loopless).
    pub fn is_simple(&self) -> bool {
        let mut seen: Vec<NodeId> = self.nodes.clone();
        seen.sort_unstable();
        seen.windows(2).all(|w| w[0] != w[1])
    }

    /// `true` when the path traverses `edge`.
    pub fn uses_edge(&self, edge: EdgeId) -> bool {
        self.edges.contains(&edge)
    }

    /// `true` when the path visits `node`.
    pub fn visits(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Concatenates two paths; `self.target()` must equal `other.source()`.
    pub fn concat(&self, graph: &Graph, other: &Path) -> Result<Path> {
        if self.target() != other.source() {
            return Err(GraphError::MalformedPath(format!(
                "cannot concatenate: {} != {}",
                self.target(),
                other.source()
            )));
        }
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&other.nodes[1..]);
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&other.edges);
        Path::new(graph, nodes, edges)
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for n in &self.nodes {
            if !first {
                write!(f, "-")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn square() -> (Graph, [NodeId; 4], [EdgeId; 4]) {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = b.add_nodes("r", 4);
        let e0 = b.add_edge(n[0], n[1], 1.0);
        let e1 = b.add_edge(n[1], n[2], 1.0);
        let e2 = b.add_edge(n[2], n[3], 1.0);
        let e3 = b.add_edge(n[3], n[0], 1.0);
        (b.build(), [n[0], n[1], n[2], n[3]], [e0, e1, e2, e3])
    }

    #[test]
    fn valid_path_roundtrip() {
        let (g, n, e) = square();
        let p = Path::new(&g, vec![n[0], n[1], n[2]], vec![e[0], e[1]]).unwrap();
        assert_eq!(p.source(), n[0]);
        assert_eq!(p.target(), n[2]);
        assert_eq!(p.len(), 2);
        assert!((p.cost(&g) - 2.0).abs() < 1e-12);
        assert!(p.is_simple());
        assert!(p.uses_edge(e[0]));
        assert!(!p.uses_edge(e[2]));
    }

    #[test]
    fn from_nodes_resolves_edges() {
        let (g, n, e) = square();
        let p = Path::from_nodes(&g, vec![n[0], n[3], n[2]]).unwrap();
        assert_eq!(p.edges(), &[e[3], e[2]]);
    }

    #[test]
    fn rejects_mismatched_edge() {
        let (g, n, e) = square();
        let err = Path::new(&g, vec![n[0], n[1]], vec![e[2]]).unwrap_err();
        assert!(matches!(err, GraphError::MalformedPath(_)));
    }

    #[test]
    fn rejects_wrong_edge_count() {
        let (g, n, e) = square();
        assert!(Path::new(&g, vec![n[0], n[1]], vec![e[0], e[1]]).is_err());
        assert!(Path::new(&g, vec![], vec![]).is_err());
    }

    #[test]
    fn non_simple_path_detected() {
        let (g, n, e) = square();
        let p = Path::new(
            &g,
            vec![n[0], n[1], n[2], n[3], n[0], n[1]],
            vec![e[0], e[1], e[2], e[3], e[0]],
        )
        .unwrap();
        assert!(!p.is_simple());
    }

    #[test]
    fn trivial_path() {
        let (g, n, _) = square();
        let p = Path::trivial(&g, n[2]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.source(), p.target());
        assert!(p.is_simple());
    }

    #[test]
    fn concat_paths() {
        let (g, n, e) = square();
        let p1 = Path::new(&g, vec![n[0], n[1]], vec![e[0]]).unwrap();
        let p2 = Path::new(&g, vec![n[1], n[2]], vec![e[1]]).unwrap();
        let joined = p1.concat(&g, &p2).unwrap();
        assert_eq!(joined.nodes(), &[n[0], n[1], n[2]]);
        assert!(p2.concat(&g, &p1).is_err());
    }
}
