//! Weighted shortest paths with deterministic tie-breaking.
//!
//! The paper routes each traffic on the shortest path between its entry and
//! exit routers (Section 4.4, following \[15\]); routing is *not* assumed
//! symmetric. To keep every experiment reproducible we break distance ties
//! deterministically: among equal-distance relaxations the predecessor with
//! the smaller `(node, edge)` pair wins, so the same graph always yields the
//! same routing regardless of heap ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{EdgeId, Graph, GraphError, NodeId, Path, Result};

/// Outcome of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: Vec<f64>,
    /// Predecessor edge and node on a shortest path, `None` for the source
    /// and for unreachable nodes.
    pred: Vec<Option<(EdgeId, NodeId)>>,
}

impl ShortestPathTree {
    /// The source node of this tree.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `node`, `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        let d = self.dist[node.index()];
        d.is_finite().then_some(d)
    }

    /// Reconstructs the shortest path from the source to `target`.
    pub fn path_to(&self, graph: &Graph, target: NodeId) -> Result<Path> {
        graph.check_node(target)?;
        if !self.dist[target.index()].is_finite() {
            return Err(GraphError::Unreachable {
                source: self.source.index(),
                target: target.index(),
            });
        }
        let mut nodes = vec![target];
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some((e, p)) = self.pred[cur.index()] {
            edges.push(e);
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        edges.reverse();
        Path::new(graph, nodes, edges)
    }
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (dist, node): reverse the natural order. Distances are
        // finite by construction, so partial_cmp cannot fail.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("finite distances")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs Dijkstra from `source` over the whole graph.
///
/// Edge weights must be non-negative (enforced at graph construction).
/// Optionally a set of forbidden nodes/edges can be supplied through
/// [`shortest_path_tree_avoiding`]; this plain entry point forbids nothing.
pub fn shortest_path_tree(graph: &Graph, source: NodeId) -> Result<ShortestPathTree> {
    shortest_path_tree_avoiding(graph, source, &[], &[])
}

/// Dijkstra from `source` that never traverses `forbidden_edges` nor enters
/// `forbidden_nodes` (the source itself may appear in `forbidden_nodes`
/// without effect). Used by Yen's algorithm for k-shortest paths.
pub fn shortest_path_tree_avoiding(
    graph: &Graph,
    source: NodeId,
    forbidden_nodes: &[NodeId],
    forbidden_edges: &[EdgeId],
) -> Result<ShortestPathTree> {
    tree_avoiding_until(graph, source, None, forbidden_nodes, forbidden_edges)
}

/// Single-pair variant of [`shortest_path_tree_avoiding`]: stops as soon
/// as `target` is settled instead of exploring the whole graph. Once a
/// node is popped its distance and predecessor are final and can never be
/// revised (not even by the tie-break rule), so the returned path is
/// byte-identical to the full tree's — this only saves the work past the
/// target. Yen's spur computations (one per path node per iteration) are
/// the main beneficiary.
pub fn shortest_path_avoiding(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
    forbidden_nodes: &[NodeId],
    forbidden_edges: &[EdgeId],
) -> Result<Path> {
    graph.check_node(target)?;
    tree_avoiding_until(
        graph,
        source,
        Some(target),
        forbidden_nodes,
        forbidden_edges,
    )?
    .path_to(graph, target)
}

fn tree_avoiding_until(
    graph: &Graph,
    source: NodeId,
    stop_at: Option<NodeId>,
    forbidden_nodes: &[NodeId],
    forbidden_edges: &[EdgeId],
) -> Result<ShortestPathTree> {
    graph.check_node(source)?;
    let n = graph.node_count();
    let mut node_blocked = vec![false; n];
    for &v in forbidden_nodes {
        graph.check_node(v)?;
        node_blocked[v.index()] = true;
    }
    let mut edge_blocked = vec![false; graph.edge_count()];
    for &e in forbidden_edges {
        graph.check_edge(e)?;
        edge_blocked[e.index()] = true;
    }

    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<(EdgeId, NodeId)>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        if stop_at == Some(u) {
            break;
        }
        for &(e, v) in graph.neighbors(u) {
            if edge_blocked[e.index()] || node_blocked[v.index()] || done[v.index()] {
                continue;
            }
            let nd = d + graph.weight(e);
            let cur = dist[v.index()];
            let better = nd < cur - TIE_EPS;
            // Deterministic tie-break: keep the predecessor with the
            // lexicographically smallest (node, edge) pair.
            let tie = (nd - cur).abs() <= TIE_EPS
                && pred[v.index()].is_some_and(|(pe, pu)| (u, e) < (pu, pe));
            if better || tie {
                dist[v.index()] = nd.min(cur);
                pred[v.index()] = Some((e, u));
                heap.push(HeapEntry {
                    dist: dist[v.index()],
                    node: v,
                });
            }
        }
    }

    Ok(ShortestPathTree { source, dist, pred })
}

/// Absolute tolerance under which two path lengths are considered equal for
/// tie-breaking purposes.
const TIE_EPS: f64 = 1e-12;

/// Convenience wrapper: shortest path between a single pair.
pub fn shortest_path(graph: &Graph, source: NodeId, target: NodeId) -> Result<Path> {
    shortest_path_tree(graph, source)?.path_to(graph, target)
}

/// Distance between a single pair, `Err(Unreachable)` if disconnected.
pub fn distance(graph: &Graph, source: NodeId, target: NodeId) -> Result<f64> {
    let t = shortest_path_tree(graph, source)?;
    t.distance(target).ok_or(GraphError::Unreachable {
        source: source.index(),
        target: target.index(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// 0 --1-- 1 --1-- 2
    ///  \______5______/
    fn detour() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let n = b.add_nodes("r", 3);
        b.add_edge(n[0], n[1], 1.0);
        b.add_edge(n[1], n[2], 1.0);
        b.add_edge(n[0], n[2], 5.0);
        (b.build(), n)
    }

    #[test]
    fn prefers_cheaper_two_hop() {
        let (g, n) = detour();
        let p = shortest_path(&g, n[0], n[2]).unwrap();
        assert_eq!(p.nodes(), &[n[0], n[1], n[2]]);
        assert!((p.cost(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distances_from_tree() {
        let (g, n) = detour();
        let t = shortest_path_tree(&g, n[0]).unwrap();
        assert_eq!(t.distance(n[0]), Some(0.0));
        assert_eq!(t.distance(n[1]), Some(1.0));
        assert_eq!(t.distance(n[2]), Some(2.0));
    }

    #[test]
    fn unreachable_reported() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        let g = b.build();
        assert!(matches!(
            shortest_path(&g, a, c),
            Err(GraphError::Unreachable {
                source: 0,
                target: 1
            })
        ));
        assert!(distance(&g, a, c).is_err());
    }

    #[test]
    fn path_to_source_is_trivial() {
        let (g, n) = detour();
        let p = shortest_path(&g, n[0], n[0]).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost routes 0-1-3 and 0-2-3; the tie-break must always
        // pick the same one (via node 1, the smaller id).
        let mut b = GraphBuilder::new();
        let n = b.add_nodes("r", 4);
        b.add_edge(n[0], n[1], 1.0);
        b.add_edge(n[0], n[2], 1.0);
        b.add_edge(n[1], n[3], 1.0);
        b.add_edge(n[2], n[3], 1.0);
        let g = b.build();
        for _ in 0..10 {
            let p = shortest_path(&g, n[0], n[3]).unwrap();
            assert_eq!(p.nodes()[1], n[1]);
        }
    }

    #[test]
    fn avoiding_edges_forces_detour() {
        let (g, n) = detour();
        let direct = g.find_edge(n[0], n[1]).unwrap();
        let t = shortest_path_tree_avoiding(&g, n[0], &[], &[direct]).unwrap();
        let p = t.path_to(&g, n[2]).unwrap();
        assert_eq!(p.nodes(), &[n[0], n[2]]);
        assert!((p.cost(&g) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn avoiding_nodes_blocks_route() {
        let (g, n) = detour();
        let t = shortest_path_tree_avoiding(&g, n[0], &[n[1]], &[]).unwrap();
        let p = t.path_to(&g, n[2]).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn zero_weight_edges_ok() {
        let mut b = GraphBuilder::new();
        let n = b.add_nodes("r", 3);
        b.add_edge(n[0], n[1], 0.0);
        b.add_edge(n[1], n[2], 0.0);
        let g = b.build();
        assert_eq!(distance(&g, n[0], n[2]).unwrap(), 0.0);
    }
}
