//! Graphviz (DOT) export, used by the figure-regeneration binaries to
//! visualize POP topologies and per-edge traffic load (paper Figure 6).

use crate::{EdgeId, Graph};

/// Options controlling DOT rendering.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Graph name in the `graph <name> { ... }` header.
    pub name: String,
    /// Optional per-edge pen width (e.g. proportional to traffic load,
    /// as in the paper's Figure 6). Missing entries default to 1.0.
    pub edge_width: Vec<(EdgeId, f64)>,
    /// Optional per-edge textual label (e.g. the load value).
    pub edge_label: Vec<(EdgeId, String)>,
    /// Edge ids to highlight (drawn in red) — e.g. selected monitor links.
    pub highlight: Vec<EdgeId>,
}

/// Renders `graph` as an undirected Graphviz document.
pub fn to_dot(graph: &Graph, opts: &DotOptions) -> String {
    let name = if opts.name.is_empty() {
        "pop"
    } else {
        &opts.name
    };
    let mut out = String::new();
    out.push_str(&format!("graph {name} {{\n"));
    out.push_str("  node [shape=circle, fontsize=10];\n");
    for v in graph.nodes() {
        out.push_str(&format!(
            "  {} [label=\"{}\"];\n",
            v.index(),
            graph.label(v)
        ));
    }
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        let mut attrs: Vec<String> = Vec::new();
        if let Some(&(_, w)) = opts.edge_width.iter().find(|&&(id, _)| id == e) {
            attrs.push(format!("penwidth={w:.2}"));
        }
        if let Some((_, label)) = opts.edge_label.iter().find(|(id, _)| *id == e) {
            attrs.push(format!("label=\"{label}\""));
        }
        if opts.highlight.contains(&e) {
            attrs.push("color=red".to_string());
        }
        if attrs.is_empty() {
            out.push_str(&format!("  {} -- {};\n", u.index(), v.index()));
        } else {
            out.push_str(&format!(
                "  {} -- {} [{}];\n",
                u.index(),
                v.index(),
                attrs.join(", ")
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn renders_nodes_and_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("bb0");
        let c = b.add_node("acc0");
        let e = b.add_edge(a, c, 1.0);
        let g = b.build();
        let dot = to_dot(
            &g,
            &DotOptions {
                name: "test".into(),
                edge_width: vec![(e, 3.0)],
                edge_label: vec![(e, "42%".into())],
                highlight: vec![e],
            },
        );
        assert!(dot.starts_with("graph test {"));
        assert!(dot.contains("0 [label=\"bb0\"]"));
        assert!(dot.contains("0 -- 1 [penwidth=3.00, label=\"42%\", color=red];"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn default_options_render_bare_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        b.add_edge(a, c, 1.0);
        let g = b.build();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.contains("graph pop {"));
        assert!(dot.contains("0 -- 1;"));
    }
}
