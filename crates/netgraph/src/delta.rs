//! Delta-aware re-routing: reuse cached routes across link perturbations.
//!
//! Sweeps that perturb a topology point by point (link failures, density
//! toggles) re-solve near-identical routing problems at every step. The
//! key observation makes most of that work skippable: **banning edges is a
//! degrading change** — a path that avoids every banned edge keeps its
//! cost, and removing *other* candidate paths can never promote a
//! worse path above it. Hence a pair's cached k-shortest-path set stays
//! optimal whenever none of its paths crosses a newly banned edge, and
//! only the crossing pairs need a re-run of Yen's algorithm (against the
//! same graph with a longer ban list — see
//! [`crate::ksp::k_shortest_paths_avoiding`]).
//!
//! Un-banning is an *improving* change, for which the skip argument does
//! not hold; [`RoutePlan::reroute_avoiding`] detects that case and falls
//! back to a full recompute, so the plan is always exact, never heuristic.

use crate::ksp::k_shortest_paths_avoiding;
use crate::{EdgeId, Graph, NodeId, Path, Result};

/// A routed set of node pairs with the ban list it was computed under,
/// supporting delta-aware re-routing as the ban list grows.
#[derive(Debug, Clone)]
pub struct RoutePlan {
    /// Requested routes per pair.
    k: usize,
    /// The routed `(source, target)` pairs, in caller order.
    pairs: Vec<(NodeId, NodeId)>,
    /// Up to `k` loopless paths per pair (possibly empty when a pair is
    /// disconnected under the bans), aligned with `pairs`.
    routes: Vec<Vec<Path>>,
    /// The banned edges this plan was computed under, sorted.
    banned: Vec<EdgeId>,
}

impl RoutePlan {
    /// Routes every pair from scratch: `k` shortest loopless paths
    /// avoiding `banned` edges. Errors only on invalid node ids.
    pub fn compute(
        graph: &Graph,
        pairs: &[(NodeId, NodeId)],
        k: usize,
        banned: &[EdgeId],
    ) -> Result<RoutePlan> {
        let mut banned = banned.to_vec();
        banned.sort_unstable();
        banned.dedup();
        let routes = pairs
            .iter()
            .map(|&(s, t)| k_shortest_paths_avoiding(graph, s, t, k, &banned))
            .collect::<Result<Vec<_>>>()?;
        Ok(RoutePlan {
            k,
            pairs: pairs.to_vec(),
            routes,
            banned,
        })
    }

    /// The routed pairs, in the order given to [`RoutePlan::compute`].
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// The routes of pair `i` (empty when disconnected under the bans).
    pub fn routes(&self, i: usize) -> &[Path] {
        &self.routes[i]
    }

    /// The ban list this plan is exact for (sorted, deduplicated).
    pub fn banned(&self) -> &[EdgeId] {
        &self.banned
    }

    /// Re-routes under a new ban list, reusing every cached pair the delta
    /// provably cannot affect. Returns the new plan and the number of
    /// pairs that were actually re-routed.
    ///
    /// When `banned` is a superset of the current bans (links only fail),
    /// a pair is re-run only if one of its cached paths crosses a newly
    /// banned edge — or if it was disconnected, since new bans cannot
    /// reconnect it the cached empty answer is also reused. When bans are
    /// *lifted* (improving change), every pair is recomputed.
    pub fn reroute_avoiding(&self, graph: &Graph, banned: &[EdgeId]) -> Result<(RoutePlan, usize)> {
        let mut new_banned = banned.to_vec();
        new_banned.sort_unstable();
        new_banned.dedup();
        let grows = self
            .banned
            .iter()
            .all(|e| new_banned.binary_search(e).is_ok());
        if !grows {
            let plan = RoutePlan::compute(graph, &self.pairs, self.k, &new_banned)?;
            let n = plan.pairs.len();
            return Ok((plan, n));
        }
        let fresh: Vec<EdgeId> = new_banned
            .iter()
            .copied()
            .filter(|e| self.banned.binary_search(e).is_err())
            .collect();

        let mut routes = Vec::with_capacity(self.pairs.len());
        let mut recomputed = 0usize;
        for (i, &(s, t)) in self.pairs.iter().enumerate() {
            let cached = &self.routes[i];
            let crossing = cached
                .iter()
                .any(|p| p.edges().iter().any(|e| fresh.binary_search(e).is_ok()));
            if crossing {
                recomputed += 1;
                routes.push(k_shortest_paths_avoiding(graph, s, t, self.k, &new_banned)?);
            } else {
                routes.push(cached.clone());
            }
        }
        Ok((
            RoutePlan {
                k: self.k,
                pairs: self.pairs.clone(),
                routes,
                banned: new_banned,
            },
            recomputed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// A 3x3 grid with unit weights: rich in alternative paths.
    fn grid() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let n = b.add_nodes("g", 9);
        let at = |r: usize, c: usize| n[3 * r + c];
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    b.add_edge(at(r, c), at(r, c + 1), 1.0);
                }
                if r + 1 < 3 {
                    b.add_edge(at(r, c), at(r + 1, c), 1.0);
                }
            }
        }
        (b.build(), n)
    }

    fn all_pairs(n: &[NodeId]) -> Vec<(NodeId, NodeId)> {
        let mut pairs = Vec::new();
        for (i, &a) in n.iter().enumerate() {
            for &b in &n[i + 1..] {
                pairs.push((a, b));
            }
        }
        pairs
    }

    /// Canonical comparison form: per pair, the (cost, node-id sequence)
    /// of each route.
    fn shape(g: &Graph, plan: &RoutePlan) -> Vec<Vec<(u64, Vec<u32>)>> {
        (0..plan.pairs().len())
            .map(|i| {
                plan.routes(i)
                    .iter()
                    .map(|p| (p.cost(g).to_bits(), p.nodes().iter().map(|v| v.0).collect()))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn delta_matches_full_recompute_as_bans_grow() {
        let (g, n) = grid();
        let pairs = all_pairs(&n);
        let plan = RoutePlan::compute(&g, &pairs, 3, &[]).unwrap();
        // Grow the ban list edge by edge; the delta plan must equal the
        // from-scratch plan at every step.
        let mut bans: Vec<EdgeId> = Vec::new();
        let mut current = plan;
        for e in [0u32, 5, 7] {
            bans.push(EdgeId(e));
            let (delta, recomputed) = current.reroute_avoiding(&g, &bans).unwrap();
            let fresh = RoutePlan::compute(&g, &pairs, 3, &bans).unwrap();
            assert_eq!(shape(&g, &delta), shape(&g, &fresh), "bans = {bans:?}");
            assert!(
                recomputed < pairs.len(),
                "some pair must be reusable on the grid"
            );
            current = delta;
        }
    }

    #[test]
    fn lifting_a_ban_recomputes_everything_and_stays_exact() {
        let (g, n) = grid();
        let pairs = all_pairs(&n);
        let banned = [EdgeId(0), EdgeId(3)];
        let plan = RoutePlan::compute(&g, &pairs, 2, &banned).unwrap();
        let (lifted, recomputed) = plan.reroute_avoiding(&g, &[EdgeId(3)]).unwrap();
        assert_eq!(
            recomputed,
            pairs.len(),
            "improving change must recompute all pairs"
        );
        let fresh = RoutePlan::compute(&g, &pairs, 2, &[EdgeId(3)]).unwrap();
        assert_eq!(shape(&g, &lifted), shape(&g, &fresh));
    }

    #[test]
    fn disconnection_is_cached_and_correct() {
        let mut b = GraphBuilder::new();
        let n = b.add_nodes("r", 3);
        b.add_edge(n[0], n[1], 1.0); // edge 0: the only bridge to n[1]
        b.add_edge(n[0], n[2], 1.0);
        let g = b.build();
        let pairs = vec![(n[0], n[1]), (n[0], n[2])];
        let plan = RoutePlan::compute(&g, &pairs, 2, &[EdgeId(0)]).unwrap();
        assert!(
            plan.routes(0).is_empty(),
            "banned bridge disconnects the pair"
        );
        assert_eq!(plan.routes(1).len(), 1);
        // A further unrelated ban must not resurrect the dead pair.
        let (next, recomputed) = plan.reroute_avoiding(&g, &[EdgeId(0), EdgeId(1)]).unwrap();
        assert!(next.routes(0).is_empty());
        assert!(next.routes(1).is_empty());
        assert_eq!(recomputed, 1, "only the pair crossing edge 1 re-routes");
    }

    #[test]
    fn avoiding_variant_agrees_with_plain_yen_on_no_bans() {
        let (g, n) = grid();
        for &(s, t) in &all_pairs(&n)[..8] {
            let a = crate::ksp::k_shortest_paths(&g, s, t, 4).unwrap();
            let b = crate::ksp::k_shortest_paths_avoiding(&g, s, t, 4, &[]).unwrap();
            assert_eq!(a, b);
        }
    }
}
