//! Unweighted traversal: reachability, connected components, hop distances.

use std::collections::VecDeque;

use crate::{Graph, NodeId, Result};

/// Returns the set of nodes reachable from `source` (including `source`),
/// as a boolean mask indexed by node id.
pub fn reachable_mask(graph: &Graph, source: NodeId) -> Result<Vec<bool>> {
    graph.check_node(source)?;
    let mut seen = vec![false; graph.node_count()];
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &(_, v) in graph.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    Ok(seen)
}

/// `true` when every node is reachable from every other (or the graph is
/// empty).
pub fn is_connected(graph: &Graph) -> bool {
    if graph.node_count() == 0 {
        return true;
    }
    reachable_mask(graph, NodeId(0))
        .map(|mask| mask.iter().all(|&b| b))
        .unwrap_or(false)
}

/// Assigns each node a component id in `0..component_count`; returns
/// `(component ids, component count)`. Component ids follow the smallest
/// node id in each component, so the labelling is deterministic.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        comp[start] = count;
        queue.push_back(NodeId(start as u32));
        while let Some(u) = queue.pop_front() {
            for &(_, v) in graph.neighbors(u) {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Hop distance (number of edges) from `source` to every node;
/// `usize::MAX` marks unreachable nodes.
pub fn hop_distances(graph: &Graph, source: NodeId) -> Result<Vec<usize>> {
    graph.check_node(source)?;
    let mut dist = vec![usize::MAX; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &(_, v) in graph.neighbors(u) {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_islands() -> Graph {
        let mut b = GraphBuilder::new();
        let n = b.add_nodes("r", 5);
        b.add_edge(n[0], n[1], 1.0);
        b.add_edge(n[1], n[2], 1.0);
        b.add_edge(n[3], n[4], 1.0);
        b.build()
    }

    #[test]
    fn reachability_respects_islands() {
        let g = two_islands();
        let mask = reachable_mask(&g, NodeId(0)).unwrap();
        assert_eq!(mask, vec![true, true, true, false, false]);
    }

    #[test]
    fn connectivity_flag() {
        let g = two_islands();
        assert!(!is_connected(&g));
        let mut b = GraphBuilder::new();
        let n = b.add_nodes("r", 2);
        b.add_edge(n[0], n[1], 1.0);
        assert!(is_connected(&b.build()));
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&GraphBuilder::new().build()));
    }

    #[test]
    fn single_node_graph_is_connected() {
        let mut b = GraphBuilder::new();
        b.add_node("only");
        assert!(is_connected(&b.build()));
    }

    #[test]
    fn components_are_labelled_deterministically() {
        let g = two_islands();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn hop_distance_counts_edges() {
        let g = two_islands();
        let d = hop_distances(&g, NodeId(0)).unwrap();
        assert_eq!(d[0], 0);
        assert_eq!(d[2], 2);
        assert_eq!(d[4], usize::MAX);
    }
}
