//! Yen's algorithm for the k shortest loopless paths.
//!
//! Section 5 of the paper generalizes traffics to *sets* of weighted routes
//! between a source/destination pair ("for the sake of load balancing, the
//! internal routing strategy deployed by the ISP might use several routes").
//! `k_shortest_paths` provides those routes: the `k` cheapest simple paths
//! in increasing cost order, with the same deterministic tie-breaking as
//! [`crate::dijkstra`].

use crate::dijkstra::shortest_path_avoiding;
use crate::{Graph, GraphError, NodeId, Path, Result};

/// Returns up to `k` cheapest loopless paths from `source` to `target`,
/// sorted by increasing cost (ties broken by node sequence).
///
/// Returns an empty vector when `k == 0`, and fewer than `k` paths when the
/// graph does not contain that many simple paths. Errors only on invalid
/// node ids; an unreachable pair yields `Ok(vec![])`.
pub fn k_shortest_paths(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
    k: usize,
) -> Result<Vec<Path>> {
    k_shortest_paths_avoiding(graph, source, target, k, &[])
}

/// [`k_shortest_paths`] over the subgraph with `banned_edges` removed: the
/// `k` cheapest loopless paths that traverse none of the banned edges.
///
/// This is the delta-routing primitive (see [`crate::delta`]): a sweep
/// that fails links re-solves each affected pair against the same graph
/// with a longer ban list, without rebuilding the graph.
pub fn k_shortest_paths_avoiding(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
    k: usize,
    banned_edges: &[crate::EdgeId],
) -> Result<Vec<Path>> {
    graph.check_node(source)?;
    graph.check_node(target)?;
    if k == 0 {
        return Ok(Vec::new());
    }

    let first = match shortest_path_avoiding(graph, source, target, &[], banned_edges) {
        Ok(p) => p,
        Err(GraphError::Unreachable { .. }) => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };

    let mut accepted: Vec<Path> = vec![first];
    // Candidate pool: (cost, node-sequence) keyed paths not yet accepted.
    let mut candidates: Vec<Path> = Vec::new();

    while accepted.len() < k {
        let last = accepted.last().expect("at least one accepted path");
        // Each node of the last accepted path (except the target) is a spur
        // node: reroute from there while avoiding the root prefix and every
        // edge that would recreate an already-accepted path.
        for i in 0..last.nodes().len() - 1 {
            let spur = last.nodes()[i];
            let root_nodes = &last.nodes()[..=i];
            let root_edges = &last.edges()[..i];

            // Edges leaving the spur node along any accepted path sharing
            // this root must be removed, on top of the caller's bans.
            let mut spur_banned = banned_edges.to_vec();
            for p in &accepted {
                if p.nodes().len() > i && p.nodes()[..=i] == *root_nodes {
                    if let Some(&e) = p.edges().get(i) {
                        spur_banned.push(e);
                    }
                }
            }
            // Nodes of the root (except the spur itself) must not be
            // re-entered, keeping spur paths loopless.
            let banned_nodes: Vec<NodeId> = root_nodes[..i]
                .iter()
                .copied()
                .filter(|&v| v != spur)
                .collect();

            // Early-terminating single-pair Dijkstra: identical path to
            // the full spur tree's, without exploring past the target.
            let spur_path =
                match shortest_path_avoiding(graph, spur, target, &banned_nodes, &spur_banned) {
                    Ok(p) => p,
                    Err(GraphError::Unreachable { .. }) => continue,
                    Err(e) => return Err(e),
                };

            let root = Path::new(graph, root_nodes.to_vec(), root_edges.to_vec())?;
            let total = root.concat(graph, &spur_path)?;
            if total.is_simple() && !accepted.contains(&total) && !candidates.contains(&total) {
                candidates.push(total);
            }
        }

        if candidates.is_empty() {
            break;
        }
        // Extract the cheapest candidate; tie-break on the node sequence so
        // the output order is deterministic.
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.cost(graph)
                    .partial_cmp(&b.cost(graph))
                    .expect("finite costs")
                    .then_with(|| a.nodes().cmp(b.nodes()))
            })
            .map(|(i, _)| i)
            .expect("non-empty candidates");
        accepted.push(candidates.swap_remove(best));
    }

    Ok(accepted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Classic Yen example: diamond with a costly direct edge.
    fn diamond() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let n = b.add_nodes("r", 4);
        b.add_edge(n[0], n[1], 1.0);
        b.add_edge(n[1], n[3], 1.0);
        b.add_edge(n[0], n[2], 2.0);
        b.add_edge(n[2], n[3], 2.0);
        b.add_edge(n[0], n[3], 10.0);
        (b.build(), n)
    }

    #[test]
    fn returns_paths_in_cost_order() {
        let (g, n) = diamond();
        let paths = k_shortest_paths(&g, n[0], n[3], 3).unwrap();
        assert_eq!(paths.len(), 3);
        let costs: Vec<f64> = paths.iter().map(|p| p.cost(&g)).collect();
        assert_eq!(costs, vec![2.0, 4.0, 10.0]);
        assert!(paths.iter().all(|p| p.is_simple()));
    }

    #[test]
    fn k_zero_returns_nothing() {
        let (g, n) = diamond();
        assert!(k_shortest_paths(&g, n[0], n[3], 0).unwrap().is_empty());
    }

    #[test]
    fn saturates_when_fewer_paths_exist() {
        let mut b = GraphBuilder::new();
        let n = b.add_nodes("r", 2);
        b.add_edge(n[0], n[1], 1.0);
        let g = b.build();
        let paths = k_shortest_paths(&g, n[0], n[1], 5).unwrap();
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn unreachable_pair_yields_empty() {
        let mut b = GraphBuilder::new();
        let n = b.add_nodes("r", 2);
        let g = b.build();
        assert!(k_shortest_paths(&g, n[0], n[1], 3).unwrap().is_empty());
    }

    #[test]
    fn paths_are_distinct() {
        let (g, n) = diamond();
        let paths = k_shortest_paths(&g, n[0], n[3], 3).unwrap();
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                assert_ne!(paths[i], paths[j]);
            }
        }
    }

    #[test]
    fn handles_parallel_edges() {
        let mut b = GraphBuilder::new();
        let n = b.add_nodes("r", 2);
        b.add_edge(n[0], n[1], 1.0);
        b.add_edge(n[0], n[1], 2.0);
        let g = b.build();
        let paths = k_shortest_paths(&g, n[0], n[1], 4).unwrap();
        // Two single-hop paths using different parallel edges.
        assert_eq!(paths.len(), 2);
        assert_ne!(paths[0].edges(), paths[1].edges());
    }

    #[test]
    fn grid_path_counts() {
        // 3x3 grid: the 6 monotone staircase paths from corner to corner
        // cost 4; asking for 6 must return six cost-4 simple paths.
        let mut b = GraphBuilder::new();
        let n = b.add_nodes("g", 9);
        let at = |r: usize, c: usize| n[3 * r + c];
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    b.add_edge(at(r, c), at(r, c + 1), 1.0);
                }
                if r + 1 < 3 {
                    b.add_edge(at(r, c), at(r + 1, c), 1.0);
                }
            }
        }
        let g = b.build();
        let paths = k_shortest_paths(&g, at(0, 0), at(2, 2), 6).unwrap();
        assert_eq!(paths.len(), 6);
        assert!(paths.iter().all(|p| (p.cost(&g) - 4.0).abs() < 1e-12));
    }
}
