use crate::{GraphError, Result};

/// Identifier of a node (router or virtual endpoint) in a [`Graph`].
///
/// Node ids are dense indices `0..graph.node_count()`, assigned in insertion
/// order by [`GraphBuilder::add_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of an undirected edge (communication link) in a [`Graph`].
///
/// Edge ids are dense indices `0..graph.edge_count()`, assigned in insertion
/// order by [`GraphBuilder::add_edge`]. Passive monitoring devices are
/// installed *on edges*, so most of the placement crate manipulates
/// `EdgeId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The dense index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct EdgeRecord {
    u: NodeId,
    v: NodeId,
    weight: f64,
}

/// Incremental builder for [`Graph`].
///
/// The builder validates each insertion eagerly: node labels may repeat, but
/// self-loops and non-finite weights are rejected at [`add_edge`] time via
/// the panicking convenience method or reported by [`try_add_edge`].
///
/// [`add_edge`]: GraphBuilder::add_edge
/// [`try_add_edge`]: GraphBuilder::try_add_edge
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    labels: Vec<String>,
    edges: Vec<EdgeRecord>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with a human-readable label and returns its id.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label.into());
        id
    }

    /// Adds `count` nodes labelled `"{prefix}{i}"` and returns their ids.
    pub fn add_nodes(&mut self, prefix: &str, count: usize) -> Vec<NodeId> {
        (0..count)
            .map(|i| self.add_node(format!("{prefix}{i}")))
            .collect()
    }

    /// Adds an undirected edge between `u` and `v` with the given routing
    /// weight, returning its id.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, unknown nodes or invalid weights; use
    /// [`GraphBuilder::try_add_edge`] for a fallible variant.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> EdgeId {
        self.try_add_edge(u, v, weight).expect("invalid edge")
    }

    /// Fallible variant of [`GraphBuilder::add_edge`].
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> Result<EdgeId> {
        let n = self.labels.len();
        for node in [u, v] {
            if node.index() >= n {
                return Err(GraphError::InvalidNode {
                    node: node.index(),
                    node_count: n,
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u.index() });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::InvalidWeight { weight });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeRecord { u, v, weight });
        Ok(id)
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.labels.len();
        let mut adjacency: Vec<Vec<(EdgeId, NodeId)>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            adjacency[e.u.index()].push((id, e.v));
            adjacency[e.v.index()].push((id, e.u));
        }
        // Deterministic neighbor order: sort by (neighbor, edge id) so that
        // algorithms iterating adjacency are reproducible regardless of
        // insertion order.
        for adj in &mut adjacency {
            adj.sort_by_key(|&(e, v)| (v, e));
        }
        Graph {
            labels: self.labels,
            edges: self.edges,
            adjacency,
        }
    }
}

/// An immutable undirected multigraph with labelled nodes and weighted edges.
///
/// This is the network model of the paper's Section 4.1: nodes are routers,
/// edges are links. Routing weights drive shortest-path computation (IGP
/// metric); the *load* of a link (sum of traffic weights crossing it) is a
/// property of a traffic set, not of the graph, and lives in `popgen`.
#[derive(Debug, Clone)]
pub struct Graph {
    labels: Vec<String>,
    edges: Vec<EdgeRecord>,
    adjacency: Vec<Vec<(EdgeId, NodeId)>>,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids in increasing order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Label of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this graph.
    pub fn label(&self, node: NodeId) -> &str {
        &self.labels[node.index()]
    }

    /// The two endpoints `(u, v)` of an edge, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `edge` does not belong to this graph.
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[edge.index()];
        (e.u, e.v)
    }

    /// The routing weight of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `edge` does not belong to this graph.
    pub fn weight(&self, edge: EdgeId) -> f64 {
        self.edges[edge.index()].weight
    }

    /// Given one endpoint of an edge, returns the opposite endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is invalid or `node` is not an endpoint of `edge`.
    pub fn opposite(&self, edge: EdgeId, node: NodeId) -> NodeId {
        let e = &self.edges[edge.index()];
        if e.u == node {
            e.v
        } else if e.v == node {
            e.u
        } else {
            panic!("{node} is not an endpoint of {edge}");
        }
    }

    /// Neighbors of `node` as `(edge, opposite endpoint)` pairs, in
    /// deterministic `(neighbor id, edge id)` order.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this graph.
    pub fn neighbors(&self, node: NodeId) -> &[(EdgeId, NodeId)] {
        &self.adjacency[node.index()]
    }

    /// Degree of `node` (counting parallel edges separately).
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Returns `Ok(())` when `node` belongs to this graph.
    pub fn check_node(&self, node: NodeId) -> Result<()> {
        if node.index() < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::InvalidNode {
                node: node.index(),
                node_count: self.node_count(),
            })
        }
    }

    /// Returns `Ok(())` when `edge` belongs to this graph.
    pub fn check_edge(&self, edge: EdgeId) -> Result<()> {
        if edge.index() < self.edge_count() {
            Ok(())
        } else {
            Err(GraphError::InvalidEdge {
                edge: edge.index(),
                edge_count: self.edge_count(),
            })
        }
    }

    /// Finds an edge between `u` and `v`, if any (the one with the smallest
    /// id when parallel edges exist).
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.adjacency
            .get(u.index())?
            .iter()
            .filter(|&&(_, w)| w == v)
            .map(|&(e, _)| e)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, [NodeId; 3], [EdgeId; 3]) {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        let d = b.add_node("c");
        let e0 = b.add_edge(a, c, 1.0);
        let e1 = b.add_edge(c, d, 2.0);
        let e2 = b.add_edge(d, a, 3.0);
        (b.build(), [a, c, d], [e0, e1, e2])
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let (g, nodes, edges) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(nodes.map(|n| n.index()), [0, 1, 2]);
        assert_eq!(edges.map(|e| e.index()), [0, 1, 2]);
    }

    #[test]
    fn endpoints_and_opposite() {
        let (g, [a, b, _c], [e0, ..]) = triangle();
        assert_eq!(g.endpoints(e0), (a, b));
        assert_eq!(g.opposite(e0, a), b);
        assert_eq!(g.opposite(e0, b), a);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn opposite_panics_on_non_endpoint() {
        let (g, [.., c], [e0, ..]) = triangle();
        g.opposite(e0, c);
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        assert_eq!(
            b.try_add_edge(a, a, 1.0),
            Err(GraphError::SelfLoop { node: 0 })
        );
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let ghost = NodeId(7);
        assert!(matches!(
            b.try_add_edge(a, ghost, 1.0),
            Err(GraphError::InvalidNode { node: 7, .. })
        ));
    }

    #[test]
    fn rejects_bad_weight() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        assert!(b.try_add_edge(a, c, f64::NAN).is_err());
        assert!(b.try_add_edge(a, c, -1.0).is_err());
        assert!(b.try_add_edge(a, c, f64::INFINITY).is_err());
        assert!(b.try_add_edge(a, c, 0.0).is_ok());
    }

    #[test]
    fn neighbors_are_deterministically_sorted() {
        let mut b = GraphBuilder::new();
        let hub = b.add_node("hub");
        let n3 = b.add_node("n3");
        let n1 = b.add_node("n1");
        let n2 = b.add_node("n2");
        // Insert in scrambled order.
        b.add_edge(hub, n2, 1.0);
        b.add_edge(hub, n3, 1.0);
        b.add_edge(hub, n1, 1.0);
        let g = b.build();
        let order: Vec<NodeId> = g.neighbors(hub).iter().map(|&(_, v)| v).collect();
        assert_eq!(order, vec![n3, n1, n2]); // sorted by node id
    }

    #[test]
    fn parallel_edges_are_supported() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        let e0 = b.add_edge(a, c, 1.0);
        let e1 = b.add_edge(a, c, 2.0);
        let g = b.build();
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.find_edge(a, c), Some(e0));
        assert_eq!(g.weight(e1), 2.0);
    }

    #[test]
    fn find_edge_absent() {
        let (g, [a, ..], _) = triangle();
        let mut b = GraphBuilder::new();
        let lone = b.add_node("lone");
        let _ = lone;
        assert_eq!(g.find_edge(a, a), None);
    }

    #[test]
    fn check_node_and_edge_bounds() {
        let (g, ..) = triangle();
        assert!(g.check_node(NodeId(2)).is_ok());
        assert!(g.check_node(NodeId(3)).is_err());
        assert!(g.check_edge(EdgeId(2)).is_ok());
        assert!(g.check_edge(EdgeId(3)).is_err());
    }
}
