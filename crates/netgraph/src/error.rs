use std::fmt;

/// Errors produced by graph construction and algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node index was out of range for the graph it was used with.
    InvalidNode {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// An edge index was out of range for the graph it was used with.
    InvalidEdge {
        /// The offending edge index.
        edge: usize,
        /// Number of edges in the graph.
        edge_count: usize,
    },
    /// A self-loop was requested; links connect distinct routers.
    SelfLoop {
        /// The node on which the self-loop was attempted.
        node: usize,
    },
    /// A non-finite or negative routing weight was supplied.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
    /// A path was requested between nodes that are not connected.
    Unreachable {
        /// Source node index.
        source: usize,
        /// Target node index.
        target: usize,
    },
    /// A path failed structural validation (edges do not chain, endpoints
    /// mismatch, or a node repeats in a supposedly simple path).
    MalformedPath(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidNode { node, node_count } => {
                write!(
                    f,
                    "node index {node} out of range (graph has {node_count} nodes)"
                )
            }
            GraphError::InvalidEdge { edge, edge_count } => {
                write!(
                    f,
                    "edge index {edge} out of range (graph has {edge_count} edges)"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(
                    f,
                    "self-loop on node {node}: links must connect distinct routers"
                )
            }
            GraphError::InvalidWeight { weight } => {
                write!(
                    f,
                    "invalid routing weight {weight}: must be finite and non-negative"
                )
            }
            GraphError::Unreachable { source, target } => {
                write!(f, "no path from node {source} to node {target}")
            }
            GraphError::MalformedPath(msg) => write!(f, "malformed path: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}
