//! Property tests for the graph substrate: shortest paths agree with
//! Floyd–Warshall, k-shortest paths are sorted/simple/distinct, and
//! traversal invariants hold on random graphs.

use netgraph::{bfs, dijkstra, ksp, Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

/// Random connected-ish graph: `n` nodes, a spanning chain plus extra
/// random edges with weights in [0.1, 10].
fn graphs() -> impl Strategy<Value = Graph> {
    (2usize..=9).prop_flat_map(|n| {
        let extra = proptest::collection::vec((0..n, 0..n, 0.1f64..10.0), 0..=12);
        let chain_w = proptest::collection::vec(0.1f64..10.0, n - 1);
        (chain_w, extra).prop_map(move |(cw, extra)| {
            let mut b = GraphBuilder::new();
            let nodes = b.add_nodes("v", n);
            for (i, w) in cw.into_iter().enumerate() {
                b.add_edge(nodes[i], nodes[i + 1], w);
            }
            for (u, v, w) in extra {
                if u != v {
                    b.add_edge(nodes[u], nodes[v], w);
                }
            }
            b.build()
        })
    })
}

/// Dense all-pairs distances by Floyd–Warshall, as the oracle.
fn floyd_warshall(g: &Graph) -> Vec<Vec<f64>> {
    let n = g.node_count();
    let mut d = vec![vec![f64::INFINITY; n]; n];
    for i in 0..n {
        d[i][i] = 0.0;
    }
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let w = g.weight(e);
        if w < d[u.index()][v.index()] {
            d[u.index()][v.index()] = w;
            d[v.index()][u.index()] = w;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let alt = d[i][k] + d[k][j];
                if alt < d[i][j] {
                    d[i][j] = alt;
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dijkstra_matches_floyd_warshall(g in graphs()) {
        let oracle = floyd_warshall(&g);
        for s in g.nodes() {
            let tree = dijkstra::shortest_path_tree(&g, s).unwrap();
            for t in g.nodes() {
                let want = oracle[s.index()][t.index()];
                match tree.distance(t) {
                    Some(d) => prop_assert!((d - want).abs() < 1e-9,
                        "{s}->{t}: dijkstra {d} vs fw {want}"),
                    None => prop_assert!(want.is_infinite()),
                }
            }
        }
    }

    #[test]
    fn shortest_path_is_valid_and_tight(g in graphs()) {
        let oracle = floyd_warshall(&g);
        let s = NodeId(0);
        for t in g.nodes() {
            if oracle[0][t.index()].is_finite() {
                let p = dijkstra::shortest_path(&g, s, t).unwrap();
                prop_assert_eq!(p.source(), s);
                prop_assert_eq!(p.target(), t);
                prop_assert!((p.cost(&g) - oracle[0][t.index()]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ksp_sorted_simple_distinct(g in graphs(), k in 1usize..=5) {
        let nodes: Vec<NodeId> = g.nodes().collect();
        let (s, t) = (nodes[0], nodes[nodes.len() - 1]);
        let paths = ksp::k_shortest_paths(&g, s, t, k).unwrap();
        prop_assert!(paths.len() <= k);
        for w in paths.windows(2) {
            prop_assert!(w[0].cost(&g) <= w[1].cost(&g) + 1e-9, "sorted by cost");
            prop_assert!(w[0] != w[1], "distinct");
        }
        for p in &paths {
            prop_assert!(p.is_simple());
            prop_assert_eq!(p.source(), s);
            prop_assert_eq!(p.target(), t);
        }
        // First path must be a shortest path.
        if let Some(first) = paths.first() {
            let d = dijkstra::distance(&g, s, t).unwrap();
            prop_assert!((first.cost(&g) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn bfs_reachability_consistent_with_dijkstra(g in graphs()) {
        let s = NodeId(0);
        let mask = bfs::reachable_mask(&g, s).unwrap();
        let tree = dijkstra::shortest_path_tree(&g, s).unwrap();
        for v in g.nodes() {
            prop_assert_eq!(mask[v.index()], tree.distance(v).is_some());
        }
    }

    #[test]
    fn components_partition_the_graph(g in graphs()) {
        let (comp, count) = bfs::connected_components(&g);
        prop_assert!(count >= 1);
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            prop_assert_eq!(comp[u.index()], comp[v.index()], "edges stay inside components");
        }
        for v in g.nodes() {
            prop_assert!(comp[v.index()] < count);
        }
    }
}
