//! Seeded fault-injection harness for the popmond daemon.
//!
//! A storm of chaos connections drives every fault in the
//! [`ChaosFault`] taxonomy — torn lines, mid-request disconnects,
//! slow-loris partial writes, connections reset while a solve is in
//! flight, and evict/reload races — against a live server while one
//! well-behaved session keeps issuing real requests on a disjoint set of
//! instance ids. The contract under fire:
//!
//! 1. every line the good session (or any surviving chaos connection)
//!    reads is well-formed JSON with a boolean `ok` — typed errors are
//!    fine, garbage and wedged connections are not;
//! 2. after the storm the daemon still answers `health` and `stats`;
//! 3. the good session's transcript replays **byte-identically** through
//!    a fresh in-process [`Service`] — chaos traffic on other ids must
//!    not leak into per-slot state (the service-vs-batch contract,
//!    re-proven under fire);
//! 4. shutdown racing a burst of pipelined writes never panics the
//!    daemon or leaves a connection wedged: readers see complete JSON
//!    lines and then clean EOF.
//!
//! Every fault draw, session stream, and jitter comes from a seeded
//! xorshift [`Rng`], so a failing storm replays exactly.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use popmond::json::{self, Value};
use popmond::workload::{standard_sessions, ChaosFault, Rng};
use popmond::{spawn, ServerConfig, Service, ServiceConfig};

const CHAOS_WORKERS: usize = 4;
const CHAOS_ITERS: usize = 24;
const GOOD_SESSIONS: usize = 3;
const GOOD_STEPS: usize = 12;

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let writer = TcpStream::connect(addr).expect("connect");
    writer.set_nodelay(true).unwrap();
    let reader = BufReader::new(writer.try_clone().unwrap());
    (writer, reader)
}

/// Sends one line and requires a well-formed typed response: JSON with a
/// boolean `ok`. Returns the parsed document and the raw line.
fn exchange(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    req: &str,
) -> (Value, String) {
    writer.write_all(req.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    let mut line = String::new();
    let n = reader.read_line(&mut line).unwrap();
    assert!(n > 0, "server closed the connection mid-exchange on {req}");
    let raw = line.trim_end().to_string();
    let doc = json::parse(&raw).unwrap_or_else(|e| panic!("non-JSON response ({e}): {raw}"));
    assert!(
        doc.get("ok").and_then(Value::as_bool).is_some(),
        "response without boolean ok: {raw}"
    );
    (doc, raw)
}

/// One chaos worker: owns ids `c<worker>*` and hammers the server with
/// the full fault taxonomy interleaved with well-formed requests (loads,
/// budget-starved solves that exercise the degraded path, evicts).
fn chaos_worker(addr: std::net::SocketAddr, worker: usize) {
    let mut rng = Rng::new(0xBAD_5EED ^ (worker as u64) << 8);
    let id = format!("c{worker}");
    let (mut writer, mut reader) = connect(addr);

    for iter in 0..CHAOS_ITERS {
        match ChaosFault::sample(&mut rng, &ChaosFault::ALL) {
            ChaosFault::TornLine => {
                let torn = format!(r#"{{"op":"solve","id":"{id}""#);
                let (doc, raw) = exchange(&mut writer, &mut reader, &torn);
                assert_eq!(
                    doc.get("ok").and_then(Value::as_bool),
                    Some(false),
                    "torn line must earn a typed error: {raw}"
                );
            }
            ChaosFault::Disconnect => {
                // Partial write, no newline, then drop: the torn bytes
                // must never be interpreted as a request.
                let _ = writer.write_all(br#"{"op":"solve","id":""#);
                let fresh = connect(addr);
                writer = fresh.0;
                reader = fresh.1;
            }
            ChaosFault::Duplicate => {
                let req = format!(r#"{{"op":"inspect","id":"{id}"}}"#);
                // Both copies answered in order, each typed (ok:false
                // unknown_id is legal if the id was just evicted).
                exchange(&mut writer, &mut reader, &req);
                exchange(&mut writer, &mut reader, &req);
            }
            ChaosFault::SlowLoris => {
                // Dribble a valid request a few bytes at a time; the
                // server must wait for the newline without wedging
                // anyone else, then answer normally.
                let req = b"{\"op\":\"health\"}\n";
                for chunk in req.chunks(3) {
                    writer.write_all(chunk).unwrap();
                    writer.flush().unwrap();
                    std::thread::sleep(Duration::from_millis(1));
                }
                let mut line = String::new();
                assert!(reader.read_line(&mut line).unwrap() > 0);
                let doc = json::parse(line.trim_end()).expect("slow-loris reply is JSON");
                assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true));
            }
            ChaosFault::ResetMidSolve => {
                // Fire a real solve on a throwaway connection and drop
                // it without reading: the server-side write fails after
                // the solve completes, which must not panic the daemon
                // or leak the processing slot.
                let (mut w, _r) = connect(addr);
                let req = format!(
                    r#"{{"op":"load_spec","id":"{id}r","spec":"small","seed":{}}}"#,
                    worker + 50
                );
                w.write_all(req.as_bytes()).unwrap();
                w.write_all(b"\n").unwrap();
                let solve = format!(r#"{{"op":"solve","id":"{id}r","method":"exact","k":0.9}}"#);
                w.write_all(solve.as_bytes()).unwrap();
                w.write_all(b"\n").unwrap();
                drop(w);
            }
        }

        // Interleave well-formed traffic on the worker's own ids so the
        // faults race real per-slot work: load, budget-starved solve
        // (degraded path), and an evict that races other workers' reads.
        match iter % 4 {
            0 => {
                let req = format!(
                    r#"{{"op":"load_spec","id":"{id}","spec":"small","seed":{}}}"#,
                    worker + 1
                );
                let (doc, raw) = exchange(&mut writer, &mut reader, &req);
                assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true), "{raw}");
            }
            1 => {
                let req =
                    format!(r#"{{"op":"solve","id":"{id}","method":"exact","k":0.9,"budget":1}}"#);
                // Typed either way: ok:true (possibly degraded) if the
                // slot is loaded, unknown_id if a racing evict won.
                exchange(&mut writer, &mut reader, &req);
            }
            2 => {
                let (doc, raw) = exchange(&mut writer, &mut reader, r#"{"op":"health"}"#);
                assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true), "{raw}");
            }
            _ => {
                let req = format!(r#"{{"op":"evict","id":"{id}"}}"#);
                exchange(&mut writer, &mut reader, &req);
            }
        }
    }
}

#[test]
fn chaos_storm_leaves_the_service_consistent() {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let config = ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    };
    let handle = spawn("127.0.0.1:0", service, config).expect("bind ephemeral port");
    let addr = handle.addr();

    // One well-behaved connection records a transcript on ids (s0, s1,
    // ...) disjoint from every chaos id (c0, c0r, ...).
    let mut transcript: Vec<(String, String)> = Vec::new();
    std::thread::scope(|scope| {
        for worker in 0..CHAOS_WORKERS {
            scope.spawn(move || chaos_worker(addr, worker));
        }

        let (mut writer, mut reader) = connect(addr);
        for mut session in standard_sessions(4242, GOOD_SESSIONS, false) {
            let load = session.next_line();
            let (doc, raw) = exchange(&mut writer, &mut reader, &load);
            assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true), "{raw}");
            let links = doc.get("links").and_then(Value::as_u64).unwrap() as usize;
            let traffics = doc.get("traffics").and_then(Value::as_u64).unwrap() as usize;
            session.observe_load(links, traffics);
            transcript.push((load, raw));
            for _ in 0..GOOD_STEPS {
                let line = session.next_line();
                let (doc, raw) = exchange(&mut writer, &mut reader, &line);
                assert_eq!(
                    doc.get("ok").and_then(Value::as_bool),
                    Some(true),
                    "a well-formed in-range request failed under chaos: {line} -> {raw}"
                );
                transcript.push((line, raw));
            }
        }
    });

    // The storm is over: the daemon must still be fully responsive.
    let (mut writer, mut reader) = connect(addr);
    let (doc, raw) = exchange(&mut writer, &mut reader, r#"{"op":"health"}"#);
    assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true), "{raw}");
    assert_eq!(
        doc.get("status").and_then(Value::as_str),
        Some("ok"),
        "{raw}"
    );
    let (doc, raw) = exchange(&mut writer, &mut reader, r#"{"op":"stats"}"#);
    assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true), "{raw}");
    handle.shutdown();

    // Byte-identical replay: chaos traffic lived on other ids, so a
    // fresh batch service must reproduce the good transcript exactly.
    let batch = Service::new(ServiceConfig::default());
    for (req, expected) in &transcript {
        let got = batch.handle_line(req).text;
        assert_eq!(
            &got, expected,
            "chaos traffic leaked into per-slot state; replay diverged on: {req}"
        );
    }
}

#[test]
fn shutdown_races_pipelined_writers_without_wedging() {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let config = ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    };
    let handle = spawn("127.0.0.1:0", service, config).expect("bind ephemeral port");
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for worker in 0..3 {
            scope.spawn(move || {
                let (mut writer, mut reader) = connect(addr);
                // Pipeline a burst without reading, so responses are in
                // flight when the shutdown lands.
                let load = format!(
                    r#"{{"op":"load_spec","id":"p{worker}","spec":"small","seed":{}}}"#,
                    worker + 1
                );
                writer.write_all(load.as_bytes()).unwrap();
                writer.write_all(b"\n").unwrap();
                for _ in 0..8 {
                    let req =
                        format!(r#"{{"op":"solve","id":"p{worker}","method":"greedy","k":0.8}}"#);
                    if writer.write_all(req.as_bytes()).is_err() || writer.write_all(b"\n").is_err()
                    {
                        break; // shutdown won the race before the write
                    }
                }
                // Every line that does arrive must be complete JSON;
                // EOF at any point afterwards is a clean outcome.
                let mut buf = String::new();
                let _ = reader.read_to_string(&mut buf);
                for line in buf.lines() {
                    let doc = json::parse(line)
                        .unwrap_or_else(|e| panic!("torn response during shutdown ({e}): {line}"));
                    assert!(
                        doc.get("ok").and_then(Value::as_bool).is_some(),
                        "untyped response during shutdown: {line}"
                    );
                }
            });
        }

        scope.spawn(move || {
            // Let the writers land a few requests, then pull the plug.
            std::thread::sleep(Duration::from_millis(5));
            let (mut writer, mut reader) = connect(addr);
            let (doc, raw) = exchange(&mut writer, &mut reader, r#"{"op":"shutdown"}"#);
            assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true), "{raw}");
        });
    });

    // Joins the accept loop and every connection thread; a wedged slot
    // or leaked thread would hang the test here.
    handle.wait();
}
