//! Concurrency determinism: the server's thread count is a performance
//! knob, never a semantics knob.
//!
//! The same seeded multi-client workload is driven against a 1-permit
//! and a 4-permit server; the per-session transcripts (every response
//! line, coalescing counters included) must be identical. A second test
//! races many threads loading the *same* instance id — mirroring the
//! `engine::Memo` contention test — and asserts the sharded cache keeps
//! exactly one winning slot that every racer observes.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

use popmond::json::{self, Value};
use popmond::workload::standard_sessions;
use popmond::{spawn, ServerConfig, Service, ServiceConfig};

const CLIENTS: usize = 4;
const SESSIONS_PER_CLIENT: usize = 2;
const STEPS_PER_SESSION: usize = 8;

fn roundtrip(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
    writer.write_all(req.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(!line.is_empty(), "server closed mid-session on {req}");
    line.trim_end().to_string()
}

/// One session's transcript: (request, response) pairs in issue order.
type Transcript = Vec<(String, String)>;

/// Runs the standard workload with `threads` processing permits and
/// returns one transcript per session, keyed by session index.
fn run(threads: usize) -> Vec<Transcript> {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let config = ServerConfig {
        threads,
        ..ServerConfig::default()
    };
    let handle = spawn("127.0.0.1:0", service, config).expect("bind ephemeral port");
    let addr = handle.addr();

    let mut sessions = standard_sessions(500, CLIENTS * SESSIONS_PER_CLIENT, false);
    // Deal sessions to clients round-robin; each client interleaves its
    // own sessions request by request, so *within a connection* the
    // ordering is deterministic while connections race each other.
    let mut per_client: Vec<Vec<_>> = (0..CLIENTS).map(|_| Vec::new()).collect();
    for (i, s) in sessions.drain(..).enumerate() {
        per_client[i % CLIENTS].push((i, s));
    }

    let transcripts: Vec<Vec<(usize, Transcript)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_client
            .into_iter()
            .map(|mine| {
                scope.spawn(move || {
                    let mut writer = TcpStream::connect(addr).unwrap();
                    writer.set_nodelay(true).unwrap();
                    let mut reader = BufReader::new(writer.try_clone().unwrap());
                    let mut out: Vec<(usize, Transcript)> = Vec::new();
                    let mut mine: Vec<_> = mine
                        .into_iter()
                        .map(|(idx, session)| (idx, session, Vec::new()))
                        .collect();
                    // Loads first, so the interleaved phase has sizes.
                    for (_, session, transcript) in mine.iter_mut() {
                        let line = session.next_line();
                        let resp = roundtrip(&mut writer, &mut reader, &line);
                        let doc = json::parse(&resp).unwrap();
                        assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true), "{resp}");
                        session.observe_load(
                            doc.get("links").and_then(Value::as_u64).unwrap() as usize,
                            doc.get("traffics").and_then(Value::as_u64).unwrap() as usize,
                        );
                        transcript.push((line, resp));
                    }
                    for _ in 0..STEPS_PER_SESSION {
                        for (_, session, transcript) in mine.iter_mut() {
                            let line = session.next_line();
                            let resp = roundtrip(&mut writer, &mut reader, &line);
                            transcript.push((line, resp));
                        }
                    }
                    // A final inspect pins the per-slot chain counters
                    // (solves vs coalesced) into the compared transcript.
                    for (idx, session, mut transcript) in mine {
                        let line = format!(r#"{{"op":"inspect","id":"{}"}}"#, session.id());
                        let resp = roundtrip(&mut writer, &mut reader, &line);
                        transcript.push((line, resp));
                        out.push((idx, transcript));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    handle.shutdown();

    let mut by_session = vec![Vec::new(); CLIENTS * SESSIONS_PER_CLIENT];
    for client in transcripts {
        for (idx, t) in client {
            by_session[idx] = t;
        }
    }
    by_session
}

#[test]
fn per_session_transcripts_are_thread_count_invariant() {
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert!(!a.is_empty(), "session {i} produced no transcript");
        assert_eq!(
            a, b,
            "session {i}: transcripts must not depend on server thread count"
        );
    }
}

/// Mirrors `memo_racing_threads_observe_one_value` on the instance
/// cache: threads racing `load_spec` on one id must leave exactly one
/// slot, and every racer's subsequent solve must observe it bytewise.
#[test]
fn racing_loads_of_one_id_keep_one_slot() {
    for round in 0..6u64 {
        let service = Service::new(ServiceConfig::default());
        let n = 16;
        let barrier = Barrier::new(n);
        let id = format!("raced{round}");
        let load = format!(r#"{{"op":"load_spec","id":"{id}","spec":"small","seed":{round}}}"#);
        let solve = format!(r#"{{"op":"solve","id":"{id}","k":0.8}}"#);

        let results: Vec<(String, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let (service, barrier, load, solve) = (&service, &barrier, &load, &solve);
                    scope.spawn(move || {
                        barrier.wait();
                        let load_resp = service.handle_line(load).text;
                        let solve_resp = service.handle_line(solve).text;
                        (load_resp, solve_resp)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        assert_eq!(service.instance_count(), 1, "one slot regardless of racers");
        let creators = results
            .iter()
            .filter(|(l, _)| {
                json::parse(l)
                    .unwrap()
                    .get("created")
                    .and_then(Value::as_bool)
                    == Some(true)
            })
            .count();
        assert_eq!(creators, 1, "first insert wins exactly once");
        let first_solve = &results[0].1;
        for (load_resp, solve_resp) in &results {
            let doc = json::parse(load_resp).unwrap();
            assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true));
            assert_eq!(doc.get("id").and_then(Value::as_str), Some(id.as_str()));
            assert_eq!(
                solve_resp, first_solve,
                "every racer must observe the winning slot's answer"
            );
        }
    }
}
