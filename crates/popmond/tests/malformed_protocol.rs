//! Protocol robustness: every malformed request gets a typed one-line
//! JSON error, and neither the connection nor the instance state is
//! harmed.
//!
//! The whole corpus is driven down a single TCP connection with a loaded
//! instance in the cache; after every bad request the same connection
//! must still serve a good one, and at the end the instance's `inspect`
//! must be byte-identical to before the barrage — no panic, no poisoned
//! lock, no partial mutation.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use popmond::json::{self, Value};
use popmond::protocol::MAX_LINE;
use popmond::{spawn, ServerConfig, Service, ServiceConfig};

fn roundtrip(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
    writer.write_all(req.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(!line.is_empty(), "server closed the connection on {req}");
    line.trim_end().to_string()
}

/// The corpus: (request line, expected typed error code).
fn corpus() -> Vec<(String, &'static str)> {
    vec![
        // Not JSON at all.
        ("not json at all".into(), "parse"),
        // Truncated JSON.
        (r#"{"op":"solve","id":"a""#.into(), "parse"),
        // Valid JSON, not an object.
        ("[1,2,3]".into(), "parse"),
        // A bare string with an unterminated escape.
        (r#""dangling \"#.into(), "parse"),
        // Non-finite number literal.
        (r#"{"op":"solve","id":"a","k":NaN}"#.into(), "parse"),
        // Missing op field.
        (r#"{"id":"a"}"#.into(), "bad_request"),
        // Unknown method name.
        (r#"{"op":"optimize","id":"a"}"#.into(), "unknown_op"),
        // Out-of-range coverage fraction.
        (r#"{"op":"solve","id":"a","k":1.5}"#.into(), "bad_request"),
        // Negative coverage fraction.
        (r#"{"op":"solve","id":"a","k":-0.25}"#.into(), "bad_request"),
        // Zero page size.
        (
            r#"{"op":"solve","id":"a","k":0.8,"page_size":0}"#.into(),
            "bad_request",
        ),
        // Missing instance id.
        (r#"{"op":"solve","k":0.8}"#.into(), "bad_request"),
        // Solve against an instance that was never loaded.
        (
            r#"{"op":"solve","id":"ghost","k":0.8}"#.into(),
            "no_such_instance",
        ),
        // Mutation on a nonexistent instance.
        (
            r#"{"op":"whatif","id":"ghost","action":"fail_link","link":0}"#.into(),
            "no_such_instance",
        ),
        // Mutation on a nonexistent link.
        (
            r#"{"op":"whatif","id":"a","action":"fail_link","link":999999}"#.into(),
            "bad_index",
        ),
        // Mutation on a nonexistent traffic.
        (
            r#"{"op":"whatif","id":"a","action":"remove_flow","traffic":999999}"#.into(),
            "bad_index",
        ),
        // Unknown what-if action.
        (
            r#"{"op":"whatif","id":"a","action":"teleport","link":0}"#.into(),
            "bad_request",
        ),
        // Negative demand scale.
        (
            r#"{"op":"whatif","id":"a","action":"scale_demand","traffic":0,"factor":-2}"#.into(),
            "bad_request",
        ),
        // Flow with an out-of-range support edge.
        (
            r#"{"op":"whatif","id":"a","action":"add_flow","volume":1,"support":[999999]}"#.into(),
            "bad_index",
        ),
        // Malformed generator spec.
        (
            r#"{"op":"load_spec","id":"b","spec":"no_such_family routers=x","seed":1}"#.into(),
            "bad_spec",
        ),
        // Malformed fileio document.
        (
            r#"{"op":"load","id":"b","doc":"garbage"}"#.into(),
            "bad_document",
        ),
        // Oversized line (handled by the service line-length guard).
        (
            format!(
                r#"{{"op":"solve","id":"a","pad":"{}"}}"#,
                "x".repeat(MAX_LINE)
            ),
            "oversized_line",
        ),
    ]
}

#[test]
fn every_bad_request_gets_a_typed_error_and_state_survives() {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let config = ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    };
    let handle = spawn("127.0.0.1:0", service, config).expect("bind ephemeral port");
    let mut writer = TcpStream::connect(handle.addr()).unwrap();
    writer.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(writer.try_clone().unwrap());

    // A healthy instance the corpus pokes at (and must not damage).
    let r = roundtrip(
        &mut writer,
        &mut reader,
        r#"{"op":"load_spec","id":"a","spec":"small","seed":1}"#,
    );
    assert!(r.contains("\"ok\":true"), "{r}");
    let inspect_before = roundtrip(&mut writer, &mut reader, r#"{"op":"inspect","id":"a"}"#);

    let corpus = corpus();
    assert!(corpus.len() >= 12, "the ISSUE demands a 12+ case corpus");
    for (req, want_code) in &corpus {
        let resp = roundtrip(&mut writer, &mut reader, req);
        let doc = json::parse(&resp)
            .unwrap_or_else(|e| panic!("error reply must be valid JSON ({e}): {resp}"));
        assert_eq!(
            doc.get("ok").and_then(Value::as_bool),
            Some(false),
            "bad request must be rejected: {req} -> {resp}"
        );
        let code = doc
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("missing error.code: {resp}"));
        assert_eq!(
            code,
            *want_code,
            "wrong error code for {}: {resp}",
            &req[..req.len().min(80)]
        );
        assert!(
            doc.get("error").and_then(|e| e.get("message")).is_some(),
            "typed errors carry a message: {resp}"
        );

        // The same connection must still serve a good request.
        let ok = roundtrip(&mut writer, &mut reader, r#"{"op":"stats"}"#);
        assert!(
            ok.contains("\"ok\":true"),
            "connection poisoned after {req}: {ok}"
        );
    }

    // No partial mutation leaked: the instance reads back bit-identically.
    let inspect_after = roundtrip(&mut writer, &mut reader, r#"{"op":"inspect","id":"a"}"#);
    assert_eq!(
        inspect_before, inspect_after,
        "rejected requests must not touch instance state"
    );
    handle.shutdown();
}

/// A line that never terminates within the buffer limit: the transport's
/// own guard answers, drains, and keeps the connection usable.
#[test]
fn transport_oversized_line_is_drained_not_fatal() {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let config = ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    };
    let handle = spawn("127.0.0.1:0", service, config).expect("bind ephemeral port");
    let mut writer = TcpStream::connect(handle.addr()).unwrap();
    writer.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(writer.try_clone().unwrap());

    // Exceed MAX_LINE before ever sending a newline.
    let blob = vec![b'x'; MAX_LINE + 4096];
    writer.write_all(&blob).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"code\":\"oversized_line\""), "{line}");

    // Terminate the monster line; everything after it must parse fresh.
    writer.write_all(b"yyyy\n").unwrap();
    let r = roundtrip(&mut writer, &mut reader, r#"{"op":"list"}"#);
    assert!(r.contains("\"instances\":[]"), "{r}");
    handle.shutdown();
}
