//! The differential service-vs-batch harness (the PR's correctness
//! contract).
//!
//! Seeded sessions of interleaved solve / what-if requests are driven
//! against a live TCP server; every response line is recorded. The same
//! request stream is then replayed through a fresh in-process
//! [`Service`] — batch mode, no transport — and every response must be
//! **byte-identical**. Separately, at chain checkpoints the service's
//! exact answer is compared against a cold `solve_exact` on an
//! independently reconstructed, independently mutated instance: the warm
//! incremental chain must report the same optimum as a from-scratch
//! solve at every checkpoint.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use placement::delta::DeltaInstance;
use placement::instance::PpmInstance;
use placement::passive::ExactOptions;
use popgen::{PopSpec, TrafficSpec};
use popmond::json::{self, Value};
use popmond::protocol::{parse_request, Request, WhatIf, DEFAULT_MAX_NODES};
use popmond::workload::standard_sessions;
use popmond::{spawn, ServerConfig, Service, ServiceConfig};

const STEPS_PER_SESSION: usize = 10;
const CHECKPOINT_EVERY: usize = 5;
const CHECKPOINT_K: f64 = 0.8;

/// Rebuilds the instance exactly the way `load_spec` does for the
/// `"small"` preset, as an independent what-if target.
fn build_cold(seed: u64, routed: bool) -> DeltaInstance {
    let pop = PopSpec::small().build();
    let ts = TrafficSpec::default().generate(&pop, seed);
    if routed {
        DeltaInstance::from_traffic(&pop.graph, &ts)
    } else {
        DeltaInstance::from_instance(&PpmInstance::from_traffic(&pop.graph, &ts))
    }
}

/// Applies a parsed protocol mutation to the independent cold instance.
fn apply(delta: &mut DeltaInstance, action: &WhatIf) {
    match action {
        WhatIf::FailLink(e) => {
            delta.fail_link(*e);
        }
        WhatIf::RestoreLink(e) => {
            delta.restore_link(*e);
        }
        WhatIf::ScaleDemand { t, factor } => delta.scale_demand(*t, *factor),
        WhatIf::AddFlow { volume, support } => {
            delta.add_flow(*volume, support.clone());
        }
        WhatIf::RemoveFlow(t) => delta.remove_flow(*t),
        WhatIf::SetInstalled(installed) => delta.set_installed(installed),
    }
}

fn roundtrip(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
    writer.write_all(req.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(!line.is_empty(), "server closed mid-session on {req}");
    line.trim_end().to_string()
}

fn run_sessions(routed: bool, count: usize, base_seed: u64) {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let config = ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    };
    let handle = spawn("127.0.0.1:0", service, config).expect("bind ephemeral port");
    let mut writer = TcpStream::connect(handle.addr()).unwrap();
    writer.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(writer.try_clone().unwrap());

    let mut transcript: Vec<(String, String)> = Vec::new();
    let mut checkpoints = 0usize;

    for (i, mut session) in standard_sessions(base_seed, count, routed)
        .into_iter()
        .enumerate()
    {
        // The session's instance seed mirrors standard_sessions' layout.
        let instance_seed = base_seed + i as u64;
        let mut cold = build_cold(instance_seed, routed);

        let load_line = session.next_line();
        let load_resp = roundtrip(&mut writer, &mut reader, &load_line);
        let doc = json::parse(&load_resp).expect("load response is JSON");
        assert_eq!(
            doc.get("ok").and_then(Value::as_bool),
            Some(true),
            "{load_resp}"
        );
        let links = doc.get("links").and_then(Value::as_u64).unwrap() as usize;
        let traffics = doc.get("traffics").and_then(Value::as_u64).unwrap() as usize;
        assert_eq!(
            links,
            cold.num_edges(),
            "load response disagrees with cold build"
        );
        assert_eq!(
            traffics,
            cold.traffic_count(),
            "load response disagrees with cold build"
        );
        session.observe_load(links, traffics);
        transcript.push((load_line, load_resp));

        for step in 0..STEPS_PER_SESSION {
            let line = session.next_line();
            let resp = roundtrip(&mut writer, &mut reader, &line);
            let doc = json::parse(&resp).expect("response is JSON");
            assert_eq!(
                doc.get("ok").and_then(Value::as_bool),
                Some(true),
                "generated requests are always in-range: {line} -> {resp}"
            );
            if let Ok(Request::WhatIf { action, .. }) = parse_request(&line) {
                apply(&mut cold, &action);
            }
            transcript.push((line, resp));

            if (step + 1) % CHECKPOINT_EVERY == 0 {
                let ck = format!(
                    r#"{{"op":"solve","id":"{}","method":"exact","k":{CHECKPOINT_K}}}"#,
                    session.id()
                );
                let resp = roundtrip(&mut writer, &mut reader, &ck);
                let doc = json::parse(&resp).expect("checkpoint response is JSON");
                assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true), "{resp}");
                let service_feasible = doc.get("feasible").and_then(Value::as_bool).unwrap();
                let opts = ExactOptions {
                    max_nodes: DEFAULT_MAX_NODES,
                    ..Default::default()
                };
                match cold.solve_exact(CHECKPOINT_K, &opts) {
                    None => assert!(
                        !service_feasible,
                        "service found a solution where a cold solve proves none exists: {resp}"
                    ),
                    Some(sol) => {
                        assert!(
                            service_feasible,
                            "service reported infeasible but a cold solve found {} devices: {resp}",
                            sol.device_count()
                        );
                        let devices = doc.get("devices").and_then(Value::as_u64).unwrap() as usize;
                        assert_eq!(
                            devices,
                            sol.device_count(),
                            "warm chain and cold solve disagree on the optimum \
                             (session {}, step {step}): {resp}",
                            session.id()
                        );
                    }
                }
                checkpoints += 1;
                transcript.push((ck, resp));
            }
        }
    }
    handle.shutdown();
    assert!(checkpoints >= count, "checkpoint coverage collapsed");

    // Batch replay: the identical request stream through a fresh Service,
    // no TCP — every response must be byte-identical.
    let batch = Service::new(ServiceConfig::default());
    for (req, expected) in &transcript {
        let got = batch.handle_line(req).text;
        assert_eq!(
            &got, expected,
            "service and batch replay diverged on request: {req}"
        );
    }
}

#[test]
fn sixty_four_unrouted_sessions_replay_byte_identically() {
    run_sessions(false, 64, 100);
}

#[test]
fn routed_sessions_replay_byte_identically() {
    run_sessions(true, 8, 900);
}
