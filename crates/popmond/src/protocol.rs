//! Wire protocol: request grammar, validation, and typed errors.
//!
//! One request per line, one response per line, both compact JSON objects
//! (see `DESIGN.md` § "The popmond service" for the full grammar). Every
//! failure is a typed one-line error —
//! `{"ok":false,"error":{"code":C,"message":M}}` — and never tears down
//! the connection or the instance it addressed: requests are validated
//! *before* any state is touched, so a rejected mutation leaves the
//! instance exactly as it was.

use crate::json::Value;

/// Upper bound on a request line (bytes, newline excluded). Longer lines
/// are answered with an `oversized_line` error and drained.
pub const MAX_LINE: usize = 1 << 20;

/// Default page size for placement lists in responses.
pub const DEFAULT_PAGE_SIZE: usize = 64;

/// Largest accepted `page_size`.
pub const MAX_PAGE_SIZE: usize = 4096;

/// Default node budget for exact solves (matches
/// `placement::passive::ExactOptions::default`).
pub const DEFAULT_MAX_NODES: usize = 50_000;

/// Largest accepted per-request node budget.
pub const MAX_MAX_NODES: usize = 5_000_000;

/// Largest accepted ensemble size for a `score_ensemble` request.
pub const MAX_SCENARIOS: usize = 4096;

/// Deterministic deadline calibration: work units granted per millisecond
/// of a requested `deadline_ms`. This is a *fixed constant*, not a
/// measured rate — a deadline-shaped request maps to exactly the same
/// [`SolveQuery::effective_budget`] on every machine and run, so service
/// behavior under deadlines stays reproducible in tests. The value is
/// sized so that single-digit-millisecond deadlines already admit the
/// root relaxation on the paper-scale instances.
pub const WORK_UNITS_PER_MS: u64 = 2_000;

/// Back-off hint (milliseconds) attached to `overloaded` shed errors.
pub const RETRY_AFTER_MS: u64 = 50;

/// A typed protocol error: a short machine-readable code plus a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Stable machine-readable code (`parse`, `bad_request`, …).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Client back-off hint, only set on `overloaded` shed errors.
    pub retry_after_ms: Option<u64>,
}

impl Error {
    /// Builds an error with the given code.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        Error {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Builds the `overloaded` shed error with its back-off hint: every
    /// request-processing slot is busy and the waiting queue is at its
    /// cap, so the request was refused *without* touching any state.
    pub fn overloaded(retry_after_ms: u64) -> Self {
        Error {
            code: "overloaded",
            message: format!(
                "all request slots busy and the queue is full; retry in {retry_after_ms} ms"
            ),
            retry_after_ms: Some(retry_after_ms),
        }
    }

    /// Serializes to the one-line error response.
    pub fn to_json(&self) -> String {
        let mut inner = vec![
            ("code".into(), Value::Str(self.code.into())),
            ("message".into(), Value::Str(self.message.clone())),
        ];
        if let Some(ms) = self.retry_after_ms {
            inner.push(("retry_after_ms".into(), Value::Num(ms as f64)));
        }
        Value::Obj(vec![
            ("ok".into(), Value::Bool(false)),
            ("error".into(), Value::Obj(inner)),
        ])
        .to_json()
    }
}

/// Which optimization a `solve` asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Passive monitoring: tap placement on links (`PPM(k)`).
    Ppm,
    /// Active monitoring: beacon placement on the router subgraph.
    Apm,
}

/// Which solver a `solve` asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The paper's greedy (PPM: decreasing-load greedy; APM: improved
    /// greedy beacon placement).
    Greedy,
    /// Exact MIP/ILP with a node budget, warm-started along the
    /// instance's delta chain.
    Exact,
}

/// A fully validated solve query (the solve-cache key is derived from
/// exactly these fields).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveQuery {
    /// PPM or APM.
    pub mode: Mode,
    /// Greedy or exact.
    pub method: Method,
    /// Coverage fraction for PPM (ignored by APM).
    pub k: f64,
    /// Branch-and-bound node budget for exact solves.
    pub max_nodes: usize,
    /// Optional anytime work budget (deterministic solver work units);
    /// exhausting it degrades the solve instead of failing it.
    pub budget: Option<u64>,
    /// Optional wall-clock deadline, mapped onto a work budget through
    /// [`WORK_UNITS_PER_MS`] — a *deterministic* proxy, never a timer.
    pub deadline_ms: Option<u64>,
}

impl SolveQuery {
    /// The work budget the solver actually runs under: the explicit
    /// `budget`, the deadline mapped through [`WORK_UNITS_PER_MS`], or
    /// the tighter of the two when both are set. `None` means unbounded —
    /// the byte-identical legacy behavior.
    pub fn effective_budget(&self) -> Option<u64> {
        let from_deadline = self
            .deadline_ms
            .map(|ms| ms.saturating_mul(WORK_UNITS_PER_MS).max(1));
        match (self.budget, from_deadline) {
            (Some(b), Some(d)) => Some(b.min(d)),
            (b, d) => b.or(d),
        }
    }
}

/// Pagination of the placement list in a solve response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Page {
    /// Zero-based page index.
    pub page: usize,
    /// Entries per page.
    pub page_size: usize,
}

/// A what-if mutation, validated for shape (range checks against the
/// target instance happen in the service layer, which knows the sizes).
#[derive(Debug, Clone, PartialEq)]
pub enum WhatIf {
    /// Fail a link: forbid devices on it and re-route crossing traffics
    /// (routed instances).
    FailLink(usize),
    /// Restore a previously failed link.
    RestoreLink(usize),
    /// Multiply one traffic's demand.
    ScaleDemand {
        /// Traffic index.
        t: usize,
        /// Multiplier (finite, and the scaled volume must stay ≥ 0).
        factor: f64,
    },
    /// Add a flow with the given volume and link support.
    AddFlow {
        /// Volume (finite, ≥ 0).
        volume: f64,
        /// Link indices the flow crosses.
        support: Vec<usize>,
    },
    /// Remove traffic `t` (indices above shift down).
    RemoveFlow(usize),
    /// Replace the pre-installed device set.
    SetInstalled(Vec<usize>),
}

/// A parsed, shape-validated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Load an instance from a `popgen::fileio` document.
    Load {
        /// Instance id (cache key).
        id: String,
        /// The document text.
        doc: String,
        /// Route traffic on the topology (enables re-routing on link
        /// failure) instead of taking supports as given.
        routed: bool,
    },
    /// Load an instance from a named preset or a `FamilySpec` line.
    LoadSpec {
        /// Instance id (cache key).
        id: String,
        /// Preset name (`small`, `paper_15`, …) or family line
        /// (`"waxman routers=30 …"`).
        spec: String,
        /// Generator seed.
        seed: u64,
        /// As in [`Request::Load`].
        routed: bool,
    },
    /// Solve on the current state of an instance.
    Solve {
        /// Instance id.
        id: String,
        /// The query.
        query: SolveQuery,
        /// Placement-list pagination.
        page: Page,
    },
    /// Mutate an instance, optionally re-solving in the same request.
    WhatIf {
        /// Instance id.
        id: String,
        /// The mutation.
        action: WhatIf,
        /// Optional embedded re-solve after the mutation.
        resolve: Option<SolveQuery>,
        /// Pagination for the embedded solve.
        page: Page,
    },
    /// Score a fixed placement over a seeded failure ensemble sampled on
    /// the instance's topology, walking every scenario through the
    /// resident delta chain (the chain comes back in its entry state).
    ScoreEnsemble {
        /// Instance id.
        id: String,
        /// `FailureSpec` line (`"srlg groups=8 group_rate=0.05 …"`).
        failure: String,
        /// Optional `DynamicSpec` line enabling demand perturbation
        /// (`"dynamic jitter=0.1 …"`).
        dynamic: Option<String>,
        /// Ensemble size, `∈ [1, MAX_SCENARIOS]`.
        scenarios: usize,
        /// Sampling seed.
        seed: u64,
        /// Placement to score; defaults to the instance's installed set.
        placement: Option<Vec<usize>>,
        /// Pagination for the per-scenario rows.
        page: Page,
    },
    /// Summarize an instance (topology, traffic, chain counters).
    Inspect {
        /// Instance id.
        id: String,
    },
    /// List resident instances.
    List,
    /// Global service counters.
    Stats,
    /// Liveness/readiness probe: cheap, touches no instance state, and
    /// never sheds (the transport answers it even under overload).
    Health,
    /// Drop an instance from the cache.
    Evict {
        /// Instance id.
        id: String,
    },
    /// Stop the server after responding.
    Shutdown,
}

fn bad(msg: impl Into<String>) -> Error {
    Error::new("bad_request", msg)
}

fn req_str(v: &Value, key: &str) -> Result<String, Error> {
    v.get(key)
        .ok_or_else(|| bad(format!("missing field {key:?}")))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| bad(format!("field {key:?} must be a string")))
}

fn opt_bool(v: &Value, key: &str, default: bool) -> Result<bool, Error> {
    match v.get(key) {
        None => Ok(default),
        Some(b) => b
            .as_bool()
            .ok_or_else(|| bad(format!("field {key:?} must be a boolean"))),
    }
}

fn opt_index(v: &Value, key: &str, default: usize) -> Result<usize, Error> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => x
            .as_u64()
            .map(|u| u as usize)
            .ok_or_else(|| bad(format!("field {key:?} must be a non-negative integer"))),
    }
}

fn req_index(v: &Value, key: &str) -> Result<usize, Error> {
    v.get(key)
        .ok_or_else(|| bad(format!("missing field {key:?}")))?
        .as_u64()
        .map(|u| u as usize)
        .ok_or_else(|| bad(format!("field {key:?} must be a non-negative integer")))
}

fn req_f64(v: &Value, key: &str) -> Result<f64, Error> {
    v.get(key)
        .ok_or_else(|| bad(format!("missing field {key:?}")))?
        .as_f64()
        .ok_or_else(|| bad(format!("field {key:?} must be a number")))
}

fn index_list(v: &Value, key: &str) -> Result<Vec<usize>, Error> {
    let arr = v
        .get(key)
        .ok_or_else(|| bad(format!("missing field {key:?}")))?
        .as_arr()
        .ok_or_else(|| bad(format!("field {key:?} must be an array")))?;
    arr.iter()
        .map(|x| {
            x.as_u64()
                .map(|u| u as usize)
                .ok_or_else(|| bad(format!("field {key:?} must hold non-negative integers")))
        })
        .collect()
}

fn parse_page(v: &Value) -> Result<Page, Error> {
    let page = opt_index(v, "page", 0)?;
    let page_size = opt_index(v, "page_size", DEFAULT_PAGE_SIZE)?;
    if page_size == 0 || page_size > MAX_PAGE_SIZE {
        return Err(bad(format!(
            "page_size must be in [1, {MAX_PAGE_SIZE}], got {page_size}"
        )));
    }
    Ok(Page { page, page_size })
}

fn parse_query(v: &Value) -> Result<SolveQuery, Error> {
    let mode = match v.get("mode").map(|m| m.as_str()) {
        None => Mode::Ppm,
        Some(Some("ppm")) => Mode::Ppm,
        Some(Some("apm")) => Mode::Apm,
        Some(other) => {
            return Err(bad(format!(
                "mode must be \"ppm\" or \"apm\", got {other:?}"
            )))
        }
    };
    let method = match v.get("method").map(|m| m.as_str()) {
        None => Method::Exact,
        Some(Some("greedy")) => Method::Greedy,
        Some(Some("exact")) => Method::Exact,
        Some(other) => {
            return Err(bad(format!(
                "method must be \"greedy\" or \"exact\", got {other:?}"
            )))
        }
    };
    let k = match mode {
        // k is meaningless for APM; pin it so the cache key is canonical.
        Mode::Apm => 0.0,
        Mode::Ppm => {
            let k = req_f64(v, "k")?;
            if !k.is_finite() || !(0.0..=1.0).contains(&k) {
                return Err(bad(format!("k must lie in [0, 1], got {k}")));
            }
            k
        }
    };
    let max_nodes = opt_index(v, "max_nodes", DEFAULT_MAX_NODES)?;
    if max_nodes == 0 || max_nodes > MAX_MAX_NODES {
        return Err(bad(format!(
            "max_nodes must be in [1, {MAX_MAX_NODES}], got {max_nodes}"
        )));
    }
    let opt_u64_min1 = |key: &str| -> Result<Option<u64>, Error> {
        match v.get(key) {
            None => Ok(None),
            Some(x) => match x.as_u64() {
                Some(n) if n >= 1 => Ok(Some(n)),
                _ => Err(bad(format!("field {key:?} must be a positive integer"))),
            },
        }
    };
    Ok(SolveQuery {
        mode,
        method,
        k,
        max_nodes,
        budget: opt_u64_min1("budget")?,
        deadline_ms: opt_u64_min1("deadline_ms")?,
    })
}

fn parse_whatif(v: &Value) -> Result<WhatIf, Error> {
    let action = req_str(v, "action")?;
    match action.as_str() {
        "fail_link" => Ok(WhatIf::FailLink(req_index(v, "link")?)),
        "restore_link" => Ok(WhatIf::RestoreLink(req_index(v, "link")?)),
        "scale_demand" => {
            let factor = req_f64(v, "factor")?;
            if !factor.is_finite() || factor < 0.0 {
                return Err(bad(format!("factor must be finite and >= 0, got {factor}")));
            }
            Ok(WhatIf::ScaleDemand {
                t: req_index(v, "traffic")?,
                factor,
            })
        }
        "add_flow" => {
            let volume = req_f64(v, "volume")?;
            if !volume.is_finite() || volume < 0.0 {
                return Err(bad(format!("volume must be finite and >= 0, got {volume}")));
            }
            Ok(WhatIf::AddFlow {
                volume,
                support: index_list(v, "support")?,
            })
        }
        "remove_flow" => Ok(WhatIf::RemoveFlow(req_index(v, "traffic")?)),
        "set_installed" => Ok(WhatIf::SetInstalled(index_list(v, "installed")?)),
        other => Err(bad(format!("unknown what-if action {other:?}"))),
    }
}

/// Parses and shape-validates one request line.
pub fn parse_request(line: &str) -> Result<Request, Error> {
    let v = crate::json::parse(line).map_err(|e| Error::new("parse", e))?;
    if !matches!(v, Value::Obj(_)) {
        return Err(Error::new("parse", "request must be a JSON object"));
    }
    let op = req_str(&v, "op")?;
    match op.as_str() {
        "load" => Ok(Request::Load {
            id: req_str(&v, "id")?,
            doc: req_str(&v, "doc")?,
            routed: opt_bool(&v, "routed", false)?,
        }),
        "load_spec" => Ok(Request::LoadSpec {
            id: req_str(&v, "id")?,
            spec: req_str(&v, "spec")?,
            seed: match v.get("seed") {
                None => 0,
                Some(s) => s
                    .as_u64()
                    .ok_or_else(|| bad("field \"seed\" must be a non-negative integer"))?,
            },
            routed: opt_bool(&v, "routed", false)?,
        }),
        "solve" => Ok(Request::Solve {
            id: req_str(&v, "id")?,
            query: parse_query(&v)?,
            page: parse_page(&v)?,
        }),
        "whatif" => {
            let resolve = match v.get("resolve") {
                None => None,
                Some(r) if matches!(r, Value::Obj(_)) => Some(parse_query(r)?),
                Some(_) => return Err(bad("field \"resolve\" must be an object")),
            };
            Ok(Request::WhatIf {
                id: req_str(&v, "id")?,
                action: parse_whatif(&v)?,
                resolve,
                page: parse_page(&v)?,
            })
        }
        "score_ensemble" => {
            let scenarios = req_index(&v, "scenarios")?;
            if scenarios == 0 || scenarios > MAX_SCENARIOS {
                return Err(bad(format!(
                    "scenarios must be in [1, {MAX_SCENARIOS}], got {scenarios}"
                )));
            }
            Ok(Request::ScoreEnsemble {
                id: req_str(&v, "id")?,
                failure: req_str(&v, "failure")?,
                dynamic: match v.get("dynamic") {
                    None => None,
                    Some(d) => Some(
                        d.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| bad("field \"dynamic\" must be a string"))?,
                    ),
                },
                scenarios,
                seed: match v.get("seed") {
                    None => 0,
                    Some(s) => s
                        .as_u64()
                        .ok_or_else(|| bad("field \"seed\" must be a non-negative integer"))?,
                },
                placement: match v.get("placement") {
                    None => None,
                    Some(_) => Some(index_list(&v, "placement")?),
                },
                page: parse_page(&v)?,
            })
        }
        "inspect" => Ok(Request::Inspect {
            id: req_str(&v, "id")?,
        }),
        "list" => Ok(Request::List),
        "stats" => Ok(Request::Stats),
        "health" => Ok(Request::Health),
        "evict" => Ok(Request::Evict {
            id: req_str(&v, "id")?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(Error::new("unknown_op", format!("unknown op {other:?}"))),
    }
}

/// Canonical cache-key text for a solve query: every field pinned, so two
/// requests that differ only in spelling (defaulted vs explicit fields)
/// coalesce onto the same cached outcome. The anytime fields are
/// appended *only when set*, so keys for unbudgeted queries are
/// byte-identical to the ones this service has always produced (existing
/// memo behavior and golden transcripts are untouched).
pub fn query_key(q: &SolveQuery) -> String {
    let mut key = format!(
        "mode={};method={};k={};max_nodes={}",
        match q.mode {
            Mode::Ppm => "ppm",
            Mode::Apm => "apm",
        },
        match q.method {
            Method::Greedy => "greedy",
            Method::Exact => "exact",
        },
        q.k.to_bits(),
        q.max_nodes
    );
    if let Some(b) = q.budget {
        key.push_str(&format!(";budget={b}"));
    }
    if let Some(d) = q.deadline_ms {
        key.push_str(&format!(";deadline_ms={d}"));
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_solve_request() {
        let r = parse_request(
            r#"{"op":"solve","id":"x","mode":"ppm","method":"exact","k":0.8,"page":1,"page_size":10}"#,
        )
        .unwrap();
        match r {
            Request::Solve { id, query, page } => {
                assert_eq!(id, "x");
                assert_eq!(query.mode, Mode::Ppm);
                assert_eq!(query.method, Method::Exact);
                assert_eq!(query.k, 0.8);
                assert_eq!(query.max_nodes, DEFAULT_MAX_NODES);
                assert_eq!(
                    page,
                    Page {
                        page: 1,
                        page_size: 10
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn defaulted_and_explicit_queries_share_a_key() {
        let a = parse_request(r#"{"op":"solve","id":"x","k":0.8}"#).unwrap();
        let b = parse_request(
            r#"{"op":"solve","id":"x","mode":"ppm","method":"exact","k":0.8,"max_nodes":50000}"#,
        )
        .unwrap();
        let (Request::Solve { query: qa, .. }, Request::Solve { query: qb, .. }) = (a, b) else {
            panic!("not solves");
        };
        assert_eq!(query_key(&qa), query_key(&qb));
    }

    #[test]
    fn rejects_out_of_range_k_and_bad_shapes() {
        for (line, code) in [
            (r#"{"op":"solve","id":"x","k":1.5}"#, "bad_request"),
            (r#"{"op":"solve","id":"x","k":-0.1}"#, "bad_request"),
            (r#"{"op":"solve","id":"x"}"#, "bad_request"),
            (r#"{"op":"solve","k":0.5}"#, "bad_request"),
            (r#"{"op":"frobnicate"}"#, "unknown_op"),
            (r#"{"id":"x"}"#, "bad_request"),
            (
                r#"{"op":"solve","id":"x","k":0.5,"page_size":0}"#,
                "bad_request",
            ),
            (r#"{"op":"whatif","id":"x","action":"warp"}"#, "bad_request"),
            (
                r#"{"op":"whatif","id":"x","action":"scale_demand","traffic":0,"factor":-1}"#,
                "bad_request",
            ),
            (r#"not json"#, "parse"),
            (r#"[1,2]"#, "parse"),
        ] {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.code, code, "{line}");
        }
    }

    #[test]
    fn whatif_with_embedded_resolve() {
        let r = parse_request(
            r#"{"op":"whatif","id":"x","action":"fail_link","link":3,"resolve":{"k":0.9}}"#,
        )
        .unwrap();
        match r {
            Request::WhatIf {
                action, resolve, ..
            } => {
                assert_eq!(action, WhatIf::FailLink(3));
                assert_eq!(resolve.unwrap().k, 0.9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_a_score_ensemble_request() {
        let r = parse_request(
            r#"{"op":"score_ensemble","id":"x","failure":"srlg groups=4","dynamic":"dynamic jitter=0.2","scenarios":100,"seed":7,"placement":[0,3],"page_size":16}"#,
        )
        .unwrap();
        match r {
            Request::ScoreEnsemble {
                id,
                failure,
                dynamic,
                scenarios,
                seed,
                placement,
                page,
            } => {
                assert_eq!(id, "x");
                assert_eq!(failure, "srlg groups=4");
                assert_eq!(dynamic.as_deref(), Some("dynamic jitter=0.2"));
                assert_eq!(scenarios, 100);
                assert_eq!(seed, 7);
                assert_eq!(placement, Some(vec![0, 3]));
                assert_eq!(
                    page,
                    Page {
                        page: 0,
                        page_size: 16
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults: no dynamic, seed 0, installed-set placement.
        let r = parse_request(r#"{"op":"score_ensemble","id":"x","failure":"srlg","scenarios":1}"#)
            .unwrap();
        match r {
            Request::ScoreEnsemble {
                dynamic,
                seed,
                placement,
                ..
            } => {
                assert_eq!(dynamic, None);
                assert_eq!(seed, 0);
                assert_eq!(placement, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        for line in [
            r#"{"op":"score_ensemble","id":"x","failure":"srlg","scenarios":0}"#,
            r#"{"op":"score_ensemble","id":"x","failure":"srlg","scenarios":5000}"#,
            r#"{"op":"score_ensemble","id":"x","scenarios":1}"#,
            r#"{"op":"score_ensemble","id":"x","failure":"srlg","scenarios":1,"dynamic":7}"#,
        ] {
            assert_eq!(
                parse_request(line).unwrap_err().code,
                "bad_request",
                "{line}"
            );
        }
    }

    #[test]
    fn error_renders_as_one_line_json() {
        let e = Error::new("bad_index", "link 99 out of range");
        let s = e.to_json();
        assert_eq!(
            s,
            r#"{"ok":false,"error":{"code":"bad_index","message":"link 99 out of range"}}"#
        );
        assert!(!s.contains('\n'));
    }

    #[test]
    fn overloaded_error_carries_the_retry_hint() {
        let s = Error::overloaded(50).to_json();
        assert!(s.contains(r#""code":"overloaded""#), "{s}");
        assert!(s.contains(r#""retry_after_ms":50"#), "{s}");
        assert!(!s.contains('\n'));
    }

    #[test]
    fn parses_budget_and_deadline_and_keeps_unset_keys_identical() {
        let q = |line: &str| -> SolveQuery {
            match parse_request(line).unwrap() {
                Request::Solve { query, .. } => query,
                other => panic!("unexpected {other:?}"),
            }
        };
        let plain = q(r#"{"op":"solve","id":"x","k":0.8}"#);
        assert_eq!(plain.effective_budget(), None);
        // Unset anytime fields leave the cache key byte-identical to the
        // historical four-field form.
        assert!(
            !query_key(&plain).contains("budget"),
            "{}",
            query_key(&plain)
        );

        let b = q(r#"{"op":"solve","id":"x","k":0.8,"budget":4096}"#);
        assert_eq!(b.effective_budget(), Some(4096));
        assert!(query_key(&b).ends_with(";budget=4096"));
        assert_ne!(query_key(&plain), query_key(&b));

        // A deadline maps through the fixed calibration constant, and the
        // tighter of budget/deadline wins.
        let d = q(r#"{"op":"solve","id":"x","k":0.8,"deadline_ms":3}"#);
        assert_eq!(d.effective_budget(), Some(3 * WORK_UNITS_PER_MS));
        let both = q(r#"{"op":"solve","id":"x","k":0.8,"budget":10,"deadline_ms":3}"#);
        assert_eq!(both.effective_budget(), Some(10));
        assert!(query_key(&both).ends_with(";budget=10;deadline_ms=3"));

        for line in [
            r#"{"op":"solve","id":"x","k":0.8,"budget":0}"#,
            r#"{"op":"solve","id":"x","k":0.8,"budget":-4}"#,
            r#"{"op":"solve","id":"x","k":0.8,"deadline_ms":0}"#,
            r#"{"op":"solve","id":"x","k":0.8,"deadline_ms":1.5}"#,
        ] {
            assert_eq!(
                parse_request(line).unwrap_err().code,
                "bad_request",
                "{line}"
            );
        }
    }

    #[test]
    fn parses_health() {
        assert_eq!(
            parse_request(r#"{"op":"health"}"#).unwrap(),
            Request::Health
        );
    }
}
