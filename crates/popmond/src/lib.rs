//! popmond — a resident placement service over warm delta chains.
//!
//! The daemon keeps [`placement::DeltaInstance`]s alive between requests
//! so what-if queries (link failures, demand scaling, flow churn) are
//! answered by incremental dual-simplex repairs instead of cold solves.
//! The wire protocol is line-delimited JSON over TCP — hand-rolled in
//! [`json`] because the workspace is offline and vendors no network or
//! serialization dependencies.
//!
//! The layering is deliberate: [`state::Service::handle_line`] is the
//! single request entry point, and [`server`] is a thin TCP transport
//! around it. Tests and benches drive `handle_line` directly, which is
//! what makes the service-vs-batch differential harness byte-exact — the
//! transport cannot introduce behavior of its own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod protocol;
pub mod server;
pub mod state;
pub mod workload;

pub use server::{spawn, ServerConfig, ServerHandle};
pub use state::{Reply, Service, ServiceConfig};
