//! The resident service: sharded instance cache, warm delta chains, and
//! per-instance solve coalescing.
//!
//! [`Service`] is the whole daemon behind one thread-safe entry point,
//! [`Service::handle_line`]: the TCP layer ([`crate::server`]) is a thin
//! transport around it, and the differential test harness drives the same
//! entry point directly — so "service response" and "batch replay
//! response" are produced by the same code over *different solver state*
//! (a long-lived warm chain vs a freshly built one), which is exactly the
//! equivalence under test.
//!
//! ## Cache layout
//!
//! Instances live in a 16-way sharded `id → Arc<Slot>` map (hash-sharded
//! like `engine::Memo`, first insert wins). Each slot holds the immutable
//! topology plus a mutex-guarded [`SlotState`]: the instance's
//! [`DeltaInstance`] warm chain, a version counter bumped by every
//! mutation, and a per-version solve memo. A solve locks the slot, so
//! identical concurrent queries serialize onto one solver run: the first
//! computes and stores, the rest hit the memo — that is the coalescing
//! contract, and it is deterministic because the memo key covers the full
//! canonical query and the instance version.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use engine::Memo;
use placement::delta::DeltaInstance;
use placement::instance::PpmInstance;
use placement::resilience::score_ensemble;
use placement::solve::{self, PlacementError, SolveOutcome, SolveRequest};
use popgen::{
    fileio, DynamicSpec, FailureModel, FailureSpec, FamilySpec, GravitySpec, Pop, PopSpec,
    SpecError, TrafficSet, TrafficSpec,
};

use crate::json::Value;
use crate::protocol::{self, Error, Method, Mode, Page, Request, SolveQuery, WhatIf};

/// Number of instance-cache shards (mirrors `engine::Memo`).
const SHARDS: usize = 16;

/// FNV-1a over a version prefix plus a text key — the solve-memo key.
fn fnv64(version: u64, text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in version.to_le_bytes().into_iter().chain(text.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn shard_of(id: &str) -> usize {
    (fnv64(0, id) % SHARDS as u64) as usize
}

/// Maps a typed `popgen` spec error onto the wire's one-line error
/// contract (keeping the field/reason structure instead of re-stringifying
/// an opaque blob).
fn spec_error(e: SpecError) -> Error {
    Error::new("bad_spec", format!("invalid {}: {}", e.field, e.message))
}

/// Maps a typed `placement` error onto the wire's one-line error contract:
/// index-shaped fields keep the `bad_index` code (and their messages are
/// byte-identical to the ones this service always emitted); everything
/// else is a `bad_request`.
fn map_placement_error(e: PlacementError) -> Error {
    let code = match e.field {
        "link" | "traffic" | "support" | "installed" | "placement" => "bad_index",
        _ => "bad_request",
    };
    Error::new(code, e.message)
}

/// Immutable facts about a loaded instance.
struct SlotMeta {
    pop: Pop,
    routed: bool,
    /// Where the instance came from (`"document"` or the spec line).
    origin: String,
}

/// The mutable half of a slot, guarded by one mutex: the warm chain and
/// its coalescing memo.
struct SlotState {
    delta: DeltaInstance,
    /// Bumped by every mutation; part of every solve-memo key.
    version: u64,
    mutations: u64,
    /// Solver invocations actually performed.
    solves: u64,
    /// Responses served from the per-version memo instead of a solve.
    coalesced: u64,
    /// Per-version solve cache; replaced on every mutation.
    memo: Memo,
    /// Active-monitoring cache: the router topology never mutates, so
    /// this one survives version bumps.
    apm_memo: Memo,
}

struct Slot {
    meta: SlotMeta,
    state: Mutex<SlotState>,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Hard cap on resident instances; loads beyond it get `cache_full`.
    pub max_instances: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { max_instances: 256 }
    }
}

/// One response line plus the shutdown signal.
pub struct Reply {
    /// The JSON response, newline excluded.
    pub text: String,
    /// `true` after a `shutdown` request: the transport should stop.
    pub shutdown: bool,
}

impl Reply {
    fn ok(text: String) -> Self {
        Reply {
            text,
            shutdown: false,
        }
    }
}

/// The resident placement service (see the module docs).
pub struct Service {
    shards: [Mutex<HashMap<String, Arc<Slot>>>; SHARDS],
    config: ServiceConfig,
    requests: AtomicU64,
}

impl Service {
    /// Creates an empty service.
    pub fn new(config: ServiceConfig) -> Self {
        Service {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            config,
            requests: AtomicU64::new(0),
        }
    }

    /// Handles one request line and produces one response line. Never
    /// panics on untrusted input: malformed requests become typed errors,
    /// and validation happens before any state is touched.
    pub fn handle_line(&self, line: &str) -> Reply {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if line.len() > protocol::MAX_LINE {
            return Reply::ok(
                Error::new(
                    "oversized_line",
                    format!(
                        "request of {} bytes exceeds the {} byte limit",
                        line.len(),
                        protocol::MAX_LINE
                    ),
                )
                .to_json(),
            );
        }
        let request = match protocol::parse_request(line) {
            Ok(r) => r,
            Err(e) => return Reply::ok(e.to_json()),
        };
        match request {
            Request::Load { id, doc, routed } => Reply::ok(self.load_document(id, &doc, routed)),
            Request::LoadSpec {
                id,
                spec,
                seed,
                routed,
            } => Reply::ok(self.load_spec(id, &spec, seed, routed)),
            Request::Solve { id, query, page } => Reply::ok(self.solve(&id, &query, page)),
            Request::WhatIf {
                id,
                action,
                resolve,
                page,
            } => Reply::ok(self.whatif(&id, &action, resolve.as_ref(), page)),
            Request::ScoreEnsemble {
                id,
                failure,
                dynamic,
                scenarios,
                seed,
                placement,
                page,
            } => Reply::ok(self.score_ensemble(
                &id,
                &failure,
                dynamic.as_deref(),
                scenarios,
                seed,
                placement,
                page,
            )),
            Request::Inspect { id } => Reply::ok(self.inspect(&id)),
            Request::List => Reply::ok(self.list()),
            Request::Stats => Reply::ok(self.stats()),
            Request::Health => Reply::ok(self.health()),
            Request::Evict { id } => Reply::ok(self.evict(&id)),
            Request::Shutdown => Reply {
                text: Value::Obj(vec![
                    ("ok".into(), Value::Bool(true)),
                    ("op".into(), Value::Str("shutdown".into())),
                ])
                .to_json(),
                shutdown: true,
            },
        }
    }

    /// Total requests handled (all connections).
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Number of resident instances.
    pub fn instance_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    // ---- loads ----------------------------------------------------------

    fn load_document(&self, id: String, doc: &str, routed: bool) -> String {
        let (pop, ts) = match fileio::parse(doc) {
            Ok(x) => x,
            Err(e) => return Error::new("bad_document", e.to_string()).to_json(),
        };
        self.insert(id, pop, ts, routed, "document".to_string())
    }

    fn load_spec(&self, id: String, spec: &str, seed: u64, routed: bool) -> String {
        let preset = |s: PopSpec| {
            let pop = s.build();
            let ts = TrafficSpec::default().generate(&pop, seed);
            (pop, ts)
        };
        let (pop, ts) = match spec {
            "small" => preset(PopSpec::small()),
            "paper_10" => preset(PopSpec::paper_10()),
            "paper_15" => preset(PopSpec::paper_15()),
            "paper_29" => preset(PopSpec::paper_29()),
            "paper_80" => preset(PopSpec::paper_80()),
            "scale_20" => preset(PopSpec::scale_20()),
            "scale_25" => preset(PopSpec::scale_25()),
            "scale_50" => preset(PopSpec::scale_50()),
            "scale_100" => preset(PopSpec::scale_100()),
            "large_150" => preset(PopSpec::large_150()),
            line => {
                let family: FamilySpec = match line.parse() {
                    Ok(f) => f,
                    Err(e) => return spec_error(e).to_json(),
                };
                let pop = match family.build(seed) {
                    Ok(p) => p,
                    Err(e) => return spec_error(e).to_json(),
                };
                let ts = GravitySpec::default().generate(&pop, seed);
                (pop, ts)
            }
        };
        self.insert(id, pop, ts, routed, spec.to_string())
    }

    /// First-insert-wins slot creation (like `engine::Memo`): the instance
    /// is built outside the shard lock, and a concurrent load of the same
    /// id keeps whichever slot landed first — both callers get a response
    /// describing the stored slot.
    fn insert(&self, id: String, pop: Pop, ts: TrafficSet, routed: bool, origin: String) -> String {
        let delta = if routed {
            DeltaInstance::from_traffic(&pop.graph, &ts)
        } else {
            DeltaInstance::from_instance(&PpmInstance::from_traffic(&pop.graph, &ts))
        };
        let slot = Arc::new(Slot {
            meta: SlotMeta {
                pop,
                routed,
                origin,
            },
            state: Mutex::new(SlotState {
                delta,
                version: 0,
                mutations: 0,
                solves: 0,
                coalesced: 0,
                memo: Memo::new(),
                apm_memo: Memo::new(),
            }),
        });
        // Count before taking the shard lock (instance_count locks every
        // shard in turn). The cap is a soft guard against unbounded
        // resident instances; a racing load may land one slot over.
        let count = self.instance_count();
        let (stored, created) = {
            let mut shard = self.shards[shard_of(&id)].lock().expect("shard poisoned");
            match shard.get(&id) {
                Some(existing) => (existing.clone(), false),
                None => {
                    if count >= self.config.max_instances {
                        return Error::new(
                            "cache_full",
                            format!(
                                "instance cache holds {count} of {} slots",
                                self.config.max_instances
                            ),
                        )
                        .to_json();
                    }
                    shard.insert(id.clone(), slot.clone());
                    (slot, true)
                }
            }
        };
        let state = stored.state.lock().expect("slot poisoned");
        Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("load".into())),
            ("id".into(), Value::Str(id)),
            ("created".into(), Value::Bool(created)),
            ("routed".into(), Value::Bool(stored.meta.routed)),
            (
                "links".into(),
                Value::Num(stored.meta.pop.graph.edge_count() as f64),
            ),
            (
                "routers".into(),
                Value::Num(stored.meta.pop.routers().len() as f64),
            ),
            (
                "traffics".into(),
                Value::Num(state.delta.traffic_count() as f64),
            ),
            ("version".into(), Value::Num(state.version as f64)),
        ])
        .to_json()
    }

    fn get(&self, id: &str) -> Result<Arc<Slot>, Error> {
        self.shards[shard_of(id)]
            .lock()
            .expect("shard poisoned")
            .get(id)
            .cloned()
            .ok_or_else(|| Error::new("no_such_instance", format!("no instance {id:?}")))
    }

    // ---- solves ---------------------------------------------------------

    fn solve(&self, id: &str, query: &SolveQuery, page: Page) -> String {
        let slot = match self.get(id) {
            Ok(s) => s,
            Err(e) => return e.to_json(),
        };
        let mut state = slot.state.lock().expect("slot poisoned");
        let outcome = run_solve(&slot.meta, &mut state, query);
        let mut fields = vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("solve".into())),
            ("id".into(), Value::Str(id.to_string())),
        ];
        fields.extend(solve_fields(&state, query, &outcome, page));
        Value::Obj(fields).to_json()
    }

    fn whatif(
        &self,
        id: &str,
        action: &WhatIf,
        resolve: Option<&SolveQuery>,
        page: Page,
    ) -> String {
        let slot = match self.get(id) {
            Ok(s) => s,
            Err(e) => return e.to_json(),
        };
        let mut state = slot.state.lock().expect("slot poisoned");
        // The fallible `DeltaInstance` mutators validate against the live
        // instance *before* mutating, so a rejected request cannot poison
        // the chain; their typed errors map onto the wire contract.
        let applied: Result<(&str, usize), PlacementError> = match action {
            WhatIf::FailLink(e) => state.delta.try_fail_link(*e).map(|r| ("fail_link", r)),
            WhatIf::RestoreLink(e) => state
                .delta
                .try_restore_link(*e)
                .map(|r| ("restore_link", r)),
            WhatIf::ScaleDemand { t, factor } => state
                .delta
                .try_scale_demand(*t, *factor)
                .map(|()| ("scale_demand", 0)),
            WhatIf::AddFlow { volume, support } => state
                .delta
                .try_add_flow(*volume, support.clone())
                .map(|_| ("add_flow", 0)),
            WhatIf::RemoveFlow(t) => state.delta.try_remove_flow(*t).map(|()| ("remove_flow", 0)),
            WhatIf::SetInstalled(installed) => state
                .delta
                .try_set_installed(installed)
                .map(|()| ("set_installed", 0)),
        };
        let (name, rerouted) = match applied {
            Ok(x) => x,
            Err(e) => return map_placement_error(e).to_json(),
        };
        state.version += 1;
        state.mutations += 1;
        state.memo = Memo::new();
        let mut fields = vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("whatif".into())),
            ("id".into(), Value::Str(id.to_string())),
            ("action".into(), Value::Str(name.into())),
            ("version".into(), Value::Num(state.version as f64)),
            ("rerouted".into(), Value::Num(rerouted as f64)),
            (
                "traffics".into(),
                Value::Num(state.delta.traffic_count() as f64),
            ),
        ];
        if let Some(query) = resolve {
            let outcome = run_solve(&slot.meta, &mut state, query);
            fields.push((
                "resolve".into(),
                Value::Obj(solve_fields(&state, query, &outcome, page)),
            ));
        }
        Value::Obj(fields).to_json()
    }

    // ---- resilience -----------------------------------------------------

    /// Scores a placement over a seeded failure ensemble through the
    /// slot's resident delta chain. The chain is mutated scenario by
    /// scenario and restored to its entry state before the lock drops, so
    /// the instance version does not change and cached solves stay valid.
    #[allow(clippy::too_many_arguments)]
    fn score_ensemble(
        &self,
        id: &str,
        failure: &str,
        dynamic: Option<&str>,
        scenarios: usize,
        seed: u64,
        placement: Option<Vec<usize>>,
        page: Page,
    ) -> String {
        let slot = match self.get(id) {
            Ok(s) => s,
            Err(e) => return e.to_json(),
        };
        let fspec: FailureSpec = match failure.parse() {
            Ok(f) => f,
            Err(e) => return spec_error(e).to_json(),
        };
        let dspec: Option<DynamicSpec> = match dynamic {
            None => None,
            Some(line) => match line.parse() {
                Ok(d) => Some(d),
                Err(e) => return spec_error(e).to_json(),
            },
        };
        let model = match FailureModel::try_new(&slot.meta.pop, &fspec) {
            Ok(m) => m,
            Err(e) => return spec_error(e).to_json(),
        };
        let mut state = slot.state.lock().expect("slot poisoned");
        let ensemble = match model.sample_scenarios(
            state.delta.traffic_count(),
            dspec.as_ref(),
            scenarios,
            seed,
        ) {
            Ok(s) => s,
            Err(e) => return spec_error(e).to_json(),
        };
        let mut placed = placement.unwrap_or_else(|| state.delta.installed().to_vec());
        placed.sort_unstable();
        placed.dedup();
        let score = match score_ensemble(&mut state.delta, &placed, &ensemble) {
            Ok(s) => s,
            Err(e) => return map_placement_error(e).to_json(),
        };
        let n = score.per_scenario.len();
        let pages = n.div_ceil(page.page_size).max(1);
        let start = page.page.saturating_mul(page.page_size).min(n);
        let end = (start + page.page_size).min(n);
        let rows: Vec<Value> = score.per_scenario[start..end]
            .iter()
            .map(|s| {
                Value::Obj(vec![
                    ("coverage".into(), Value::Num(s.coverage)),
                    ("live_devices".into(), Value::Num(s.live_devices as f64)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("score_ensemble".into())),
            ("id".into(), Value::Str(id.to_string())),
            ("version".into(), Value::Num(state.version as f64)),
            ("scenarios".into(), Value::Num(n as f64)),
            ("devices".into(), Value::Num(placed.len() as f64)),
            (
                "expected_coverage".into(),
                Value::Num(score.expected_coverage),
            ),
            ("p99_tail".into(), Value::Num(score.p99_tail)),
            ("worst_case".into(), Value::Num(score.worst_case)),
            ("page".into(), Value::Num(page.page as f64)),
            ("pages".into(), Value::Num(pages as f64)),
            ("rows".into(), Value::Arr(rows)),
        ])
        .to_json()
    }

    // ---- introspection --------------------------------------------------

    fn inspect(&self, id: &str) -> String {
        let slot = match self.get(id) {
            Ok(s) => s,
            Err(e) => return e.to_json(),
        };
        let state = slot.state.lock().expect("slot poisoned");
        let inst = state.delta.instance();
        let pop = &slot.meta.pop;
        Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("inspect".into())),
            ("id".into(), Value::Str(id.to_string())),
            ("origin".into(), Value::Str(slot.meta.origin.clone())),
            ("routed".into(), Value::Bool(slot.meta.routed)),
            ("routers".into(), Value::Num(pop.routers().len() as f64)),
            ("endpoints".into(), Value::Num(pop.endpoints.len() as f64)),
            ("links".into(), Value::Num(pop.graph.edge_count() as f64)),
            ("traffics".into(), Value::Num(inst.traffics.len() as f64)),
            ("total_volume".into(), Value::Num(inst.total_volume())),
            (
                "max_coverage_fraction".into(),
                Value::Num(inst.max_coverage_fraction()),
            ),
            ("version".into(), Value::Num(state.version as f64)),
            ("mutations".into(), Value::Num(state.mutations as f64)),
            ("solves".into(), Value::Num(state.solves as f64)),
            ("coalesced".into(), Value::Num(state.coalesced as f64)),
            (
                "installed".into(),
                Value::Arr(
                    state
                        .delta
                        .installed()
                        .iter()
                        .map(|&e| Value::Num(e as f64))
                        .collect(),
                ),
            ),
            (
                "disabled".into(),
                Value::Arr(
                    state
                        .delta
                        .disabled()
                        .iter()
                        .map(|&e| Value::Num(e as f64))
                        .collect(),
                ),
            ),
        ])
        .to_json()
    }

    fn list(&self) -> String {
        let mut rows: Vec<(String, Arc<Slot>)> = Vec::new();
        for shard in &self.shards {
            for (id, slot) in shard.lock().expect("shard poisoned").iter() {
                rows.push((id.clone(), slot.clone()));
            }
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        let instances: Vec<Value> = rows
            .into_iter()
            .map(|(id, slot)| {
                let state = slot.state.lock().expect("slot poisoned");
                Value::Obj(vec![
                    ("id".into(), Value::Str(id)),
                    ("routed".into(), Value::Bool(slot.meta.routed)),
                    (
                        "links".into(),
                        Value::Num(slot.meta.pop.graph.edge_count() as f64),
                    ),
                    (
                        "traffics".into(),
                        Value::Num(state.delta.traffic_count() as f64),
                    ),
                    ("version".into(), Value::Num(state.version as f64)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("list".into())),
            ("instances".into(), Value::Arr(instances)),
        ])
        .to_json()
    }

    fn stats(&self) -> String {
        Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("stats".into())),
            ("instances".into(), Value::Num(self.instance_count() as f64)),
            ("requests".into(), Value::Num(self.request_count() as f64)),
        ])
        .to_json()
    }

    fn health(&self) -> String {
        Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("health".into())),
            ("status".into(), Value::Str("ok".into())),
            ("instances".into(), Value::Num(self.instance_count() as f64)),
            (
                "max_instances".into(),
                Value::Num(self.config.max_instances as f64),
            ),
            ("requests".into(), Value::Num(self.request_count() as f64)),
        ])
        .to_json()
    }

    fn evict(&self, id: &str) -> String {
        let existed = self.shards[shard_of(id)]
            .lock()
            .expect("shard poisoned")
            .remove(id)
            .is_some();
        Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            ("op".into(), Value::Str("evict".into())),
            ("id".into(), Value::Str(id.to_string())),
            ("existed".into(), Value::Bool(existed)),
        ])
        .to_json()
    }
}

/// Runs (or coalesces) one solve under the slot lock. The memo key covers
/// the canonical query and the instance version, so a repeat of a query
/// already answered at this version returns the stored outcome — the
/// coalescing path — and a mutation (version bump) naturally misses.
fn run_solve(meta: &SlotMeta, state: &mut SlotState, query: &SolveQuery) -> Arc<SolveOutcome> {
    let key_text = protocol::query_key(query);
    let (domain, key) = match query.mode {
        Mode::Ppm => ("solve", fnv64(state.version, &key_text)),
        // The router topology never mutates, so APM answers survive
        // version bumps in their own memo.
        Mode::Apm => ("apm", fnv64(0, &key_text)),
    };
    let memo = match query.mode {
        Mode::Ppm => &state.memo,
        Mode::Apm => &state.apm_memo,
    };
    if let Some(hit) = memo.get::<SolveOutcome>(domain, key) {
        state.coalesced += 1;
        return hit;
    }
    state.solves += 1;
    let outcome = match query.mode {
        Mode::Ppm => solve_ppm(state, query),
        Mode::Apm => solve_apm(meta, query),
    };
    let memo = match query.mode {
        Mode::Ppm => &state.memo,
        Mode::Apm => &state.apm_memo,
    };
    memo.get_or_compute(domain, key, || outcome)
}

/// Bridges a wire query's method onto the unified request.
fn with_method(req: SolveRequest, method: Method) -> SolveRequest {
    match method {
        Method::Greedy => req.greedy(),
        Method::Exact => req.exact(),
    }
}

fn solve_ppm(state: &mut SlotState, query: &SolveQuery) -> SolveOutcome {
    let mut req = with_method(
        SolveRequest::ppm(query.k).with_node_budget(query.max_nodes),
        query.method,
    );
    // An anytime budget (explicit, or mapped from a deadline) turns the
    // exact solve into a degradable one; unset budgets leave the request
    // — and hence the whole solve trajectory — byte-identical to before.
    if let Some(units) = query.effective_budget() {
        req = req.with_work_budget(units);
    }
    state
        .delta
        .solve(&req)
        .expect("protocol-validated queries are solver-valid")
}

fn solve_apm(meta: &SlotMeta, query: &SolveQuery) -> SolveOutcome {
    let (graph, _) = meta.pop.router_subgraph();
    let req = with_method(SolveRequest::apm(), query.method);
    solve::solve_apm(&graph, &req).expect("APM requests carry no instance-dependent knobs")
}

/// Formats a solve outcome into response fields, applying pagination to
/// the placement list (the full outcome stays cached; only the view is
/// windowed).
fn solve_fields(
    state: &SlotState,
    query: &SolveQuery,
    outcome: &SolveOutcome,
    page: Page,
) -> Vec<(String, Value)> {
    let mut fields = vec![
        (
            "mode".into(),
            Value::Str(
                match query.mode {
                    Mode::Ppm => "ppm",
                    Mode::Apm => "apm",
                }
                .into(),
            ),
        ),
        (
            "method".into(),
            Value::Str(
                match query.method {
                    Method::Greedy => "greedy",
                    Method::Exact => "exact",
                }
                .into(),
            ),
        ),
        ("version".into(), Value::Num(state.version as f64)),
    ];
    if query.mode == Mode::Ppm {
        fields.push(("k".into(), Value::Num(query.k)));
    }
    match outcome {
        SolveOutcome::Degraded {
            partial,
            reason,
            work_spent,
            bound,
        } => {
            // The partial answer is formatted exactly like a complete one
            // (same fields, same order), then the degradation record is
            // appended — a client that ignores the extra fields sees a
            // plain answer; one that reads them gets the anytime contract
            // (`bound ≤ optimal ≤ answer` in the solve's objective sense).
            outcome_fields(&mut fields, partial, page);
            fields.push(("degraded".into(), Value::Bool(true)));
            fields.push(("degrade_reason".into(), Value::Str(reason.as_str().into())));
            fields.push(("work_spent".into(), Value::Num(*work_spent as f64)));
            // A non-finite bound (budget tripped before the root
            // relaxation finished) renders as `null`.
            fields.push(("bound".into(), Value::Num(*bound)));
        }
        other => outcome_fields(&mut fields, other, page),
    }
    fields
}

/// The non-degraded outcome arms of [`solve_fields`] (a `Degraded`
/// outcome formats its partial answer through here first).
fn outcome_fields(fields: &mut Vec<(String, Value)>, outcome: &SolveOutcome, page: Page) {
    let paged = |items: &[usize]| -> (Value, Value, Value, Value) {
        let pages = items.len().div_ceil(page.page_size).max(1);
        let start = page.page.saturating_mul(page.page_size).min(items.len());
        let end = (start + page.page_size).min(items.len());
        (
            Value::Num(items.len() as f64),
            Value::Num(page.page as f64),
            Value::Num(pages as f64),
            Value::Arr(
                items[start..end]
                    .iter()
                    .map(|&e| Value::Num(e as f64))
                    .collect(),
            ),
        )
    };
    // A PPM-shaped arm shared by target solves and (internal) budget
    // solves: identical field set, identical order.
    let ppm_shaped =
        |fields: &mut Vec<(String, Value)>, edges: &[usize], coverage: f64, total: f64, proven| {
            let (count, pg, pages, placement) = paged(edges);
            fields.push(("feasible".into(), Value::Bool(true)));
            fields.push(("devices".into(), count));
            fields.push(("page".into(), pg));
            fields.push(("pages".into(), pages));
            fields.push(("placement".into(), placement));
            fields.push(("coverage".into(), Value::Num(coverage)));
            fields.push(("total_volume".into(), Value::Num(total)));
            fields.push(("proven_optimal".into(), Value::Bool(proven)));
        };
    match outcome {
        SolveOutcome::Unreachable => {
            fields.push(("feasible".into(), Value::Bool(false)));
        }
        SolveOutcome::Ppm(sol) => {
            ppm_shaped(
                fields,
                &sol.edges,
                sol.coverage,
                sol.total_volume,
                sol.proven_optimal,
            );
        }
        SolveOutcome::Budget(sol) => {
            ppm_shaped(
                fields,
                &sol.edges,
                sol.coverage,
                sol.total_volume,
                sol.proven_optimal,
            );
        }
        SolveOutcome::Apm(sol) => {
            let (count, pg, pages, placement) = paged(&sol.beacons);
            fields.push(("feasible".into(), Value::Bool(true)));
            fields.push(("beacons".into(), count));
            fields.push(("page".into(), pg));
            fields.push(("pages".into(), pages));
            fields.push(("placement".into(), placement));
            fields.push(("probes".into(), Value::Num(sol.probes as f64)));
            fields.push(("covered_links".into(), Value::Num(sol.covered_links as f64)));
            fields.push(("router_links".into(), Value::Num(sol.router_links as f64)));
            fields.push(("proven_optimal".into(), Value::Bool(sol.proven_optimal)));
        }
        // A partial answer is documented never to be `Degraded` itself;
        // recursing keeps this total without panicking on the invariant.
        SolveOutcome::Degraded { partial, .. } => outcome_fields(fields, partial, page),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> Service {
        Service::new(ServiceConfig::default())
    }

    fn line(s: &Service, req: &str) -> Value {
        let reply = s.handle_line(req);
        crate::json::parse(&reply.text).expect("responses are valid JSON")
    }

    #[test]
    fn load_solve_and_coalesce() {
        let s = service();
        let r = line(&s, r#"{"op":"load_spec","id":"a","spec":"small","seed":1}"#);
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("created").unwrap().as_bool(), Some(true));

        let a = s.handle_line(r#"{"op":"solve","id":"a","k":0.8}"#).text;
        let b = s.handle_line(r#"{"op":"solve","id":"a","k":0.8}"#).text;
        assert_eq!(a, b, "repeat query must coalesce onto the same bytes");
        let ins = line(&s, r#"{"op":"inspect","id":"a"}"#);
        assert_eq!(ins.get("solves").unwrap().as_f64(), Some(1.0));
        assert_eq!(ins.get("coalesced").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn whatif_bumps_version_and_resolves() {
        let s = service();
        line(&s, r#"{"op":"load_spec","id":"a","spec":"small","seed":1}"#);
        let r = line(
            &s,
            r#"{"op":"whatif","id":"a","action":"fail_link","link":0,"resolve":{"k":0.7}}"#,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("version").unwrap().as_f64(), Some(1.0));
        let resolve = r.get("resolve").unwrap();
        assert_eq!(resolve.get("version").unwrap().as_f64(), Some(1.0));
        // The failed link never hosts a device.
        if resolve.get("feasible").unwrap().as_bool() == Some(true) {
            let placement = resolve.get("placement").unwrap().as_arr().unwrap();
            assert!(placement.iter().all(|v| v.as_f64() != Some(0.0)));
        }
    }

    #[test]
    fn typed_errors_leave_state_untouched() {
        let s = service();
        line(&s, r#"{"op":"load_spec","id":"a","spec":"small","seed":1}"#);
        let before = s.handle_line(r#"{"op":"inspect","id":"a"}"#).text;
        for (req, code) in [
            (r#"{"op":"solve","id":"nope","k":0.5}"#, "no_such_instance"),
            (
                r#"{"op":"whatif","id":"a","action":"fail_link","link":9999}"#,
                "bad_index",
            ),
            (
                r#"{"op":"whatif","id":"a","action":"remove_flow","traffic":9999}"#,
                "bad_index",
            ),
            (
                r#"{"op":"load_spec","id":"b","spec":"nonsense family"}"#,
                "bad_spec",
            ),
            (r#"{"op":"load","id":"c","doc":"garbage"}"#, "bad_document"),
        ] {
            let r = line(&s, req);
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(false), "{req}");
            assert_eq!(
                r.get("error").unwrap().get("code").unwrap().as_str(),
                Some(code),
                "{req}"
            );
        }
        let after = s.handle_line(r#"{"op":"inspect","id":"a"}"#).text;
        assert_eq!(before, after, "failed requests must not mutate the slot");
    }

    #[test]
    fn greedy_constrained_respects_failures_and_installed() {
        let s = service();
        line(&s, r#"{"op":"load_spec","id":"a","spec":"small","seed":3}"#);
        line(
            &s,
            r#"{"op":"whatif","id":"a","action":"fail_link","link":2}"#,
        );
        line(
            &s,
            r#"{"op":"whatif","id":"a","action":"set_installed","installed":[1]}"#,
        );
        let r = line(&s, r#"{"op":"solve","id":"a","method":"greedy","k":0.6}"#);
        if r.get("feasible").unwrap().as_bool() == Some(true) {
            let placement = r.get("placement").unwrap().as_arr().unwrap();
            assert!(
                placement.iter().all(|v| v.as_f64() != Some(2.0)),
                "greedy must not place on the failed link"
            );
            assert!(
                placement.iter().any(|v| v.as_f64() == Some(1.0)),
                "greedy must keep the installed device"
            );
        }
    }

    #[test]
    fn pagination_windows_the_placement() {
        let s = service();
        line(
            &s,
            r#"{"op":"load_spec","id":"a","spec":"paper_10","seed":1}"#,
        );
        let full = line(&s, r#"{"op":"solve","id":"a","k":1.0}"#);
        let n = full.get("devices").unwrap().as_u64().unwrap() as usize;
        assert!(n >= 2, "paper_10 at k=1 needs several devices, got {n}");
        let mut seen = Vec::new();
        let mut page = 0;
        loop {
            let r = line(
                &s,
                &format!(r#"{{"op":"solve","id":"a","k":1.0,"page":{page},"page_size":1}}"#),
            );
            assert_eq!(r.get("pages").unwrap().as_u64(), Some(n as u64));
            let items = r.get("placement").unwrap().as_arr().unwrap().to_vec();
            if page >= n {
                assert!(items.is_empty());
                break;
            }
            assert_eq!(items.len(), 1);
            seen.push(items[0].as_u64().unwrap() as usize);
            page += 1;
        }
        let all: Vec<usize> = full
            .get("placement")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap() as usize)
            .collect();
        assert_eq!(seen, all, "page walk must reconstruct the full placement");
    }

    #[test]
    fn score_ensemble_is_seeded_and_leaves_the_chain_intact() {
        let s = service();
        line(
            &s,
            r#"{"op":"load_spec","id":"a","spec":"paper_10","seed":1}"#,
        );
        let before = s.handle_line(r#"{"op":"inspect","id":"a"}"#).text;
        let req = r#"{"op":"score_ensemble","id":"a","failure":"srlg groups=4 group_rate=0.3 link_rate=0.05","dynamic":"dynamic","scenarios":20,"seed":7,"placement":[0,1,2]}"#;
        let a = s.handle_line(req).text;
        let b = s.handle_line(req).text;
        assert_eq!(a, b, "same spec and seed must reproduce the ensemble");
        let r = crate::json::parse(&a).unwrap();
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("scenarios").unwrap().as_f64(), Some(20.0));
        assert_eq!(r.get("devices").unwrap().as_f64(), Some(3.0));
        assert_eq!(r.get("rows").unwrap().as_arr().unwrap().len(), 20);
        let expected = r.get("expected_coverage").unwrap().as_f64().unwrap();
        let worst = r.get("worst_case").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&expected) && worst <= expected + 1e-12);
        // The campaign mutates the chain scenario by scenario but must
        // hand it back untouched: same version, same inspect bytes.
        let after = s.handle_line(r#"{"op":"inspect","id":"a"}"#).text;
        assert_eq!(before, after, "a campaign must not leak chain state");
        // A different seed yields a different ensemble (same shape).
        let c = s
            .handle_line(
                r#"{"op":"score_ensemble","id":"a","failure":"srlg groups=4 group_rate=0.3 link_rate=0.05","dynamic":"dynamic","scenarios":20,"seed":8,"placement":[0,1,2]}"#,
            )
            .text;
        assert_ne!(a, c);
    }

    #[test]
    fn score_ensemble_pages_rows_and_rejects_bad_specs() {
        let s = service();
        line(&s, r#"{"op":"load_spec","id":"a","spec":"small","seed":1}"#);
        // Default placement: the installed set (empty here) — worst case
        // covers nothing unless total volume is zero under failures.
        let r = line(
            &s,
            r#"{"op":"score_ensemble","id":"a","failure":"srlg","scenarios":5,"page_size":2}"#,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("devices").unwrap().as_f64(), Some(0.0));
        assert_eq!(r.get("pages").unwrap().as_f64(), Some(3.0));
        assert_eq!(r.get("rows").unwrap().as_arr().unwrap().len(), 2);
        for (req, code) in [
            (
                r#"{"op":"score_ensemble","id":"nope","failure":"srlg","scenarios":1}"#,
                "no_such_instance",
            ),
            (
                r#"{"op":"score_ensemble","id":"a","failure":"srlg groups=0","scenarios":1}"#,
                "bad_spec",
            ),
            (
                r#"{"op":"score_ensemble","id":"a","failure":"srlg","dynamic":"dynamic jitter=7","scenarios":1}"#,
                "bad_spec",
            ),
            (
                r#"{"op":"score_ensemble","id":"a","failure":"srlg","scenarios":1,"placement":[9999]}"#,
                "bad_index",
            ),
        ] {
            let r = line(&s, req);
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(false), "{req}");
            assert_eq!(
                r.get("error").unwrap().get("code").unwrap().as_str(),
                Some(code),
                "{req}"
            );
        }
    }

    #[test]
    fn budgeted_solve_degrades_and_coalesces_deterministically() {
        let s = service();
        line(
            &s,
            r#"{"op":"load_spec","id":"a","spec":"paper_10","seed":1}"#,
        );
        // A one-unit budget trips at the first work check: either a
        // partial exact answer or the greedy fallback answers, and the
        // degradation record is on the wire.
        let req = r#"{"op":"solve","id":"a","method":"exact","k":0.9,"budget":1}"#;
        let a = s.handle_line(req).text;
        let b = s.handle_line(req).text;
        assert_eq!(a, b, "budgeted repeats must coalesce onto the same bytes");
        let r = crate::json::parse(&a).unwrap();
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("degraded").unwrap().as_bool(), Some(true));
        let reason = r.get("degrade_reason").unwrap().as_str().unwrap();
        assert!(
            reason == "partial_exact" || reason == "greedy_fallback",
            "{reason}"
        );
        assert!(r.get("work_spent").unwrap().as_u64().unwrap() >= 1);
        // A deadline-shaped request degrades through the same machinery.
        let r = line(
            &s,
            r#"{"op":"solve","id":"a","method":"exact","k":0.9,"deadline_ms":1}"#,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        // An unbudgeted solve of the same query carries no degradation
        // fields at all — the legacy response shape is untouched.
        let r = line(&s, r#"{"op":"solve","id":"a","method":"exact","k":0.9}"#);
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert!(r.get("degraded").is_none());
        assert!(r.get("work_spent").is_none());
    }

    #[test]
    fn health_reports_liveness_without_touching_instances() {
        let s = service();
        let r = line(&s, r#"{"op":"health"}"#);
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(r.get("instances").unwrap().as_f64(), Some(0.0));
        line(&s, r#"{"op":"load_spec","id":"a","spec":"small","seed":1}"#);
        let r = line(&s, r#"{"op":"health"}"#);
        assert_eq!(r.get("instances").unwrap().as_f64(), Some(1.0));
        assert_eq!(r.get("max_instances").unwrap().as_f64(), Some(256.0));
    }

    #[test]
    fn evict_and_cache_cap() {
        let s = Service::new(ServiceConfig { max_instances: 1 });
        line(&s, r#"{"op":"load_spec","id":"a","spec":"small","seed":1}"#);
        let r = line(&s, r#"{"op":"load_spec","id":"b","spec":"small","seed":1}"#);
        assert_eq!(
            r.get("error").unwrap().get("code").unwrap().as_str(),
            Some("cache_full")
        );
        let r = line(&s, r#"{"op":"evict","id":"a"}"#);
        assert_eq!(r.get("existed").unwrap().as_bool(), Some(true));
        let r = line(&s, r#"{"op":"load_spec","id":"b","spec":"small","seed":1}"#);
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
    }
}
