//! A minimal JSON value type with a hand-rolled parser and writer.
//!
//! The workspace has no network or serialization dependencies (everything
//! external is an offline shim), and the wire protocol only needs flat
//! objects with short arrays — so this module implements exactly the JSON
//! subset the protocol uses, deterministically:
//!
//! * objects keep **insertion order** (backed by a `Vec`, not a map), so a
//!   response built field by field serializes byte-identically on every
//!   run and platform;
//! * numbers serialize through Rust's shortest-roundtrip `{}` formatting,
//!   which is deterministic for equal bit patterns — the byte-identity
//!   contract of the differential tests rests on this;
//! * non-finite numbers never serialize (the protocol validates inputs);
//!   as a guard they render as `null` rather than producing invalid JSON.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order (duplicate keys: last one wins on
    /// lookup, all are serialized — the parser rejects none, like most
    /// JSON decoders).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (`None` for non-objects/missing keys).
    /// On duplicate keys the *last* occurrence wins.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer: rejects negatives,
    /// fractions, and anything above 2^53 (not exactly representable).
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if x.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&x) {
            Some(x as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON (no whitespace), deterministically.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Value::Num(_) => out.push_str("null"),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document. Trailing non-whitespace is an error (a
/// request line must be exactly one value).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                b as char,
                self.pos.min(self.bytes.len())
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        let x: f64 = text
            .parse()
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
        if !x.is_finite() {
            return Err(format!("non-finite number {text:?} at byte {start}"));
        }
        Ok(Value::Num(x))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes, then re-validate as UTF-8.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is a &str"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired —
                            // the protocol never needs astral characters.
                            s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => {
                            return Err(format!("invalid escape \\{}", other as char));
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!(
                        "raw control character in string at byte {}",
                        self.pos
                    ));
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_protocol_shaped_object() {
        let text = r#"{"op":"solve","id":"a","k":0.8,"edges":[1,2,3],"routed":false,"note":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("solve"));
        assert_eq!(v.get("k").unwrap().as_f64(), Some(0.8));
        assert_eq!(v.get("edges").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("routed").unwrap().as_bool(), Some(false));
        assert_eq!(v.to_json(), text);
    }

    #[test]
    fn parses_escapes_and_nested_structures() {
        let v = parse(r#"{"s":"a\"b\\c\ndA","a":[{"x":1},[],{}],"n":-2.5e2}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-250.0));
        assert_eq!(
            v.to_json(),
            r#"{"s":"a\"b\\c\ndA","a":[{"x":1},[],{}],"n":-250}"#
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nul",
            "1e999",
            "{\"a\":--1}",
            "\"bad \\q escape\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn duplicate_keys_last_wins_on_lookup() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
