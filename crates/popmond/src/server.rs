//! The TCP transport: a hand-rolled threaded line server around
//! [`Service`].
//!
//! One thread per connection reads newline-delimited requests and writes
//! one response line each; a counted semaphore caps how many requests are
//! *processed* concurrently (`threads` permits — the knob the concurrency
//! determinism tests sweep), independent of how many connections are
//! open. Reads use short timeouts so every connection thread observes the
//! stop flag and the whole server joins cleanly after `shutdown`.
//!
//! The accept loop *blocks* in `accept()` — no sleep-polling — and is
//! woken for shutdown by a loopback self-connect, so an idle server burns
//! no CPU. Slot waits are real [`Condvar`] waits with a bounded queue:
//! when every permit is busy and [`ServerConfig::queue`] requests are
//! already waiting, further requests are *shed* with a typed `overloaded`
//! error carrying a `retry_after_ms` back-off hint instead of queueing
//! without bound (`health` requests bypass the slots entirely so probes
//! still answer under overload).
//!
//! Oversized lines (> [`protocol::MAX_LINE`] bytes before a newline) are
//! answered immediately with a typed `oversized_line` error, the rest of
//! the line is drained, and the connection stays usable — a client bug
//! never wedges the transport.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::protocol;
use crate::state::Service;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent request-processing permits (not a connection cap).
    pub threads: usize,
    /// Overload cap: how many requests may *wait* for a permit before
    /// further requests are shed with a typed `overloaded` error.
    pub queue: usize,
}

impl ServerConfig {
    /// Reads `POPMON_THREADS` (like the scenario engine), defaulting to
    /// 4, and `POPMON_QUEUE` for the shed threshold, defaulting to
    /// 16 waiters per permit — deep enough that well-behaved closed-loop
    /// clients never see a shed.
    pub fn from_env() -> Self {
        let threads: usize = std::env::var("POPMON_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(4);
        let queue = std::env::var("POPMON_QUEUE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(threads.saturating_mul(16));
        ServerConfig { threads, queue }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            queue: 64,
        }
    }
}

/// A counted semaphore with a bounded waiting queue (the workspace has
/// no external concurrency deps). Waiters block on a real [`Condvar`] —
/// never a sleep-poll — and a caller that would push the waiting count
/// past the cap is refused immediately instead of queueing.
struct Semaphore {
    state: Mutex<SemState>,
    cv: Condvar,
}

struct SemState {
    permits: usize,
    waiting: usize,
}

/// The outcome of a bounded slot acquisition.
enum Acquired {
    /// A permit is held; the caller must [`Semaphore::release`] it.
    Permit,
    /// The waiting queue was full; nothing is held.
    Shed,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            state: Mutex::new(SemState {
                permits,
                waiting: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Takes a permit, blocking on the condvar while all are busy —
    /// unless `queue_cap` requests are already waiting, in which case the
    /// caller is shed without blocking.
    fn acquire_or_shed(&self, queue_cap: usize) -> Acquired {
        let mut s = self.state.lock().expect("semaphore poisoned");
        if s.permits == 0 {
            if s.waiting >= queue_cap {
                return Acquired::Shed;
            }
            s.waiting += 1;
            while s.permits == 0 {
                s = self.cv.wait(s).expect("semaphore poisoned");
            }
            s.waiting -= 1;
        }
        s.permits -= 1;
        Acquired::Permit
    }

    fn release(&self) {
        self.state.lock().expect("semaphore poisoned").permits += 1;
        self.cv.notify_one();
    }
}

/// A running server; dropping (or calling [`ServerHandle::shutdown`])
/// stops it and joins every thread.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    service: Arc<Service>,
}

impl ServerHandle {
    /// The bound address (use for ephemeral-port servers).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (for in-process inspection in tests/benches).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Signals stop and joins the accept loop (which joins connections).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until the server stops on its own — i.e. a client sends
    /// `{"op":"shutdown"}` — then joins every thread.
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        wake_accept(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Wakes the (blocking) accept loop with a throwaway loopback connection
/// so it observes the stop flag — the replacement for sleep-polling a
/// nonblocking listener.
fn wake_accept(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// `service` until a `shutdown` request or [`ServerHandle::shutdown`].
pub fn spawn(
    addr: &str,
    service: Arc<Service>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let semaphore = Arc::new(Semaphore::new(config.threads.max(1)));
    let queue_cap = config.queue;

    let accept_stop = stop.clone();
    let accept_service = service.clone();
    let accept_thread = std::thread::spawn(move || {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        // Blocking accept: an idle server parks in the kernel until a
        // connection (or the shutdown self-connect) arrives.
        while !accept_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    if accept_stop.load(Ordering::SeqCst) {
                        break; // the wake-up connection itself
                    }
                    let service = accept_service.clone();
                    let stop = accept_stop.clone();
                    let semaphore = semaphore.clone();
                    connections.push(std::thread::spawn(move || {
                        serve_connection(stream, &service, &stop, &semaphore, queue_cap, bound);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
            connections.retain(|c| !c.is_finished());
        }
        for c in connections {
            let _ = c.join();
        }
    });

    Ok(ServerHandle {
        addr: bound,
        stop,
        accept_thread: Some(accept_thread),
        service,
    })
}

fn serve_connection(
    mut stream: TcpStream,
    service: &Service,
    stop: &AtomicBool,
    semaphore: &Semaphore,
    queue_cap: usize,
    local_addr: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let _ = stream.set_nodelay(true);
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    // When a line exceeds MAX_LINE we answer once, then drain to the
    // next newline without buffering.
    let mut draining = false;
    loop {
        // Serve every complete line already buffered.
        while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=nl).collect();
            if draining {
                draining = false;
                continue;
            }
            let text = String::from_utf8_lossy(&line[..nl]);
            let trimmed = text.trim();
            if trimmed.is_empty() {
                continue;
            }
            let reply = match semaphore.acquire_or_shed(queue_cap) {
                Acquired::Permit => {
                    let reply = service.handle_line(trimmed);
                    semaphore.release();
                    reply
                }
                // Shed path: nothing was processed and no state touched.
                // Health probes are exempt — they are O(shards) cheap and
                // must keep answering while the solver slots are saturated.
                Acquired::Shed => {
                    if matches!(
                        crate::protocol::parse_request(trimmed),
                        Ok(crate::protocol::Request::Health)
                    ) {
                        service.handle_line(trimmed)
                    } else {
                        crate::state::Reply {
                            text: crate::protocol::Error::overloaded(protocol::RETRY_AFTER_MS)
                                .to_json(),
                            shutdown: false,
                        }
                    }
                }
            };
            let mut out = reply.text.into_bytes();
            out.push(b'\n');
            if stream.write_all(&out).is_err() {
                return;
            }
            if reply.shutdown {
                stop.store(true, Ordering::SeqCst);
                // The accept loop is parked in accept(); wake it so the
                // whole server joins promptly.
                wake_accept(local_addr);
                return;
            }
        }
        if !draining && pending.len() > protocol::MAX_LINE {
            let err = crate::protocol::Error::new(
                "oversized_line",
                format!("request exceeds the {} byte line limit", protocol::MAX_LINE),
            );
            let mut out = err.to_json().into_bytes();
            out.push(b'\n');
            if stream.write_all(&out).is_err() {
                return;
            }
            pending.clear();
            draining = true;
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => {
                if draining {
                    // Keep only what follows the terminating newline.
                    if let Some(nl) = chunk[..n].iter().position(|&b| b == b'\n') {
                        pending.extend_from_slice(&chunk[nl + 1..n]);
                        draining = false;
                    }
                } else {
                    pending.extend_from_slice(&chunk[..n]);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServiceConfig;
    use std::io::{BufRead, BufReader};

    fn start(threads: usize) -> (ServerHandle, SocketAddr) {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let config = ServerConfig {
            threads,
            ..ServerConfig::default()
        };
        let handle = spawn("127.0.0.1:0", service, config).expect("bind ephemeral port");
        let addr = handle.addr();
        (handle, addr)
    }

    fn connect(addr: SocketAddr) -> TcpStream {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
    }

    fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn serves_and_shuts_down() {
        let (handle, addr) = start(2);
        let mut stream = connect(addr);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let r = roundtrip(
            &mut stream,
            &mut reader,
            r#"{"op":"load_spec","id":"s","spec":"small","seed":1}"#,
        );
        assert!(r.contains("\"ok\":true"), "{r}");
        let r = roundtrip(&mut stream, &mut reader, r#"{"op":"stats"}"#);
        assert!(r.contains("\"instances\":1"), "{r}");
        let r = roundtrip(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
        assert!(r.contains("\"op\":\"shutdown\""), "{r}");
        handle.shutdown();
    }

    #[test]
    fn semaphore_wakes_waiters_under_contention_and_sheds_past_the_cap() {
        // One permit, held by the test: waiters must park on the condvar
        // (no spinning to observe) and wake exactly when released.
        let sem = Arc::new(Semaphore::new(1));
        assert!(matches!(sem.acquire_or_shed(4), Acquired::Permit));
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let sem = sem.clone();
                std::thread::spawn(move || match sem.acquire_or_shed(4) {
                    Acquired::Permit => {
                        sem.release();
                        true
                    }
                    Acquired::Shed => false,
                })
            })
            .collect();
        // Give the waiters time to enqueue, then check the shed path: a
        // zero-cap caller must be refused immediately, not blocked.
        while sem.state.lock().unwrap().waiting < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(matches!(sem.acquire_or_shed(0), Acquired::Shed));
        assert!(matches!(sem.acquire_or_shed(3), Acquired::Shed));
        // Release the held permit: every queued waiter must drain.
        sem.release();
        for w in waiters {
            assert!(w.join().unwrap(), "queued waiter must get a permit");
        }
        let s = sem.state.lock().unwrap();
        assert_eq!(s.permits, 1);
        assert_eq!(s.waiting, 0);
    }

    #[test]
    fn single_permit_serves_a_connection_burst() {
        // threads=1: every request funnels through one permit; a burst of
        // parallel connections exercises condvar wake-up under contention
        // end to end (a lost wakeup would hang this test).
        let (handle, addr) = start(1);
        let clients: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut stream = connect(addr);
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    for _ in 0..5 {
                        let r = roundtrip(&mut stream, &mut reader, r#"{"op":"stats"}"#);
                        assert!(r.contains("\"ok\":true"), "client {i}: {r}");
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client thread panicked");
        }
        handle.shutdown();
    }

    #[test]
    fn zero_queue_sheds_with_a_typed_overloaded_error() {
        // queue=0 means "never wait": with the single permit pinned by a
        // slow in-flight request, a concurrent request must be shed with
        // the typed error (and a health probe must still answer).
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let config = ServerConfig {
            threads: 1,
            queue: 0,
        };
        let handle = spawn("127.0.0.1:0", service, config).expect("bind ephemeral port");
        let addr = handle.addr();
        let mut a = connect(addr);
        let mut ra = BufReader::new(a.try_clone().unwrap());
        let r = roundtrip(
            &mut a,
            &mut ra,
            r#"{"op":"load_spec","id":"big","spec":"small","seed":1}"#,
        );
        assert!(r.contains("\"ok\":true"), "{r}");
        // Fire a long-but-bounded resilience campaign without reading its
        // response, so the permit stays busy while the second connection
        // races it (a campaign's cost is linear in scenarios — no search
        // blow-up, unlike a big exact solve).
        a.write_all(
            b"{\"op\":\"score_ensemble\",\"id\":\"big\",\"failure\":\"srlg groups=6 group_rate=0.4 link_rate=0.1\",\"dynamic\":\"dynamic\",\"scenarios\":4096,\"seed\":1}\n",
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let mut b = connect(addr);
        let mut rb = BufReader::new(b.try_clone().unwrap());
        let r = roundtrip(&mut b, &mut rb, r#"{"op":"stats"}"#);
        // Either the solve already finished (fast machine) or the request
        // was shed: both are legal, but a shed must be the typed error.
        if r.contains("\"ok\":false") {
            assert!(r.contains("\"code\":\"overloaded\""), "{r}");
            assert!(r.contains("\"retry_after_ms\":"), "{r}");
            // Health bypasses the slots even while saturated.
            let h = roundtrip(&mut b, &mut rb, r#"{"op":"health"}"#);
            assert!(h.contains("\"status\":\"ok\""), "{h}");
        }
        let mut line = String::new();
        ra.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        handle.shutdown();
    }

    #[test]
    fn empty_lines_are_skipped_and_connection_survives_errors() {
        let (handle, addr) = start(1);
        let mut stream = connect(addr);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        stream.write_all(b"\n  \n").unwrap();
        let r = roundtrip(&mut stream, &mut reader, "not json at all");
        assert!(r.contains("\"code\":\"parse\""), "{r}");
        let r = roundtrip(&mut stream, &mut reader, r#"{"op":"list"}"#);
        assert!(r.contains("\"instances\":[]"), "{r}");
        handle.shutdown();
    }
}
