//! The TCP transport: a hand-rolled threaded line server around
//! [`Service`].
//!
//! One thread per connection reads newline-delimited requests and writes
//! one response line each; a counted semaphore caps how many requests are
//! *processed* concurrently (`threads` permits — the knob the concurrency
//! determinism tests sweep), independent of how many connections are
//! open. Reads use short timeouts so every connection thread observes the
//! stop flag and the whole server joins cleanly after `shutdown`.
//!
//! Oversized lines (> [`protocol::MAX_LINE`] bytes before a newline) are
//! answered immediately with a typed `oversized_line` error, the rest of
//! the line is drained, and the connection stays usable — a client bug
//! never wedges the transport.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::protocol;
use crate::state::Service;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent request-processing permits (not a connection cap).
    pub threads: usize,
}

impl ServerConfig {
    /// Reads `POPMON_THREADS` (like the scenario engine), defaulting to 4.
    pub fn from_env() -> Self {
        let threads = std::env::var("POPMON_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(4);
        ServerConfig { threads }
    }
}

/// A counted semaphore (the workspace has no external concurrency deps).
struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut p = self.permits.lock().expect("semaphore poisoned");
        while *p == 0 {
            p = self.cv.wait(p).expect("semaphore poisoned");
        }
        *p -= 1;
    }

    fn release(&self) {
        *self.permits.lock().expect("semaphore poisoned") += 1;
        self.cv.notify_one();
    }
}

/// A running server; dropping (or calling [`ServerHandle::shutdown`])
/// stops it and joins every thread.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    service: Arc<Service>,
}

impl ServerHandle {
    /// The bound address (use for ephemeral-port servers).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (for in-process inspection in tests/benches).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Signals stop and joins the accept loop (which joins connections).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until the server stops on its own — i.e. a client sends
    /// `{"op":"shutdown"}` — then joins every thread.
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// `service` until a `shutdown` request or [`ServerHandle::shutdown`].
pub fn spawn(
    addr: &str,
    service: Arc<Service>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let semaphore = Arc::new(Semaphore::new(config.threads.max(1)));

    let accept_stop = stop.clone();
    let accept_service = service.clone();
    let accept_thread = std::thread::spawn(move || {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        while !accept_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let service = accept_service.clone();
                    let stop = accept_stop.clone();
                    let semaphore = semaphore.clone();
                    connections.push(std::thread::spawn(move || {
                        serve_connection(stream, &service, &stop, &semaphore);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
            connections.retain(|c| !c.is_finished());
        }
        for c in connections {
            let _ = c.join();
        }
    });

    Ok(ServerHandle {
        addr: bound,
        stop,
        accept_thread: Some(accept_thread),
        service,
    })
}

fn serve_connection(
    mut stream: TcpStream,
    service: &Service,
    stop: &AtomicBool,
    semaphore: &Semaphore,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let _ = stream.set_nodelay(true);
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    // When a line exceeds MAX_LINE we answer once, then drain to the
    // next newline without buffering.
    let mut draining = false;
    loop {
        // Serve every complete line already buffered.
        while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=nl).collect();
            if draining {
                draining = false;
                continue;
            }
            let text = String::from_utf8_lossy(&line[..nl]);
            let trimmed = text.trim();
            if trimmed.is_empty() {
                continue;
            }
            semaphore.acquire();
            let reply = service.handle_line(trimmed);
            semaphore.release();
            let mut out = reply.text.into_bytes();
            out.push(b'\n');
            if stream.write_all(&out).is_err() {
                return;
            }
            if reply.shutdown {
                stop.store(true, Ordering::SeqCst);
                return;
            }
        }
        if !draining && pending.len() > protocol::MAX_LINE {
            let err = crate::protocol::Error::new(
                "oversized_line",
                format!("request exceeds the {} byte line limit", protocol::MAX_LINE),
            );
            let mut out = err.to_json().into_bytes();
            out.push(b'\n');
            if stream.write_all(&out).is_err() {
                return;
            }
            pending.clear();
            draining = true;
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => {
                if draining {
                    // Keep only what follows the terminating newline.
                    if let Some(nl) = chunk[..n].iter().position(|&b| b == b'\n') {
                        pending.extend_from_slice(&chunk[nl + 1..n]);
                        draining = false;
                    }
                } else {
                    pending.extend_from_slice(&chunk[..n]);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServiceConfig;
    use std::io::{BufRead, BufReader};

    fn start(threads: usize) -> (ServerHandle, SocketAddr) {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let handle =
            spawn("127.0.0.1:0", service, ServerConfig { threads }).expect("bind ephemeral port");
        let addr = handle.addr();
        (handle, addr)
    }

    fn connect(addr: SocketAddr) -> TcpStream {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
    }

    fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn serves_and_shuts_down() {
        let (handle, addr) = start(2);
        let mut stream = connect(addr);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let r = roundtrip(
            &mut stream,
            &mut reader,
            r#"{"op":"load_spec","id":"s","spec":"small","seed":1}"#,
        );
        assert!(r.contains("\"ok\":true"), "{r}");
        let r = roundtrip(&mut stream, &mut reader, r#"{"op":"stats"}"#);
        assert!(r.contains("\"instances\":1"), "{r}");
        let r = roundtrip(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
        assert!(r.contains("\"op\":\"shutdown\""), "{r}");
        handle.shutdown();
    }

    #[test]
    fn empty_lines_are_skipped_and_connection_survives_errors() {
        let (handle, addr) = start(1);
        let mut stream = connect(addr);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        stream.write_all(b"\n  \n").unwrap();
        let r = roundtrip(&mut stream, &mut reader, "not json at all");
        assert!(r.contains("\"code\":\"parse\""), "{r}");
        let r = roundtrip(&mut stream, &mut reader, r#"{"op":"list"}"#);
        assert!(r.contains("\"instances\":[]"), "{r}");
        handle.shutdown();
    }
}
