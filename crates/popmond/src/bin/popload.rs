//! popload — a seeded closed-loop load generator for popmond.
//!
//! ```text
//! popload --addr HOST:PORT [--seeds N] [--concurrency N] [--requests N]
//! ```
//!
//! Spawns `--concurrency` worker threads that drain a shared budget of
//! `--requests` total requests. Each worker owns a private set of seeded
//! [`Session`]s (instance ids namespaced per worker so workers never
//! contend on the same warm chain), sends one request at a time over its
//! own connection, and checks every response line: `ok:true` or a typed
//! error object counts as served; anything else (connection drop,
//! non-JSON reply) fails the run. Exits 0 with a throughput report, or 1
//! on the first unexpected response.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use popmond::json;
use popmond::workload::{Session, SessionSpec};

fn usage() -> ! {
    eprintln!("usage: popload --addr HOST:PORT [--seeds N] [--concurrency N] [--requests N]");
    std::process::exit(2);
}

struct Config {
    addr: String,
    seeds: usize,
    concurrency: usize,
    requests: usize,
}

fn parse_args() -> Config {
    let mut addr = None;
    let mut seeds = 4usize;
    let mut concurrency = 4usize;
    let mut requests = 400usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--seeds" => match value("--seeds").parse() {
                Ok(n) if n > 0 => seeds = n,
                _ => usage(),
            },
            "--concurrency" => match value("--concurrency").parse() {
                Ok(n) if n > 0 => concurrency = n,
                _ => usage(),
            },
            "--requests" => match value("--requests").parse() {
                Ok(n) if n > 0 => requests = n,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("error: --addr is required");
        usage();
    };
    Config {
        addr,
        seeds,
        concurrency,
        requests,
    }
}

/// One worker: owns its sessions and one connection, pulls from the
/// shared request budget until it is exhausted.
fn run_worker(
    worker: usize,
    config: &Config,
    budget: &AtomicUsize,
    errors: &AtomicU64,
) -> Result<(), String> {
    let stream = TcpStream::connect(&config.addr)
        .map_err(|e| format!("worker {worker}: connect {} failed: {e}", config.addr))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("worker {worker}: clone stream failed: {e}"))?;
    let mut reader = BufReader::new(stream);

    // Private instance ids per worker: no cross-worker contention on a
    // single warm chain, so throughput scales with concurrency.
    let mut sessions: Vec<Session> = (0..config.seeds)
        .map(|i| {
            let seed = 1 + (worker * config.seeds + i) as u64;
            Session::new(SessionSpec {
                id: format!("w{worker}s{i}"),
                spec: "small".to_string(),
                instance_seed: seed,
                request_seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
                routed: false,
            })
        })
        .collect();
    let mut loaded = vec![false; sessions.len()];
    let mut turn = 0usize;

    while budget
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
        .is_ok()
    {
        let idx = turn % sessions.len();
        turn += 1;
        let line = sessions[idx].next_line();
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("worker {worker}: write failed: {e}"))?;
        let mut response = String::new();
        let n = reader
            .read_line(&mut response)
            .map_err(|e| format!("worker {worker}: read failed: {e}"))?;
        if n == 0 {
            return Err(format!("worker {worker}: server closed the connection"));
        }
        let doc = json::parse(response.trim_end())
            .map_err(|e| format!("worker {worker}: non-JSON response ({e}): {response}"))?;
        match doc.get("ok").and_then(json::Value::as_bool) {
            Some(true) => {
                if !loaded[idx] {
                    loaded[idx] = true;
                    let links = doc.get("links").and_then(json::Value::as_u64).unwrap_or(0);
                    let traffics = doc
                        .get("traffics")
                        .and_then(json::Value::as_u64)
                        .unwrap_or(0);
                    sessions[idx].observe_load(links as usize, traffics as usize);
                }
            }
            Some(false) => {
                // Typed errors are a legal protocol outcome, but this
                // generator only emits well-formed in-range requests, so
                // any error points at a server bug — count and report.
                errors.fetch_add(1, Ordering::Relaxed);
                return Err(format!(
                    "worker {worker}: server rejected a well-formed request: {line} -> {response}"
                ));
            }
            None => {
                return Err(format!(
                    "worker {worker}: response without ok field: {response}"
                ))
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let config = Arc::new(parse_args());
    let budget = Arc::new(AtomicUsize::new(config.requests));
    let errors = Arc::new(AtomicU64::new(0));
    let start = Instant::now();

    let workers: Vec<_> = (0..config.concurrency)
        .map(|w| {
            let config = config.clone();
            let budget = budget.clone();
            let errors = errors.clone();
            std::thread::spawn(move || run_worker(w, &config, &budget, &errors))
        })
        .collect();

    let mut failed = false;
    for w in workers {
        match w.join() {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => {
                eprintln!("error: {msg}");
                failed = true;
            }
            Err(_) => {
                eprintln!("error: worker panicked");
                failed = true;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let served = config.requests - budget.load(Ordering::SeqCst);
    println!(
        "popload: {served} requests, {} workers, {} sessions/worker, {elapsed:.3}s, {:.0} req/s",
        config.concurrency,
        config.seeds,
        served as f64 / elapsed.max(1e-9)
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
