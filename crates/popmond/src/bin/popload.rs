//! popload — a seeded closed-loop load generator for popmond.
//!
//! ```text
//! popload --addr HOST:PORT [--seeds N] [--concurrency N] [--requests N]
//!         [--chaos-rate P]
//! ```
//!
//! Spawns `--concurrency` worker threads that drain a shared budget of
//! `--requests` total requests. Each worker owns a private set of seeded
//! [`Session`]s (instance ids namespaced per worker so workers never
//! contend on the same warm chain), sends one request at a time over its
//! own connection, and checks every response line: `ok:true` counts as
//! served; a typed `overloaded` shed is retried with seeded
//! exponential-backoff-plus-jitter; anything else (connection drop,
//! non-JSON reply, an unexpected typed error) fails the run. Exits 0
//! with a throughput report, or 1 on the first unexpected response.
//!
//! `--chaos-rate P` additionally injects a seeded client-side fault
//! before a request with probability `P`: a torn line, a mid-write
//! disconnect (the worker reconnects), or a duplicated request — the
//! [`ChaosFault::CLIENT_MIX`] subset of the chaos suite's taxonomy. The
//! server must keep answering in type through all of them.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use popmond::json;
use popmond::workload::{ChaosFault, Rng, Session, SessionSpec};

/// Give up on a request after this many `overloaded` sheds in a row.
const MAX_RETRIES: u32 = 6;

fn usage() -> ! {
    eprintln!(
        "usage: popload --addr HOST:PORT [--seeds N] [--concurrency N] [--requests N] \
         [--chaos-rate P]"
    );
    std::process::exit(2);
}

struct Config {
    addr: String,
    seeds: usize,
    concurrency: usize,
    requests: usize,
    chaos_rate: f64,
}

fn parse_args() -> Config {
    let mut addr = None;
    let mut seeds = 4usize;
    let mut concurrency = 4usize;
    let mut requests = 400usize;
    let mut chaos_rate = 0.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--seeds" => match value("--seeds").parse() {
                Ok(n) if n > 0 => seeds = n,
                _ => usage(),
            },
            "--concurrency" => match value("--concurrency").parse() {
                Ok(n) if n > 0 => concurrency = n,
                _ => usage(),
            },
            "--requests" => match value("--requests").parse() {
                Ok(n) if n > 0 => requests = n,
                _ => usage(),
            },
            "--chaos-rate" => match value("--chaos-rate").parse::<f64>() {
                Ok(p) if (0.0..=1.0).contains(&p) => chaos_rate = p,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("error: --addr is required");
        usage();
    };
    Config {
        addr,
        seeds,
        concurrency,
        requests,
        chaos_rate,
    }
}

/// One worker's connection pair (writer + buffered reader).
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn connect(worker: usize, addr: &str) -> Result<Conn, String> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| format!("worker {worker}: connect {addr} failed: {e}"))?;
    let _ = stream.set_nodelay(true);
    let writer = stream
        .try_clone()
        .map_err(|e| format!("worker {worker}: clone stream failed: {e}"))?;
    Ok(Conn {
        writer,
        reader: BufReader::new(stream),
    })
}

/// Sends one line and reads one parsed response.
fn exchange(worker: usize, conn: &mut Conn, line: &str) -> Result<json::Value, String> {
    conn.writer
        .write_all(line.as_bytes())
        .and_then(|()| conn.writer.write_all(b"\n"))
        .map_err(|e| format!("worker {worker}: write failed: {e}"))?;
    let mut response = String::new();
    let n = conn
        .reader
        .read_line(&mut response)
        .map_err(|e| format!("worker {worker}: read failed: {e}"))?;
    if n == 0 {
        return Err(format!("worker {worker}: server closed the connection"));
    }
    json::parse(response.trim_end())
        .map_err(|e| format!("worker {worker}: non-JSON response ({e}): {response}"))
}

/// Injects one seeded client-side fault. The fault's target is always a
/// benign idempotent request (`health`) so the session streams — whose
/// generators track mutation state — stay in lock-step with the server.
fn inject_fault(
    worker: usize,
    fault: ChaosFault,
    conn: &mut Conn,
    addr: &str,
) -> Result<(), String> {
    match fault {
        ChaosFault::TornLine => {
            // A torn prefix plus newline must earn a typed parse error.
            conn.writer
                .write_all(b"{\"op\":\"heal\n")
                .map_err(|e| format!("worker {worker}: torn write failed: {e}"))?;
            let mut response = String::new();
            let n = conn
                .reader
                .read_line(&mut response)
                .map_err(|e| format!("worker {worker}: read failed: {e}"))?;
            if n == 0 {
                return Err(format!("worker {worker}: server closed on a torn line"));
            }
            let doc = json::parse(response.trim_end())
                .map_err(|e| format!("worker {worker}: non-JSON torn-line reply ({e})"))?;
            if doc.get("ok").and_then(json::Value::as_bool) != Some(false) {
                return Err(format!(
                    "worker {worker}: torn line was not rejected: {response}"
                ));
            }
            Ok(())
        }
        ChaosFault::Disconnect | ChaosFault::SlowLoris | ChaosFault::ResetMidSolve => {
            // Client mix only sends Disconnect; the arm covers the whole
            // enum so the harness's faults stay usable here too. A
            // partial write with no newline must simply be dropped.
            let _ = conn.writer.write_all(b"{\"op\":\"hea");
            *conn = connect(worker, addr)?;
            Ok(())
        }
        ChaosFault::Duplicate => {
            for _ in 0..2 {
                let doc = exchange(worker, conn, r#"{"op":"health"}"#)?;
                if doc.get("ok").and_then(json::Value::as_bool) != Some(true) {
                    return Err(format!("worker {worker}: health probe rejected"));
                }
            }
            Ok(())
        }
    }
}

/// One worker: owns its sessions and one connection, pulls from the
/// shared request budget until it is exhausted.
fn run_worker(
    worker: usize,
    config: &Config,
    budget: &AtomicUsize,
    errors: &AtomicU64,
    chaos_events: &AtomicU64,
    retries: &AtomicU64,
) -> Result<(), String> {
    let mut conn = connect(worker, &config.addr)?;
    // The fault/jitter stream is seeded per worker — a rerun of the same
    // flags injects the same faults at the same points.
    let mut rng = Rng::new(0xC0FF_EE00 + worker as u64);

    // Private instance ids per worker: no cross-worker contention on a
    // single warm chain, so throughput scales with concurrency.
    let mut sessions: Vec<Session> = (0..config.seeds)
        .map(|i| {
            let seed = 1 + (worker * config.seeds + i) as u64;
            Session::new(SessionSpec {
                id: format!("w{worker}s{i}"),
                spec: "small".to_string(),
                instance_seed: seed,
                request_seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
                routed: false,
            })
        })
        .collect();
    let mut loaded = vec![false; sessions.len()];
    let mut turn = 0usize;

    while budget
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
        .is_ok()
    {
        if config.chaos_rate > 0.0 && rng.below(1_000_000) < (config.chaos_rate * 1e6) as usize {
            let fault = ChaosFault::sample(&mut rng, &ChaosFault::CLIENT_MIX);
            inject_fault(worker, fault, &mut conn, &config.addr)?;
            chaos_events.fetch_add(1, Ordering::Relaxed);
        }
        let idx = turn % sessions.len();
        turn += 1;
        let line = sessions[idx].next_line();
        let mut attempt = 0u32;
        let doc = loop {
            let doc = exchange(worker, &mut conn, &line)?;
            match doc.get("ok").and_then(json::Value::as_bool) {
                Some(true) => break doc,
                Some(false) => {
                    let code = doc
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(json::Value::as_str)
                        .unwrap_or("");
                    if code == "overloaded" && attempt < MAX_RETRIES {
                        // Seeded exponential backoff with jitter around
                        // the server's own retry hint.
                        let hint = doc
                            .get("error")
                            .and_then(|e| e.get("retry_after_ms"))
                            .and_then(json::Value::as_u64)
                            .unwrap_or(50);
                        let backoff = hint << attempt.min(5);
                        let jitter = rng.next_u64() % (hint / 2 + 1);
                        std::thread::sleep(Duration::from_millis(backoff + jitter));
                        attempt += 1;
                        retries.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    // Any other typed error points at a server bug: this
                    // generator only emits well-formed in-range requests.
                    errors.fetch_add(1, Ordering::Relaxed);
                    return Err(format!(
                        "worker {worker}: server rejected a well-formed request: {line} -> {}",
                        doc.to_json()
                    ));
                }
                None => {
                    return Err(format!(
                        "worker {worker}: response without ok field: {}",
                        doc.to_json()
                    ))
                }
            }
        };
        if !loaded[idx] {
            loaded[idx] = true;
            let links = doc.get("links").and_then(json::Value::as_u64).unwrap_or(0);
            let traffics = doc
                .get("traffics")
                .and_then(json::Value::as_u64)
                .unwrap_or(0);
            sessions[idx].observe_load(links as usize, traffics as usize);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let config = Arc::new(parse_args());
    let budget = Arc::new(AtomicUsize::new(config.requests));
    let errors = Arc::new(AtomicU64::new(0));
    let chaos_events = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));
    let start = Instant::now();

    let workers: Vec<_> = (0..config.concurrency)
        .map(|w| {
            let config = config.clone();
            let budget = budget.clone();
            let errors = errors.clone();
            let chaos_events = chaos_events.clone();
            let retries = retries.clone();
            std::thread::spawn(move || {
                run_worker(w, &config, &budget, &errors, &chaos_events, &retries)
            })
        })
        .collect();

    let mut failed = false;
    for w in workers {
        match w.join() {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => {
                eprintln!("error: {msg}");
                failed = true;
            }
            Err(_) => {
                eprintln!("error: worker panicked");
                failed = true;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let served = config.requests - budget.load(Ordering::SeqCst);
    let mut report = format!(
        "popload: {served} requests, {} workers, {} sessions/worker, {elapsed:.3}s, {:.0} req/s",
        config.concurrency,
        config.seeds,
        served as f64 / elapsed.max(1e-9)
    );
    if config.chaos_rate > 0.0 {
        report.push_str(&format!(
            ", {} chaos events",
            chaos_events.load(Ordering::Relaxed)
        ));
    }
    let shed_retries = retries.load(Ordering::Relaxed);
    if shed_retries > 0 {
        report.push_str(&format!(", {shed_retries} overload retries"));
    }
    println!("{report}");
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
