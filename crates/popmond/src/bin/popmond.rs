//! The popmond daemon binary.
//!
//! ```text
//! popmond [--addr HOST:PORT] [--threads N] [--queue N] [--max-instances N]
//! ```
//!
//! Binds the address (default `127.0.0.1:7700`), prints one
//! `listening on <addr>` line to stdout, and serves until a client sends
//! `{"op":"shutdown"}`. `--threads` defaults to `POPMON_THREADS` or 4;
//! `--queue` caps how many requests may wait for a processing slot
//! before the server sheds with a typed `overloaded` error (defaults to
//! `POPMON_QUEUE` or 16 waiters per thread).

use std::process::ExitCode;
use std::sync::Arc;

use popmond::{spawn, ServerConfig, Service, ServiceConfig};

fn usage() -> ! {
    eprintln!("usage: popmond [--addr HOST:PORT] [--threads N] [--queue N] [--max-instances N]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7700".to_string();
    let mut server_config = ServerConfig::from_env();
    let mut service_config = ServiceConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--threads" => match value("--threads").parse() {
                Ok(n) if n > 0 => server_config.threads = n,
                _ => usage(),
            },
            "--queue" => match value("--queue").parse() {
                Ok(n) => server_config.queue = n,
                Err(_) => usage(),
            },
            "--max-instances" => match value("--max-instances").parse() {
                Ok(n) if n > 0 => service_config.max_instances = n,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }

    let service = Arc::new(Service::new(service_config));
    let handle = match spawn(&addr, service.clone(), server_config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: failed to bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", handle.addr());

    // Blocks until a client sends {"op":"shutdown"}; wait() joins the
    // accept loop and every connection thread.
    handle.wait();
    println!(
        "served {} requests across {} instances",
        service.request_count(),
        service.instance_count()
    );
    ExitCode::SUCCESS
}
