//! Seeded workload generation for the load generator and the
//! differential tests.
//!
//! A [`Session`] deterministically emits a stream of request lines
//! (solve / what-if mutations / inspect) for one instance id. The
//! generator tracks enough state (traffic count, disabled links) to keep
//! every generated request in-range, so a seeded session replayed against
//! two servers produces the identical transcript — the property the
//! service-vs-batch and concurrency tests assert.

use crate::protocol::MAX_MAX_NODES;

/// xorshift64* — the same tiny PRNG family the popgen generators use.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator (zero is remapped to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        Rng(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n` (n must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// One client-side fault the chaos harness and `popload --chaos-rate`
/// can inject. The taxonomy is shared so the load generator's fault mix
/// is a strict subset of the one the chaos suite proves the server
/// survives (see `DESIGN.md` § "The degradation contract").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Send a torn request prefix terminated by a newline; the server
    /// must answer with a typed `parse` error and stay usable.
    TornLine,
    /// Drop the connection after a partial write (no newline); the torn
    /// bytes must never be interpreted as a request.
    Disconnect,
    /// Send the same request twice back-to-back; both must be answered.
    Duplicate,
    /// Dribble a request a few bytes at a time (slow-loris); slow writers
    /// must not wedge other connections.
    SlowLoris,
    /// Reset the connection while a solve is in flight; the server-side
    /// write fails but the daemon must not panic or leak a slot.
    ResetMidSolve,
}

impl ChaosFault {
    /// The faults `popload --chaos-rate` injects: the ones a well-behaved
    /// closed-loop client can recover from on its own connection.
    pub const CLIENT_MIX: [ChaosFault; 3] = [
        ChaosFault::TornLine,
        ChaosFault::Disconnect,
        ChaosFault::Duplicate,
    ];

    /// The full taxonomy the chaos harness drives.
    pub const ALL: [ChaosFault; 5] = [
        ChaosFault::TornLine,
        ChaosFault::Disconnect,
        ChaosFault::Duplicate,
        ChaosFault::SlowLoris,
        ChaosFault::ResetMidSolve,
    ];

    /// Draws one fault uniformly from `mix` (seeded, hence replayable).
    pub fn sample(rng: &mut Rng, mix: &[ChaosFault]) -> ChaosFault {
        mix[rng.below(mix.len())]
    }
}

/// The shape of one generated session.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Instance id the session operates on.
    pub id: String,
    /// Generator preset loaded at session start (e.g. `"small"`).
    pub spec: String,
    /// Seed for the instance generator.
    pub instance_seed: u64,
    /// Seed for the request stream.
    pub request_seed: u64,
    /// Whether the instance tracks routes (routed link failures reroute).
    pub routed: bool,
}

/// Deterministic request-line generator for one session.
#[derive(Debug, Clone)]
pub struct Session {
    spec: SessionSpec,
    rng: Rng,
    emitted_load: bool,
    traffics: usize,
    links: usize,
    disabled: Vec<usize>,
    added: u64,
}

impl Session {
    /// Creates a session; `links`/`traffics` must match the instance the
    /// `spec` preset generates (the caller learns them from the load
    /// response, or passes conservative values — all generated indices
    /// stay below these bounds).
    pub fn new(spec: SessionSpec) -> Self {
        let rng = Rng::new(spec.request_seed);
        Session {
            spec,
            rng,
            emitted_load: false,
            traffics: 0,
            links: 0,
            disabled: Vec::new(),
            added: 0,
        }
    }

    /// The session's instance id.
    pub fn id(&self) -> &str {
        &self.spec.id
    }

    /// Records the instance dimensions from the `load` response so later
    /// requests stay in-range. Must be called once after the first line.
    pub fn observe_load(&mut self, links: usize, traffics: usize) {
        self.links = links;
        self.traffics = traffics;
    }

    /// Emits the next request line. The first line is always the
    /// `load_spec`; afterwards the mix is roughly 45% solve, 40% what-if
    /// (with an embedded re-solve half the time), 5% resilience campaigns
    /// (`score_ensemble`), 10% inspect.
    pub fn next_line(&mut self) -> String {
        if !self.emitted_load {
            self.emitted_load = true;
            return format!(
                r#"{{"op":"load_spec","id":"{}","spec":"{}","seed":{},"routed":{}}}"#,
                self.spec.id, self.spec.spec, self.spec.instance_seed, self.spec.routed
            );
        }
        let roll = self.rng.below(20);
        if roll < 9 {
            self.solve_line()
        } else if roll < 17 {
            self.whatif_line()
        } else if roll == 17 {
            self.score_line()
        } else {
            format!(r#"{{"op":"inspect","id":"{}"}}"#, self.spec.id)
        }
    }

    /// Query fields, flat — solves embed them on the request object,
    /// what-ifs wrap them in a `"resolve"` object.
    fn solve_query(&mut self) -> String {
        // Quantized k keeps cache keys repeatable across sessions.
        let k = 0.5 + 0.1 * self.rng.below(6) as f64;
        let method = if self.rng.below(4) == 0 {
            "greedy"
        } else {
            "exact"
        };
        format!(r#""mode":"ppm","method":"{method}","k":{k},"max_nodes":{MAX_MAX_NODES}"#)
    }

    fn solve_line(&mut self) -> String {
        let q = self.solve_query();
        format!(r#"{{"op":"solve","id":"{}",{q}}}"#, self.spec.id)
    }

    /// A resilience campaign with quantized, always-valid spec parameters
    /// (rates stay well inside [0, 1]); the placement is omitted so the
    /// campaign scores the instance's installed set, which is always
    /// in-range.
    fn score_line(&mut self) -> String {
        let groups = 2 + self.rng.below(6);
        let group_rate = 0.05 * self.rng.below(7) as f64;
        let link_rate = 0.02 * self.rng.below(5) as f64;
        let dynamic = if self.rng.below(2) == 0 {
            r#","dynamic":"dynamic""#
        } else {
            ""
        };
        let scenarios = 1 + self.rng.below(12);
        let seed = self.rng.below(1000);
        format!(
            r#"{{"op":"score_ensemble","id":"{}","failure":"srlg groups={groups} group_rate={group_rate} link_rate={link_rate}"{dynamic},"scenarios":{scenarios},"seed":{seed}}}"#,
            self.spec.id
        )
    }

    fn whatif_line(&mut self) -> String {
        let id = self.spec.id.clone();
        let resolve = if self.rng.below(2) == 0 {
            let q = self.solve_query();
            format!(r#","resolve":{{{q}}}"#)
        } else {
            String::new()
        };
        // Pick an action that is currently legal.
        let action = loop {
            match self.rng.below(6) {
                0 if self.links > 1 && self.disabled.len() < self.links / 2 => {
                    let e = self.rng.below(self.links);
                    if !self.disabled.contains(&e) {
                        self.disabled.push(e);
                        break format!(r#""action":"fail_link","link":{e}"#);
                    }
                }
                1 if !self.disabled.is_empty() => {
                    let i = self.rng.below(self.disabled.len());
                    let e = self.disabled.swap_remove(i);
                    break format!(r#""action":"restore_link","link":{e}"#);
                }
                2 if self.traffics > 0 => {
                    let t = self.rng.below(self.traffics);
                    let factor = 0.5 + 0.125 * self.rng.below(13) as f64;
                    break format!(r#""action":"scale_demand","traffic":{t},"factor":{factor}"#);
                }
                3 if self.links > 0 => {
                    self.added += 1;
                    let volume = 1.0 + self.rng.below(40) as f64;
                    let mut support: Vec<usize> = (0..1 + self.rng.below(3))
                        .map(|_| self.rng.below(self.links))
                        .collect();
                    support.sort_unstable();
                    support.dedup();
                    let support = support
                        .iter()
                        .map(|e| e.to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    self.traffics += 1;
                    break format!(
                        r#""action":"add_flow","volume":{volume},"support":[{support}]"#
                    );
                }
                4 if self.traffics > 1 => {
                    // Keep at least one traffic so solves stay meaningful.
                    let t = self.rng.below(self.traffics);
                    self.traffics -= 1;
                    break format!(r#""action":"remove_flow","traffic":{t}"#);
                }
                5 if self.links > 0 => {
                    let mut installed: Vec<usize> = (0..self.rng.below(4))
                        .map(|_| self.rng.below(self.links))
                        .collect();
                    installed.sort_unstable();
                    installed.dedup();
                    let installed = installed
                        .iter()
                        .map(|e| e.to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    break format!(r#""action":"set_installed","installed":[{installed}]"#);
                }
                _ => {}
            }
        };
        format!(r#"{{"op":"whatif","id":"{id}",{action}{resolve}}}"#)
    }
}

/// Builds the standard seeded session set used by tests and `popload`:
/// session `i` gets id `"s<i>"`, preset `"small"`, instance seed
/// `base_seed + i`, request seed derived by splitmix-style mixing.
pub fn standard_sessions(base_seed: u64, count: usize, routed: bool) -> Vec<Session> {
    (0..count)
        .map(|i| {
            let mut mix = base_seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            mix ^= mix >> 29;
            Session::new(SessionSpec {
                id: format!("s{i}"),
                spec: "small".to_string(),
                instance_seed: base_seed + i as u64,
                request_seed: mix | 1,
                routed,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_faults_sample_deterministically_from_the_mix() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..64 {
            let fa = ChaosFault::sample(&mut a, &ChaosFault::ALL);
            assert_eq!(fa, ChaosFault::sample(&mut b, &ChaosFault::ALL));
            assert!(ChaosFault::ALL.contains(&fa));
        }
        let mut c = Rng::new(7);
        for _ in 0..64 {
            let f = ChaosFault::sample(&mut c, &ChaosFault::CLIENT_MIX);
            assert!(ChaosFault::CLIENT_MIX.contains(&f));
        }
    }

    #[test]
    fn sessions_are_deterministic() {
        let mut a = standard_sessions(7, 2, false);
        let mut b = standard_sessions(7, 2, false);
        for (sa, sb) in a.iter_mut().zip(b.iter_mut()) {
            assert_eq!(sa.next_line(), sb.next_line());
            sa.observe_load(12, 9);
            sb.observe_load(12, 9);
            for _ in 0..50 {
                assert_eq!(sa.next_line(), sb.next_line());
            }
        }
    }

    #[test]
    fn generated_lines_parse_as_requests() {
        let mut s = standard_sessions(3, 1, true).remove(0);
        let first = s.next_line();
        assert!(crate::protocol::parse_request(&first).is_ok(), "{first}");
        s.observe_load(10, 8);
        for _ in 0..200 {
            let line = s.next_line();
            assert!(
                crate::protocol::parse_request(&line).is_ok(),
                "generated line failed to parse: {line}"
            );
        }
    }
}
