//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, `black_box`) with a
//! deliberately simple measurement loop: each benchmark runs a warmup
//! iteration plus a small fixed number of timed iterations and prints the
//! mean wall-clock time per iteration. No statistics, HTML reports, or
//! outlier analysis — just enough to keep `cargo bench` useful offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batches are sized in `iter_batched` (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness handle, one per `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.effective_samples(),
            _parent: self,
        }
    }

    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let samples = self.effective_samples();
        run_one(&id.into(), samples, &mut f);
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, &mut f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn finish(self) {}
}

fn run_one(id: &str, samples: usize, f: &mut impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: samples.max(1) as u64,
        total: Duration::ZERO,
        timed_iters: 0,
    };
    f(&mut b);
    if b.timed_iters > 0 {
        let per_iter = b.total.as_secs_f64() / b.timed_iters as f64;
        println!(
            "bench {id:<50} {:>12.3} µs/iter ({} iters)",
            per_iter * 1e6,
            b.timed_iters
        );
    } else {
        println!("bench {id:<50} (no measurement)");
    }
}

/// Passed to each benchmark closure; accumulates timed iterations.
pub struct Bencher {
    iters: u64,
    total: Duration,
    timed_iters: u64,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        black_box(routine()); // warmup, untimed
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.timed_iters += 1;
        }
    }

    pub fn iter_batched<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warmup, untimed
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.timed_iters += 1;
        }
    }
}

/// `criterion_group!(name, target, ...)` — a function running each target
/// against a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group, ...)` — the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // 1 warmup + 3 timed.
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_runs_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut setups = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(|| setups += 1, |_| (), BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(setups, 3);
    }
}
