//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! reimplements exactly the API surface the workspace uses: a seedable
//! `StdRng` (xoshiro256** seeded through SplitMix64), `Rng::gen_range` over
//! integer and float ranges, `Rng::gen_bool`, and `seq::SliceRandom`'s
//! Fisher–Yates `shuffle`/`choose`.
//!
//! The stream is deterministic for a given seed and stable across
//! platforms, which is what the golden-figure regression tests pin. It is
//! **not** the same stream as the real `rand::rngs::StdRng` (ChaCha12) —
//! the experiments define their own reference outputs, so only internal
//! stability matters.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is shimmed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore + Sized {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.next_f64() * (hi - lo)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator, seeded via SplitMix64 like the reference
    /// implementation recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Random slice operations (Fisher–Yates shuffle and uniform choice).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(1.5f64..=2.5);
            assert!((1.5..=2.5).contains(&y));
            let z = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
