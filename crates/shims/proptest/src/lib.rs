//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: range strategies over integers and floats, tuple strategies,
//! `collection::vec`, `prop_map` / `prop_flat_map`, the `proptest!` macro
//! with `#![proptest_config(ProptestConfig::with_cases(n))]`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports the generated value via the
//!   assertion message (inputs derive `Debug` in our tests) but is not
//!   minimized;
//! * **deterministic by construction** — each test's RNG is seeded from a
//!   hash of the test function's name, so runs are reproducible without a
//!   `PROPTEST_` environment contract.

#![forbid(unsafe_code)]

pub mod rng {
    /// Deterministic xoshiro256** stream used to drive strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator from an FNV-1a hash of the test name, so
        /// every test gets its own reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[lo, hi]` (inclusive).
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
        }
    }
}

pub mod test_runner {
    /// Per-`proptest!` block configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::rng::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `generate` samples a
    /// concrete value directly and nothing shrinks.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let mid = self.inner.generate(rng);
            (self.f)(mid).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32, i64, i32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the size argument of [`vec`]: a fixed length or
    /// a (half-open / inclusive) range of lengths.
    pub trait SizeRange {
        /// Inclusive `(min, max)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing `Vec`s whose elements come from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// `proptest::collection::vec(elem, size)` — vectors with a sampled
    /// length and independently sampled elements.
    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.min, self.max);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Supports the real macro's surface for blocks of
/// `#[test] fn name(arg in strategy, ...) { body }` items with an optional
/// leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::rng::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — asserts, reporting through a panic (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `prop_assert_eq!` — equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `prop_assert_ne!` — inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(n in 2usize..=9, x in 0.5f64..8.0) {
            prop_assert!((2..=9).contains(&n));
            prop_assert!((0.5..8.0).contains(&x));
        }

        #[test]
        fn flat_map_vec_respects_outer(v in (1usize..=4).prop_flat_map(|n| {
            crate::collection::vec(0usize..10, n)
        })) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn map_applies(y in (0usize..5).prop_map(|x| x * 2)) {
            prop_assert!(y % 2 == 0);
            prop_assert!(y < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0usize..100, 3usize..=7);
        let mut r1 = TestRng::from_name("t");
        let mut r2 = TestRng::from_name("t");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
