//! Criterion benchmarks for the solver stack, one group per paper
//! figure/experiment (timing complements the CSV regeneration binaries,
//! which report the plotted quantities).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use placement::instance::PpmInstance;
use placement::passive::{
    flow_greedy_ppm, greedy_adaptive, greedy_static, solve_ppm_exact, ExactOptions,
};
use placement::sampling::{solve_ppme, PpmeOptions, SamplingProblem};
use popgen::{PopSpec, TrafficSpec};

fn instance_10(seed: u64) -> (popgen::Pop, PpmInstance) {
    let pop = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop, seed);
    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    (pop, inst)
}

/// Figure 7 timing: PPM solvers on the 10-router POP at k = 0.9.
fn bench_fig7_passive(c: &mut Criterion) {
    let (_pop, inst) = instance_10(1);
    let mut g = c.benchmark_group("fig7_passive_10");
    g.bench_function("greedy_static", |b| {
        b.iter(|| greedy_static(&inst, 0.9).unwrap().device_count())
    });
    g.bench_function("greedy_adaptive", |b| {
        b.iter(|| greedy_adaptive(&inst, 0.9).unwrap().device_count())
    });
    g.bench_function("flow_greedy", |b| {
        b.iter(|| flow_greedy_ppm(&inst, 0.9).unwrap().device_count())
    });
    g.sample_size(10);
    g.bench_function("ilp_exact", |b| {
        b.iter(|| {
            solve_ppm_exact(&inst, 0.9, &ExactOptions::default())
                .unwrap()
                .device_count()
        })
    });
    g.finish();
}

/// Figure 8 timing: the heavy 15-router instance — greedy and the LP
/// relaxation (the full MIP is exercised by the fig8 binary).
fn bench_fig8_scale(c: &mut Criterion) {
    let pop = PopSpec::paper_15().build();
    let ts = TrafficSpec::default().generate(&pop, 1);
    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    let mut g = c.benchmark_group("fig8_passive_15");
    g.sample_size(10);
    g.bench_function("greedy_static_1980_traffics", |b| {
        b.iter(|| greedy_static(&inst, 0.9).unwrap().device_count())
    });
    g.bench_function("mecf_bb_exact_k80", |b| {
        // The flow-bound branch-and-bound proves k = 80% on this instance
        // in about a second; the generic LP 2 simplex would need ~90 s per
        // relaxation at this scale (see EXPERIMENTS.md).
        let opts = ExactOptions {
            max_nodes: 100_000,
            time_limit: Some(std::time::Duration::from_secs(30)),
            ..Default::default()
        };
        b.iter(|| {
            placement::passive::solve_ppm_mecf_bb(&inst, 0.8, &opts)
                .unwrap()
                .device_count()
        })
    });
    g.finish();
}

/// Figures 9–11 timing: probe computation + the three placements.
fn bench_active(c: &mut Criterion) {
    use placement::active::*;
    let mut g = c.benchmark_group("fig9_11_active");
    for (name, spec) in [
        ("15_routers", PopSpec::paper_15()),
        ("29_routers", PopSpec::paper_29()),
    ] {
        let pop = spec.build();
        let (graph, _) = pop.router_subgraph();
        let candidates: Vec<_> = graph.nodes().collect();
        g.bench_function(format!("compute_probes_{name}"), |b| {
            b.iter(|| compute_probes(&graph, &candidates).len())
        });
        let probes = compute_probes(&graph, &candidates);
        g.bench_function(format!("thiran_{name}"), |b| {
            b.iter(|| place_beacons_thiran(&probes, &candidates).len())
        });
        g.bench_function(format!("greedy_{name}"), |b| {
            b.iter(|| place_beacons_greedy(&probes, &candidates).len())
        });
        g.bench_function(format!("ilp_{name}"), |b| {
            b.iter(|| place_beacons_ilp(&graph, &probes, &candidates).len())
        });
    }
    g.finish();
}

/// Section 5 timing: the PPME MILP and the PPME* LP re-optimization.
fn bench_sampling(c: &mut Criterion) {
    let pop = PopSpec::small().build();
    let multi = TrafficSpec::default().generate_multi(&pop, 2, 2);
    let (ci, ce) = SamplingProblem::uniform_costs(pop.graph.edge_count());
    let prob = SamplingProblem::from_multi(&pop.graph, &multi, 0.1, 0.8, ci, ce);
    let mut g = c.benchmark_group("sec5_sampling");
    g.sample_size(10);
    g.bench_function("ppme_milp", |b| {
        b.iter(|| {
            solve_ppme(&prob, &PpmeOptions::default())
                .unwrap()
                .total_cost()
        })
    });
    let sol = solve_ppme(&prob, &PpmeOptions::default()).unwrap();
    g.bench_function("ppme_star_lp_reoptimize", |b| {
        b.iter(|| {
            placement::dynamic::reoptimize_rates(&prob, &sol.installed)
                .unwrap()
                .exploit_cost
        })
    });
    g.bench_function("ppme_star_flow_reoptimize", |b| {
        b.iter(|| {
            placement::dynamic::reoptimize_rates_flow(&prob, &sol.installed)
                .unwrap()
                .exploit_cost
        })
    });
    g.finish();
}

/// Substrate timing: simplex, min-cost flow, shortest paths.
fn bench_substrates(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");
    // Simplex on the LP2 relaxation of the 10-router instance.
    let (_pop, inst) = instance_10(3);
    let merged = inst.merged();
    let (model, _) = placement::passive::build_lp2(&merged, 0.95);
    g.bench_function("simplex_lp2_10router", |b| {
        b.iter_batched(
            || model.clone(),
            |m| m.solve_lp().unwrap().objective,
            BatchSize::SmallInput,
        )
    });
    // Min-cost flow on the MECF graph.
    let mon = inst.to_monitoring();
    g.bench_function("mecf_flow_greedy", |b| {
        b.iter(|| mcmf::mecf::flow_greedy(&mon, 0.9).unwrap().routed)
    });
    // Dijkstra trees over the 15-router POP.
    let pop15 = PopSpec::paper_15().build();
    g.bench_function("dijkstra_tree_15router", |b| {
        b.iter(|| {
            let t =
                netgraph::dijkstra::shortest_path_tree(&pop15.graph, netgraph::NodeId(0)).unwrap();
            t.distance(netgraph::NodeId(5))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig7_passive,
    bench_fig8_scale,
    bench_active,
    bench_sampling,
    bench_substrates
);
criterion_main!(benches);
