//! Criterion groups for the hot paths the perf subsystem tracks: graph
//! substrate at the 80/150-router scale, simplex pivoting, the MECF
//! branch-and-bound, greedy set-cover, and the end-to-end figure-8
//! pipeline. `bench_report` runs the same code paths on a fixed grid and
//! records the numbers to `BENCH_popmon.json`; these benches are the
//! interactive view (`cargo bench -p popmon-bench`).

use criterion::{criterion_group, criterion_main, Criterion};

use netgraph::NodeId;
use placement::instance::PpmInstance;
use placement::passive::{greedy_static, solve_ppm_mecf_bb, ExactOptions};
use popgen::{FamilySpec, GravitySpec, PopSpec, TrafficSpec};

/// Dijkstra trees and Yen k-SP on the large presets (figures 9-11 and the
/// section-7 scale experiment live on these graphs).
fn bench_graph_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_large");
    let (g150, _) = PopSpec::large_150().build().router_subgraph();
    g.bench_function("dijkstra_tree_150", |b| {
        let mut src = 0u32;
        b.iter(|| {
            let t = netgraph::dijkstra::shortest_path_tree(&g150, NodeId(src)).unwrap();
            src = (src + 1) % g150.node_count() as u32;
            t.distance(NodeId(1))
        })
    });
    let (g80, _) = PopSpec::paper_80().build().router_subgraph();
    let routers: Vec<NodeId> = g80.nodes().collect();
    g.bench_function("ksp4_80", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let s = routers[(i * 7 + 1) % routers.len()];
            let t = routers[(i * 13 + 5) % routers.len()];
            i += 1;
            if s == t {
                0
            } else {
                netgraph::ksp::k_shortest_paths(&g80, s, t, 4)
                    .unwrap()
                    .len()
            }
        })
    });
    g.finish();
}

/// Simplex pivoting on LP2 relaxations (the pricing loop is the hot path
/// the candidate-list optimization targets).
fn bench_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex_pivoting");
    let pop10 = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop10, 3);
    let merged = PpmInstance::from_traffic(&pop10.graph, &ts).merged();
    let (lp2, _) = placement::passive::build_lp2(&merged, 0.95);
    g.bench_function("lp2_relaxation_10router", |b| {
        b.iter(|| lp2.solve_lp().unwrap().iterations)
    });
    let pop15 = PopSpec::paper_15().build();
    let ts15 = TrafficSpec::default().generate(&pop15, 1);
    let merged15 = PpmInstance::from_traffic(&pop15.graph, &ts15).merged();
    let (lp2_15, _) = placement::passive::build_lp2(&merged15, 0.9);
    g.sample_size(2);
    g.bench_function("lp2_relaxation_15router", |b| {
        b.iter(|| lp2_15.solve_lp().unwrap().iterations)
    });
    g.finish();
}

/// The figure-8 exact solver and its greedy warm-start at full instance
/// size (15 routers, 1980 traffics).
fn bench_fig8_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_pipeline");
    let pop = PopSpec::paper_15().build();
    g.sample_size(5);
    g.bench_function("end_to_end_k75_seed0", |b| {
        b.iter(|| {
            let ts = TrafficSpec::default().generate(&pop, 0);
            let inst = PpmInstance::from_traffic(&pop.graph, &ts);
            let greedy = greedy_static(&inst, 0.75).unwrap().device_count();
            let opts = ExactOptions {
                max_nodes: 50_000,
                time_limit: Some(std::time::Duration::from_secs(120)),
                ..Default::default()
            };
            let exact = solve_ppm_mecf_bb(&inst, 0.75, &opts)
                .unwrap()
                .device_count();
            (greedy, exact)
        })
    });
    let ts = TrafficSpec::default().generate(&pop, 0);
    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    g.bench_function("greedy_setcover_k90", |b| {
        b.iter(|| greedy_static(&inst, 0.9).unwrap().device_count())
    });
    g.sample_size(3);
    g.bench_function("mecf_bb_k80", |b| {
        let opts = ExactOptions {
            max_nodes: 100_000,
            time_limit: Some(std::time::Duration::from_secs(60)),
            ..Default::default()
        };
        b.iter(|| solve_ppm_mecf_bb(&inst, 0.8, &opts).unwrap().device_count())
    });
    g.finish();
}

/// The instance-space generators (`popgen::families`): per-family
/// generation cost at the 80-router scale, plus gravity traffic and the
/// end-to-end placement pipeline on a generated 30-router Waxman instance
/// (the `xp_topology_families` hot path).
fn bench_families(c: &mut Criterion) {
    let mut g = c.benchmark_group("instance_space");
    for (name, spec) in [
        ("waxman_80_generate", FamilySpec::waxman(80, 30)),
        ("ba_80_generate", FamilySpec::barabasi_albert(80, 30)),
        ("hier_80_generate", FamilySpec::hier_isp(80, 30)),
    ] {
        g.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                spec.build(seed).unwrap().graph.edge_count()
            })
        });
    }
    let waxman30 = FamilySpec::waxman(30, 15).build(0).unwrap();
    g.bench_function("gravity_traffic_waxman30", |b| {
        b.iter(|| GravitySpec::default().generate(&waxman30, 0).total_volume())
    });
    g.sample_size(5);
    g.bench_function("family_pipeline_waxman30_k90", |b| {
        let opts = popmon_bench::scenarios::family_exact_options();
        b.iter(|| {
            let ts = GravitySpec::default().generate(&waxman30, 0);
            let inst = PpmInstance::from_traffic(&waxman30.graph, &ts);
            let greedy = greedy_static(&inst, 0.9).unwrap().device_count();
            let exact = solve_ppm_mecf_bb(&inst, 0.9, &opts).unwrap().device_count();
            (greedy, exact)
        })
    });
    g.finish();
}

/// The warm-start layer: LP re-optimization from a prior basis along a
/// coverage-target chain (vs. the cold solve above), the warm-chained
/// exact k-grid of fig7, and delta-aware k-SP re-routing under link
/// failures (vs. routing every pair from scratch).
fn bench_warm_start(c: &mut Criterion) {
    let mut g = c.benchmark_group("warm_start");
    let pop10 = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop10, 3);
    let inst = PpmInstance::from_traffic(&pop10.graph, &ts);
    let merged = inst.merged();
    let total = inst.total_volume();

    let (mut lp2, _) = placement::passive::build_lp2(&merged, 0.75);
    let target_row = lp2.constr(lp2.constr_count() - 1);
    g.bench_function("lp2_rhs_chain_warm_10router", |b| {
        b.iter(|| {
            let mut basis = None;
            let mut iters = 0usize;
            for k in [0.75, 0.8, 0.85, 0.9, 0.95, 1.0] {
                lp2.set_rhs(target_row, k * total);
                let (s, next) = lp2.solve_lp_warm(basis.as_ref()).unwrap();
                iters += s.iterations;
                basis = next;
            }
            iters
        })
    });
    g.sample_size(10);
    g.bench_function("fig7_exact_kgrid_chained", |b| {
        let opts = ExactOptions::default();
        b.iter(|| {
            let mut chain = placement::delta::DeltaInstance::from_instance(&inst);
            let mut devices = 0usize;
            for k in [0.75, 0.8, 0.85, 0.9, 0.95, 1.0] {
                devices += chain.solve_exact(k, &opts).unwrap().device_count();
            }
            devices
        })
    });

    let (g80, _) = PopSpec::paper_80().build().router_subgraph();
    let routers: Vec<NodeId> = g80.nodes().collect();
    let pairs: Vec<(NodeId, NodeId)> = (0..24)
        .map(|i| {
            (
                routers[(i * 7 + 1) % routers.len()],
                routers[(i * 13 + 5) % routers.len()],
            )
        })
        .filter(|(a, b)| a != b)
        .collect();
    let plan = netgraph::delta::RoutePlan::compute(&g80, &pairs, 4, &[]).unwrap();
    let fail = netgraph::EdgeId(plan.routes(0)[0].edges()[0].0);
    g.bench_function("ksp4_80_reroute_delta", |b| {
        b.iter(|| plan.reroute_avoiding(&g80, &[fail]).unwrap().1)
    });
    g.bench_function("ksp4_80_reroute_scratch", |b| {
        b.iter(|| {
            netgraph::delta::RoutePlan::compute(&g80, &pairs, 4, &[fail])
                .unwrap()
                .pairs()
                .len()
        })
    });
    g.finish();
}

/// The sparse LU kernels behind the simplex basis (`milp::lu`):
/// factorization, hyper-sparse FTRAN/BTRAN, and product-form update
/// chains, on an LP2-shaped synthetic basis (unit-diagonal spine, short
/// sub-diagonal bands, and a dense coupling row — the shape the
/// flow-conservation + coverage structure of the paper's programs
/// produces at the 1000-row Figure 8 scale).
fn bench_sparse_lu(c: &mut Criterion) {
    let m = 1000usize;
    let cols: Vec<Vec<(u32, f64)>> = (0..m)
        .map(|j| {
            let mut col = vec![(j as u32, 2.0 + (j % 5) as f64 * 0.25)];
            for t in 1..=(j % 4) {
                let r = j + t * 7;
                if r < m - 1 {
                    col.push((r as u32, 0.5 + (t as f64) * 0.125));
                }
            }
            if j != m - 1 {
                col.push((m as u32 - 1, 0.0625 + (j % 3) as f64 * 0.03125));
            }
            col.sort_unstable_by_key(|e| e.0);
            col
        })
        .collect();
    let refs: Vec<&[(u32, f64)]> = cols.iter().map(|c| c.as_slice()).collect();

    let mut g = c.benchmark_group("sparse_lu");
    g.bench_function("factorize_1000", |b| {
        b.iter(|| milp::lu::Basis::factorize_sparse(m, &refs).unwrap().m())
    });

    let basis = milp::lu::Basis::factorize_sparse(m, &refs).unwrap();
    let dense_rhs: Vec<f64> = (0..m).map(|i| ((i % 13) as f64 - 6.0) * 0.5).collect();
    g.bench_function("ftran_dense_rhs_1000", |b| {
        let mut scratch = Vec::new();
        b.iter(|| {
            let mut x = dense_rhs.clone();
            basis.ftran(&mut x, &mut scratch);
            x[0]
        })
    });
    g.bench_function("ftran_unit_rhs_1000", |b| {
        let mut scratch = Vec::new();
        let mut unit = 0usize;
        b.iter(|| {
            let mut x = vec![0.0; m];
            unit = (unit + 1) % m;
            x[unit] = 1.0;
            basis.ftran(&mut x, &mut scratch);
            x[unit]
        })
    });
    g.bench_function("btran_unit_rhs_1000", |b| {
        let mut scratch = Vec::new();
        let mut unit = 0usize;
        b.iter(|| {
            let mut x = vec![0.0; m];
            unit = (unit + 1) % m;
            x[unit] = 1.0;
            basis.btran(&mut x, &mut scratch);
            x[unit]
        })
    });

    // A 64-pivot product-form update chain (half the MAX_ETAS cap) plus
    // one solve per pivot — the steady-state simplex pattern.
    g.sample_size(10);
    g.bench_function("update_chain_64_1000", |b| {
        b.iter(|| {
            let mut basis = milp::lu::Basis::factorize_sparse(m, &refs).unwrap();
            let mut scratch = Vec::new();
            let mut acc = 0.0;
            for k in 0..64usize {
                let pos = (k * 131 + 7) % m;
                let mut w = vec![0.0; m];
                w[(k * 17) % m] = 3.0;
                w[(k * 29 + 3) % m] = 1.0;
                basis.ftran(&mut w, &mut scratch);
                if w[pos].abs() > 1e-6 {
                    basis.update(pos, &w).unwrap();
                }
                let mut x = vec![0.0; m];
                x[(k * 41) % m] = 1.0;
                basis.btran(&mut x, &mut scratch);
                acc += x[0];
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(
    hotpaths,
    bench_graph_substrate,
    bench_simplex,
    bench_fig8_pipeline,
    bench_families,
    bench_warm_start,
    bench_sparse_lu
);
criterion_main!(hotpaths);
