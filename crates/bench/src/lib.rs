//! Shared harness for the figure-regeneration binaries.
//!
//! Every binary prints CSV to stdout (one row per x-axis point, matching
//! the corresponding paper figure) and accepts:
//!
//! * `--seeds N` — number of seeded runs to average (the paper averages
//!   20; defaults here are smaller so a full regeneration terminates in
//!   minutes — see `EXPERIMENTS.md`);
//! * `--scale S` — optional instance-size multiplier where meaningful;
//! * `--out PATH` — write the CSV to a file instead of stdout (an
//!   unwritable path is a one-line error and exit code 1, not a panic).

use std::time::Instant;

pub mod gate;
pub mod perf;
pub mod scenarios;

/// Parsed command-line arguments common to all experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Number of seeds to average over.
    pub seeds: u64,
    /// Free-form scale knob (binaries document their own use).
    pub scale: f64,
    /// Write the CSV to this path instead of stdout.
    pub out: Option<String>,
}

/// Parses the argument list (without the program name) against the common
/// experiment flag set. Returns a descriptive error for unknown flags and
/// malformed or out-of-range values — experiments must never silently run
/// with a mistyped grid.
pub fn parse_args_from(argv: &[String], default_seeds: u64) -> Result<Args, String> {
    let mut args = Args {
        seeds: default_seeds,
        scale: 1.0,
        out: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                let raw = argv.get(i).ok_or("--out needs a path")?;
                if raw.is_empty() {
                    return Err("--out needs a non-empty path".into());
                }
                args.out = Some(raw.clone());
            }
            "--seeds" => {
                i += 1;
                let raw = argv.get(i).ok_or("--seeds needs a value")?;
                args.seeds = raw
                    .parse()
                    .map_err(|_| format!("--seeds needs a positive integer, got {raw:?}"))?;
                if args.seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--scale" => {
                i += 1;
                let raw = argv.get(i).ok_or("--scale needs a value")?;
                args.scale = raw
                    .parse()
                    .map_err(|_| format!("--scale needs a number, got {raw:?}"))?;
                if !args.scale.is_finite() || args.scale <= 0.0 {
                    return Err(format!(
                        "--scale must be a finite positive number, got {raw:?}"
                    ));
                }
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?} (expected --seeds N, --scale S, or --out PATH)"
                ))
            }
        }
        i += 1;
    }
    Ok(args)
}

/// Parses `--seeds N` / `--scale S` from `std::env::args`, with the given
/// default seed count. Prints a usage line and exits non-zero on any
/// unknown flag or malformed value (see [`parse_args_from`]).
pub fn parse_args(default_seeds: u64) -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: <bin> [--seeds N] [--scale S] [--out PATH]");
        std::process::exit(0);
    }
    match parse_args_from(&argv, default_seeds) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: <bin> [--seeds N] [--scale S] [--out PATH]");
            std::process::exit(2);
        }
    }
}

/// Fallible core of [`emit_text`]: writes to stdout when `out` is
/// `None`, else to the path in one write. Returns a one-line message on
/// failure — including a closed stdout pipe, which `print!` would turn
/// into a panic with a backtrace.
pub fn try_emit_text(text: &str, out: Option<&str>) -> Result<(), String> {
    use std::io::Write;
    match out {
        None => {
            let mut stdout = std::io::stdout().lock();
            stdout
                .write_all(text.as_bytes())
                .and_then(|()| stdout.flush())
                .map_err(|e| format!("cannot write to stdout: {e}"))
        }
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}")),
    }
}

/// Emits experiment output: to stdout when `out` is `None`, else to the
/// given path in one write. On an unwritable path the process exits with
/// code 1 and a one-line error — never a panic/backtrace, so CI logs stay
/// readable.
pub fn emit_text(text: &str, out: Option<&str>) {
    if let Err(e) = try_emit_text(text, out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// [`emit_text`] for one or more scenario reports (concatenated CSVs, in
/// order — the multi-section binaries emit all sections to one target).
pub fn emit_reports(reports: &[&engine::ScenarioReport], out: Option<&str>) {
    let text: String = reports.iter().map(|r| r.to_csv()).collect();
    emit_text(&text, out);
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two points).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Runs `f` and returns `(result, seconds)` — used to report solve times.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Drops the trailing CSV column of every line — the wall-clock column of
/// the timed reports (`fig7`/`fig8`/`xp_scale_150`), which is the one
/// column excluded from the byte-identity and golden contracts. Golden
/// and parity tests share this so the exclusion rule has a single home.
/// A line without a comma is kept whole, so malformed rows still surface
/// as differences instead of collapsing to empty strings.
pub fn strip_last_column<'a>(lines: impl IntoIterator<Item = &'a str>) -> Vec<String> {
    lines
        .into_iter()
        .map(|l| {
            l.rsplit_once(',')
                .map_or_else(|| l.to_string(), |(head, _)| head.to_string())
        })
        .collect()
}

/// Shared driver for the active-monitoring figures (9, 10, 11): for every
/// candidate-set size `|V_B|` from 2 to the router count, draw seeded
/// random router subsets, compute Φ, and place beacons with all three
/// strategies. Runs through the scenario engine (`POPMON_THREADS` workers
/// or all cores) and prints one CSV row per `|V_B|`; the report is
/// byte-identical to a serial run.
pub fn active_experiment(spec: popgen::PopSpec, args: &Args) {
    let pop = spec.build();
    let (graph, _) = pop.router_subgraph();
    let sizes: Vec<usize> = (2..=graph.node_count()).collect();
    let report = scenarios::active_report(&engine::Engine::from_env(), &graph, &sizes, args.seeds);
    emit_reports(&[&report], args.out.as_deref());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn try_emit_text_reports_unwritable_paths_instead_of_panicking() {
        let e = try_emit_text("row\n", Some("/nonexistent-dir/out.csv")).unwrap_err();
        assert!(e.contains("/nonexistent-dir/out.csv"), "{e}");
        assert!(!e.contains('\n'), "one-line error, got {e:?}");

        let path = std::env::temp_dir().join("popmon_try_emit_text_test.csv");
        let path_str = path.to_str().unwrap();
        try_emit_text("metric,value\n", Some(path_str)).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "metric,value\n");
        let _ = std::fs::remove_file(&path);
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_args_defaults_and_valid_values() {
        let a = parse_args_from(&[], 7).unwrap();
        assert_eq!(a.seeds, 7);
        assert_eq!(a.scale, 1.0);
        let a = parse_args_from(&argv(&["--seeds", "20", "--scale", "2.5"]), 7).unwrap();
        assert_eq!(a.seeds, 20);
        assert_eq!(a.scale, 2.5);
        // Later occurrences win, as in the serial binaries.
        let a = parse_args_from(&argv(&["--seeds", "3", "--seeds", "9"]), 7).unwrap();
        assert_eq!(a.seeds, 9);
    }

    #[test]
    fn parse_args_rejects_unknown_flags() {
        let e = parse_args_from(&argv(&["--sedes", "3"]), 1).unwrap_err();
        assert!(e.contains("unknown argument"), "{e}");
        let e = parse_args_from(&argv(&["extra"]), 1).unwrap_err();
        assert!(e.contains("unknown argument"), "{e}");
    }

    #[test]
    fn parse_args_rejects_malformed_seeds() {
        for bad in ["abc", "-3", "1.5", ""] {
            let e = parse_args_from(&argv(&["--seeds", bad]), 1).unwrap_err();
            assert!(e.contains("--seeds"), "seeds {bad:?}: {e}");
        }
        let e = parse_args_from(&argv(&["--seeds", "0"]), 1).unwrap_err();
        assert!(e.contains("at least 1"), "{e}");
        let e = parse_args_from(&argv(&["--seeds"]), 1).unwrap_err();
        assert!(e.contains("needs a value"), "{e}");
    }

    #[test]
    fn parse_args_accepts_out_path() {
        let a = parse_args_from(&argv(&["--out", "results.csv"]), 1).unwrap();
        assert_eq!(a.out.as_deref(), Some("results.csv"));
        assert!(parse_args_from(&[], 1).unwrap().out.is_none());
        let e = parse_args_from(&argv(&["--out"]), 1).unwrap_err();
        assert!(e.contains("needs a path"), "{e}");
        let e = parse_args_from(&argv(&["--out", ""]), 1).unwrap_err();
        assert!(e.contains("non-empty"), "{e}");
    }

    #[test]
    fn parse_args_rejects_malformed_scale() {
        for bad in ["abc", "NaN", "inf", "0", "-1", ""] {
            let e = parse_args_from(&argv(&["--scale", bad]), 1).unwrap_err();
            assert!(e.contains("--scale"), "scale {bad:?}: {e}");
        }
        let e = parse_args_from(&argv(&["--scale"]), 1).unwrap_err();
        assert!(e.contains("needs a value"), "{e}");
    }
}
