//! Shared harness for the figure-regeneration binaries.
//!
//! Every binary prints CSV to stdout (one row per x-axis point, matching
//! the corresponding paper figure) and accepts:
//!
//! * `--seeds N` — number of seeded runs to average (the paper averages
//!   20; defaults here are smaller so a full regeneration terminates in
//!   minutes — see `EXPERIMENTS.md`);
//! * `--scale S` — optional instance-size multiplier where meaningful.

use std::time::Instant;

pub mod scenarios;

/// Parsed command-line arguments common to all experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Number of seeds to average over.
    pub seeds: u64,
    /// Free-form scale knob (binaries document their own use).
    pub scale: f64,
}

/// Parses `--seeds N` / `--scale S` from `std::env::args`, with the given
/// default seed count.
pub fn parse_args(default_seeds: u64) -> Args {
    let mut args = Args { seeds: default_seeds, scale: 1.0 };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seeds" => {
                i += 1;
                args.seeds = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seeds needs a positive integer"));
            }
            "--scale" => {
                i += 1;
                args.scale = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--scale needs a number"));
            }
            "--help" | "-h" => {
                eprintln!("usage: <bin> [--seeds N] [--scale S]");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?} (try --help)"),
        }
        i += 1;
    }
    args
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two points).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Runs `f` and returns `(result, seconds)` — used to report solve times.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Shared driver for the active-monitoring figures (9, 10, 11): for every
/// candidate-set size `|V_B|` from 2 to the router count, draw seeded
/// random router subsets, compute Φ, and place beacons with all three
/// strategies. Runs through the scenario engine (`POPMON_THREADS` workers
/// or all cores) and prints one CSV row per `|V_B|`; the report is
/// byte-identical to a serial run.
pub fn active_experiment(spec: popgen::PopSpec, args: &Args) {
    let pop = spec.build();
    let (graph, _) = pop.router_subgraph();
    scenarios::active_report(&engine::Engine::from_env(), &graph, args.seeds).print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
