//! Engine-backed experiment scenarios.
//!
//! The `xp_*` binaries used to own ad-hoc serial loops; the sweeps now
//! live here as functions of an [`engine::Engine`], so that
//!
//! * the binaries run them across the worker pool
//!   (`POPMON_THREADS` or all cores by default), and
//! * the parity tests can run the *same* sweep serially and with multiple
//!   workers and assert the reports are byte-identical.
//!
//! Per-case sub-results that several cases share — the seeded deployment a
//! whole budget sweep reuses, or the probe set Φ consumed by three beacon
//! placements — go through the run's [`engine::Memo`], keyed by seed.

use engine::{Case, ChainCase, Engine, ScenarioReport, ScenarioSpec};
use milp::MipOptions;
use netgraph::Graph;
use placement::active::{
    assign_probes_ilp, compute_probes, place_beacons_greedy, place_beacons_ilp,
    place_beacons_thiran, ProbeSet,
};
use placement::campaign::{campaign_exact, campaign_greedy, CampaignProblem};
use placement::cascade::{independent_monitored, solve_ppme_cascade};
use placement::delta::DeltaInstance;
use placement::dynamic::{run_controller, ControllerSpec};
use placement::instance::PpmInstance;
use placement::passive::{
    flow_greedy_ppm, greedy_adaptive, greedy_static, solve_ppm_exact, solve_ppm_mecf_bb,
    ExactOptions,
};
use placement::resilience::{greedy_expected, score_ensemble};
use placement::sampling::{solve_ppme, PpmeOptions, SamplingProblem};
use placement::solve::{SolveOutcome, SolveRequest};
use popgen::dynamic::{DynamicSpec, TrafficProcess};
use popgen::{
    FailureModel, FailureSpec, FamilySpec, GravitySpec, MultiTraffic, Pop, TrafficSet, TrafficSpec,
};

use crate::{mean, stddev, timed};

/// The seed-keyed `PPM` instance every passive sweep starts from: the
/// seeded traffic matrix run through [`PpmInstance::from_traffic`]. The
/// instance construction (one shortest path per traffic pair) is shared
/// by every k-point of a sweep, so it goes through the run's memo.
fn ppm_instance_of(
    memo: &engine::Memo,
    domain: &'static str,
    pop: &Pop,
    seed: u64,
) -> std::sync::Arc<PpmInstance> {
    memo.get_or_compute(domain, seed, || {
        let ts = TrafficSpec::default().generate(pop, seed);
        PpmInstance::from_traffic(&pop.graph, &ts)
    })
}

// ---------------------------------------------------------------------------
// fig7: passive devices vs. k on the 10-router POP (greedy vs. exact ILP)
// ---------------------------------------------------------------------------

/// The figure-7 sweep: for each coverage target `k` (percent), the
/// decreasing-load greedy and the exact ILP device counts averaged over
/// seeds, plus the mean exact solve time. The per-seed instance is built
/// once and shared by every k-point through the memo.
///
/// Runs as per-seed **warm-start chains**: one [`DeltaInstance`] walks
/// the k grid, each exact solve re-targeting the coverage row and reusing
/// the previous point's LP basis. Chains live inside one worker and are
/// keyed by seed, so the CSV stays byte-identical at any thread count
/// (proven counts are unique — the chain reuses bases, not answers).
///
/// The trailing `ilp_time_s` column is a wall-clock measurement and is
/// the one column that legitimately varies run to run; parity tests
/// compare everything before it.
pub fn fig7_report(engine: &Engine, pop: &Pop, k_percents: &[u32], seeds: u64) -> ScenarioReport {
    let spec = ScenarioSpec::new("fig7_passive_10", k_percents.to_vec()).with_seeds(seeds);
    engine.run_chain_report(
        &spec,
        "k_percent,greedy_devices,ilp_devices,greedy_stddev,ilp_stddev,ilp_time_s",
        |c: ChainCase<'_, u32>| {
            let inst = ppm_instance_of(c.memo, "fig7_inst", pop, c.seed);
            let mut chain = DeltaInstance::from_instance(&inst);
            c.points
                .iter()
                .map(|&k_pct| {
                    let k = k_pct as f64 / 100.0;
                    let g = greedy_static(&inst, k).expect("all traffic coverable on this POP");
                    let (ilp, secs) = timed(|| {
                        chain
                            .solve_exact(k, &ExactOptions::default())
                            .expect("feasible")
                    });
                    assert!(inst.is_feasible(&ilp.edges, k));
                    (g.device_count() as f64, ilp.device_count() as f64, secs)
                })
                .collect()
        },
        |k_pct, rs| {
            let greedy: Vec<f64> = rs.iter().map(|r| r.0).collect();
            let ilp: Vec<f64> = rs.iter().map(|r| r.1).collect();
            let times: Vec<f64> = rs.iter().map(|r| r.2).collect();
            format!(
                "{k_pct},{:.2},{:.2},{:.2},{:.2},{:.3}",
                mean(&greedy),
                mean(&ilp),
                stddev(&greedy),
                stddev(&ilp),
                mean(&times),
            )
        },
    )
}

// ---------------------------------------------------------------------------
// fig8: passive devices vs. k on the 15-router POP (greedy vs. MECF B&B)
// ---------------------------------------------------------------------------

/// The figure-8 sweep: greedy vs. the MECF branch-and-bound on the
/// 15-router POP, averaged over seeds, with the fraction of seeded solves
/// that closed the search. `opts` bounds each exact solve (the binary
/// passes the paper protocol's two-minute budget).
///
/// As in [`fig7_report`], the trailing `exact_time_s` column is
/// wall-clock; parity tests strip it.
pub fn fig8_report(
    engine: &Engine,
    pop: &Pop,
    k_percents: &[u32],
    seeds: u64,
    opts: &ExactOptions,
) -> ScenarioReport {
    let spec = ScenarioSpec::new("fig8_passive_15", k_percents.to_vec()).with_seeds(seeds);
    engine.run_report(
        &spec,
        "k_percent,greedy_devices,exact_devices,proven_fraction,exact_time_s",
        |c: Case<'_, u32>| {
            let inst = ppm_instance_of(c.memo, "fig8_inst", pop, c.seed);
            let k = *c.point as f64 / 100.0;
            let g = greedy_static(&inst, k).expect("all traffic coverable on this POP");
            let (s, secs) = timed(|| solve_ppm_mecf_bb(&inst, k, opts).expect("feasible"));
            assert!(inst.is_feasible(&s.edges, k));
            (
                g.device_count() as f64,
                s.device_count() as f64,
                s.proven_optimal,
                secs,
            )
        },
        |k_pct, rs| {
            let greedy: Vec<f64> = rs.iter().map(|r| r.0).collect();
            let exact: Vec<f64> = rs.iter().map(|r| r.1).collect();
            let proven = rs.iter().filter(|r| r.2).count();
            let times: Vec<f64> = rs.iter().map(|r| r.3).collect();
            format!(
                "{k_pct},{:.2},{:.2},{:.2},{:.1}",
                mean(&greedy),
                mean(&exact),
                proven as f64 / rs.len().max(1) as f64,
                mean(&times),
            )
        },
    )
}

// ---------------------------------------------------------------------------
// xp_mecf_ablation: the greedy family vs. the exact solvers across k
// ---------------------------------------------------------------------------

/// The section-4.3 ablation: static/adaptive/flow greedies against the
/// exact ILP and the MECF branch-and-bound on one POP, device counts
/// averaged over seeds. Fully deterministic (no timing columns).
///
/// The ILP column rides a per-seed warm-start chain across the k grid
/// (as in [`fig7_report`]); the other solvers are per-point.
pub fn mecf_ablation_report(
    engine: &Engine,
    pop: &Pop,
    k_percents: &[u32],
    seeds: u64,
) -> ScenarioReport {
    let spec = ScenarioSpec::new("xp_mecf_ablation", k_percents.to_vec()).with_seeds(seeds);
    engine.run_chain_report(
        &spec,
        "k_percent,static_greedy,adaptive_greedy,flow_greedy,ilp,mecf_bb",
        |c: ChainCase<'_, u32>| {
            let inst = ppm_instance_of(c.memo, "ablation_inst", pop, c.seed);
            let opts = ExactOptions::default();
            let mut chain = DeltaInstance::from_instance(&inst);
            c.points
                .iter()
                .map(|&k_pct| {
                    let k = k_pct as f64 / 100.0;
                    [
                        greedy_static(&inst, k).expect("feasible").device_count() as f64,
                        greedy_adaptive(&inst, k).expect("feasible").device_count() as f64,
                        flow_greedy_ppm(&inst, k).expect("feasible").device_count() as f64,
                        chain
                            .solve_exact(k, &opts)
                            .expect("feasible")
                            .device_count() as f64,
                        solve_ppm_mecf_bb(&inst, k, &opts)
                            .expect("feasible")
                            .device_count() as f64,
                    ]
                })
                .collect()
        },
        |k_pct, rs| {
            let col = |i: usize| mean(&rs.iter().map(|r| r[i]).collect::<Vec<_>>());
            format!(
                "{k_pct},{:.2},{:.2},{:.2},{:.2},{:.2}",
                col(0),
                col(1),
                col(2),
                col(3),
                col(4),
            )
        },
    )
}

// ---------------------------------------------------------------------------
// xp_cascade: additive vs. independent-sampling (cascade) cost across k
// ---------------------------------------------------------------------------

/// The seed-keyed multi-routed traffic set shared by every k-point of the
/// sampling sweeps (2 routes per pair, the section-5 setting).
fn multi_traffic_of(
    memo: &engine::Memo,
    domain: &'static str,
    pop: &Pop,
    seed: u64,
) -> std::sync::Arc<Vec<MultiTraffic>> {
    memo.get_or_compute(domain, seed, || {
        TrafficSpec::default().generate_multi(pop, seed, 2)
    })
}

/// The section-7 cascade sweep: for each coverage target `k`, the additive
/// (packet-marking) optimum against the independent-sampling cascade
/// solver, plus the *actual* coverage the additive solution achieves when
/// devices cannot coordinate. Averaged over seeds.
pub fn cascade_report(
    engine: &Engine,
    pop: &Pop,
    k_percents: &[u32],
    seeds: u64,
) -> ScenarioReport {
    let spec = ScenarioSpec::new("xp_cascade", k_percents.to_vec()).with_seeds(seeds);
    engine.run_report(
        &spec,
        "k_percent,additive_cost,cascade_cost,overhead_percent,additive_true_coverage",
        |c: Case<'_, u32>| {
            let multi = multi_traffic_of(c.memo, "cascade_multi", pop, c.seed);
            let k = *c.point as f64 / 100.0;
            let (ci, ce) = SamplingProblem::uniform_costs(pop.graph.edge_count());
            let prob = SamplingProblem::from_multi(&pop.graph, &multi, 0.0, k, ci, ce);
            let additive = solve_ppme(&prob, &PpmeOptions::default()).expect("feasible");
            let cascade = solve_ppme_cascade(&prob, &PpmeOptions::default()).expect("feasible");
            let actual = independent_monitored(&prob, &additive.rates);
            (
                additive.total_cost(),
                cascade.total_cost(),
                100.0 * actual / prob.total_volume(),
            )
        },
        |k_pct, rs| {
            let a = mean(&rs.iter().map(|r| r.0).collect::<Vec<_>>());
            let c = mean(&rs.iter().map(|r| r.1).collect::<Vec<_>>());
            let cov = mean(&rs.iter().map(|r| r.2).collect::<Vec<_>>());
            format!(
                "{k_pct},{a:.2},{c:.2},{:.1},{cov:.1}",
                100.0 * (c - a) / a.max(1e-9)
            )
        },
    )
}

// ---------------------------------------------------------------------------
// xp_sampling_cost: PPME(h,k) setup/exploitation cost structure
// ---------------------------------------------------------------------------

/// The section-5 cost sweep: for each `(h, k)` percent pair, the PPME
/// fixed-charge MILP's device count and cost split, averaged over seeds.
/// Callers pass pre-filtered pairs (`h ≤ k`); the multi-routed traffic
/// set is memoized per seed across all pairs.
pub fn sampling_cost_report(
    engine: &Engine,
    pop: &Pop,
    hk_percents: &[(u32, u32)],
    seeds: u64,
    opts: &PpmeOptions,
) -> ScenarioReport {
    let spec = ScenarioSpec::new("xp_sampling_cost", hk_percents.to_vec()).with_seeds(seeds);
    engine.run_report(
        &spec,
        "k_percent,h_percent,devices,setup_cost,exploit_cost,total_cost",
        |c: Case<'_, (u32, u32)>| {
            let (h_pct, k_pct) = *c.point;
            let multi = multi_traffic_of(c.memo, "sampling_multi", pop, c.seed);
            let (ci, ce) = SamplingProblem::uniform_costs(pop.graph.edge_count());
            let prob = SamplingProblem::from_multi(
                &pop.graph,
                &multi,
                h_pct as f64 / 100.0,
                k_pct as f64 / 100.0,
                ci,
                ce,
            );
            let s = solve_ppme(&prob, opts).expect("feasible");
            prob.check_solution(&s.installed, &s.rates, 1e-5)
                .expect("valid solution");
            [
                s.device_count() as f64,
                s.setup_cost,
                s.exploit_cost,
                s.total_cost(),
            ]
        },
        |(h_pct, k_pct), rs| {
            let col = |i: usize| mean(&rs.iter().map(|r| r[i]).collect::<Vec<_>>());
            format!(
                "{k_pct},{h_pct},{:.2},{:.2},{:.2},{:.2}",
                col(0),
                col(1),
                col(2),
                col(3)
            )
        },
    )
}

// ---------------------------------------------------------------------------
// xp_incremental: frozen-device upgrades and the gain of buying devices
// ---------------------------------------------------------------------------

/// Per-seed state shared by both incremental sections: the instance and
/// the exact `PPM(0.8)` base deployment the upgrades start from.
struct IncrementalSeedSetup {
    inst: PpmInstance,
    base_edges: Vec<usize>,
}

fn incremental_seed_setup(
    memo: &engine::Memo,
    pop: &Pop,
    seed: u64,
) -> std::sync::Arc<IncrementalSeedSetup> {
    memo.get_or_compute("incremental_base", seed, || {
        let ts = TrafficSpec::default().generate(pop, seed);
        let inst = PpmInstance::from_traffic(&pop.graph, &ts);
        let base = solve_ppm_exact(&inst, 0.8, &ExactOptions::default())
            .expect("PPM(0.8) is feasible on this POP");
        IncrementalSeedSetup {
            inst,
            base_edges: base.edges,
        }
    })
}

/// Section-1/4.3 upgrades: additional devices needed to reach each higher
/// `k` when the `PPM(0.8)` base cannot move, against a from-scratch
/// deployment. The base solve is memoized per seed (the serial loops
/// re-solved it for every k-point).
///
/// Both columns ride per-seed warm-start chains: one [`DeltaInstance`]
/// with the frozen base installed (the incremental totals) and one plain
/// (the from-scratch totals), each walking the k grid on a single model
/// whose coverage row is re-targeted point to point.
pub fn incremental_report(
    engine: &Engine,
    pop: &Pop,
    k_percents: &[u32],
    seeds: u64,
) -> ScenarioReport {
    let spec = ScenarioSpec::new("xp_incremental", k_percents.to_vec()).with_seeds(seeds);
    let opts = ExactOptions::default();
    engine.run_chain_report(
        &spec,
        "section,x,incremental_total,scratch_total,penalty",
        |c: ChainCase<'_, u32>| {
            let setup = incremental_seed_setup(c.memo, pop, c.seed);
            let mut inc_chain = DeltaInstance::from_instance(&setup.inst);
            inc_chain.set_installed(&setup.base_edges);
            let mut scratch_chain = DeltaInstance::from_instance(&setup.inst);
            c.points
                .iter()
                .map(|&k_pct| {
                    let k = k_pct as f64 / 100.0;
                    let inc = inc_chain.solve_exact(k, &opts).expect("feasible");
                    let scratch = scratch_chain.solve_exact(k, &opts).expect("feasible");
                    assert!(setup.inst.is_feasible(&inc.edges, k));
                    (inc.device_count() as f64, scratch.device_count() as f64)
                })
                .collect()
        },
        |k_pct, rs| {
            let i = mean(&rs.iter().map(|r| r.0).collect::<Vec<_>>());
            let s = mean(&rs.iter().map(|r| r.1).collect::<Vec<_>>());
            format!("upgrade_to_k,{k_pct},{i:.2},{s:.2},{:.2}", i - s)
        },
    )
}

/// Section-1/4.3 expected gain: coverage bought by adding 1..n optimally
/// placed devices on top of the `PPM(0.8)` base (memoized per seed, as in
/// [`incremental_report`]). The budget MIP rides a per-seed warm-start
/// chain over the extras grid (only the budget row's RHS moves).
pub fn budget_gain_report(
    engine: &Engine,
    pop: &Pop,
    extras: &[u32],
    seeds: u64,
) -> ScenarioReport {
    let spec = ScenarioSpec::new("xp_incremental_gain", extras.to_vec()).with_seeds(seeds);
    let opts = ExactOptions::default();
    engine.run_chain_report(
        &spec,
        "section,x,coverage_gain,coverage_after_percent,unused",
        |c: ChainCase<'_, u32>| {
            let setup = incremental_seed_setup(c.memo, pop, c.seed);
            let before = setup.inst.coverage(&setup.base_edges);
            let mut chain = DeltaInstance::from_instance(&setup.inst);
            chain.set_installed(&setup.base_edges);
            c.points
                .iter()
                .map(|&extra| {
                    let b = chain.solve_budget(extra as usize, &opts);
                    let gain = (b.coverage - before).max(0.0);
                    (gain, 100.0 * b.coverage_fraction())
                })
                .collect()
        },
        |extra, rs| {
            let gain = mean(&rs.iter().map(|r| r.0).collect::<Vec<_>>());
            let after = mean(&rs.iter().map(|r| r.1).collect::<Vec<_>>());
            format!("buy_devices,{extra},{gain:.2},{after:.2},0")
        },
    )
}

// ---------------------------------------------------------------------------
// xp_campaign: re-route traffic under a stretch budget for a fixed deployment
// ---------------------------------------------------------------------------

/// Per-seed state shared by every budget point of the campaign sweep: the
/// seeded traffic matrix, the fixed `PPM(0.8)` deployment, and the stretch
/// the unconstrained campaign would spend (the budget reference).
struct CampaignSeedSetup {
    ts: TrafficSet,
    installed: Vec<bool>,
    free_stretch: f64,
}

fn campaign_seed_setup(pop: &Pop, seed: u64) -> CampaignSeedSetup {
    let ts = TrafficSpec::default().generate(pop, seed);
    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    let placed = solve_ppm_exact(&inst, 0.8, &ExactOptions::default())
        .expect("PPM(0.8) is feasible on the campaign POP");
    let mut installed = vec![false; pop.graph.edge_count()];
    for &e in &placed.edges {
        installed[e] = true;
    }
    let free = CampaignProblem::new(&pop.graph, &ts, installed.clone(), 3, f64::INFINITY);
    let free_stretch = campaign_greedy(&free).total_stretch;
    CampaignSeedSetup {
        ts,
        installed,
        free_stretch,
    }
}

/// The measurement-campaign sweep (section 7 extension): for each stretch
/// budget (percent of the unconstrained campaign's stretch), the coverage
/// recaptured by the greedy and exact campaign solvers, averaged over
/// seeds. One CSV row per budget point.
pub fn campaign_report(
    engine: &Engine,
    pop: &Pop,
    budget_percents: &[u32],
    seeds: u64,
) -> ScenarioReport {
    let spec = ScenarioSpec::new("xp_campaign", budget_percents.to_vec()).with_seeds(seeds);
    engine.run_report(
        &spec,
        "budget_percent,coverage_before,greedy_after,exact_after,greedy_stretch",
        |c: Case<'_, u32>| {
            let setup = c
                .memo
                .get_or_compute("campaign_seed", c.seed, || campaign_seed_setup(pop, c.seed));
            let budget_pct = *c.point;
            let budget = if budget_pct == 100 {
                f64::INFINITY
            } else {
                setup.free_stretch * budget_pct as f64 / 100.0
            };
            let prob =
                CampaignProblem::new(&pop.graph, &setup.ts, setup.installed.clone(), 3, budget);
            let total = prob.total_volume();
            let before = prob.evaluate(&vec![0; prob.traffics.len()]).0;
            let g = campaign_greedy(&prob);
            let e = campaign_exact(&prob, &MipOptions::default());
            [
                100.0 * before / total,
                100.0 * g.monitored / total,
                100.0 * e.monitored / total,
                g.total_stretch,
            ]
        },
        |budget_pct, rs| {
            let col = |i: usize| mean(&rs.iter().map(|r| r[i]).collect::<Vec<_>>());
            format!(
                "{budget_pct},{:.1},{:.1},{:.1},{:.1}",
                col(0),
                col(1),
                col(2),
                col(3)
            )
        },
    )
}

// ---------------------------------------------------------------------------
// xp_dynamic_traffic: the threshold controller under evolving traffic
// ---------------------------------------------------------------------------

/// Outcome of one controller trajectory (one seed).
#[derive(Debug, Clone)]
pub struct DynamicOutcome {
    /// Devices installed by the initial exact `PPM(0.95)` placement.
    pub devices: usize,
    /// `seed,step,coverage_before,reoptimized,coverage_after,exploit_cost`
    /// rows.
    pub rows: Vec<String>,
    /// Number of steps on which the controller re-optimized rates.
    pub reoptimizations: usize,
    /// Trajectory length.
    pub steps: usize,
}

/// The dynamic-traffic experiment (section 5.4): one controller trajectory
/// per seed, trajectories fanned out across the pool. Returns the merged
/// trace report (seed-major row order) plus the per-seed outcomes for
/// summary printing.
pub fn dynamic_traffic_report(
    engine: &Engine,
    pop: &Pop,
    seeds: u64,
    steps: usize,
) -> (ScenarioReport, Vec<DynamicOutcome>) {
    let spec = ScenarioSpec::new(
        "xp_dynamic_traffic",
        (0..seeds.max(1)).collect::<Vec<u64>>(),
    );
    let ne = pop.graph.edge_count();
    let grouped = engine.run_cases(&spec, |c: Case<'_, u64>| {
        let seed = *c.point;
        let ts = TrafficSpec::default().generate(pop, seed);
        let inst = PpmInstance::from_traffic(&pop.graph, &ts);
        let placed =
            solve_ppm_exact(&inst, 0.95, &ExactOptions::default()).expect("PPM(0.95) feasible");
        let mut installed = vec![false; ne];
        for &e in &placed.edges {
            installed[e] = true;
        }
        let ctrl = ControllerSpec {
            k: 0.9,
            h: 0.0,
            threshold: 0.85,
        };
        let drift = DynamicSpec {
            shift_probability: 0.25,
            ..Default::default()
        };
        let mut process = TrafficProcess::new(ts, drift, seed.wrapping_mul(31) + 1);
        let trace = run_controller(
            &mut process,
            &pop.graph,
            &installed,
            &ctrl,
            vec![1.0; ne],
            vec![0.5; ne],
            steps,
        );
        let rows = trace
            .steps
            .iter()
            .map(|s| {
                format!(
                    "{seed},{},{:.4},{},{:.4},{:.3}",
                    s.step,
                    s.coverage_before,
                    s.reoptimized as u8,
                    s.coverage_after,
                    s.exploit_cost
                )
            })
            .collect();
        DynamicOutcome {
            devices: placed.device_count(),
            rows,
            reoptimizations: trace.reoptimizations,
            steps: trace.steps.len(),
        }
    });

    let outcomes: Vec<DynamicOutcome> = grouped.into_iter().map(|mut g| g.remove(0)).collect();
    let rows = outcomes
        .iter()
        .flat_map(|o| o.rows.iter().cloned())
        .collect();
    let report = ScenarioReport {
        name: spec.name.clone(),
        header: "seed,step,coverage_before,reoptimized,coverage_after,exploit_cost".into(),
        rows,
    };
    (report, outcomes)
}

// ---------------------------------------------------------------------------
// xp_scale_150: the full pipeline on a large POP, stages fanned out
// ---------------------------------------------------------------------------

/// Independent solver stages of the large-POP pipeline. Passive and active
/// stages have no data dependency on each other, so they load-balance
/// across the pool; the probe set Φ and the ILP beacon placement are
/// shared through the memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineStage {
    PassiveGreedy,
    PassiveExact,
    Probes,
    BeaconsThiran,
    BeaconsGreedy,
    BeaconsIlp,
    ProbeMakespan,
}

/// Runs the passive + active solver stages of the scale experiment and
/// returns `metric,value,seconds` rows in stage order. `k` is the passive
/// coverage target; `opts` bounds the exact branch-and-bound.
///
/// Each `seconds` column times that stage's own computation, but stages
/// execute concurrently on shared cores, so per-stage wall-clock is an
/// upper bound on isolated cost and varies with the thread count; only
/// the `metric,value` columns are deterministic (and parity-tested).
pub fn pipeline_stage_report(
    engine: &Engine,
    pop: &Pop,
    ts: &TrafficSet,
    k: f64,
    opts: &ExactOptions,
) -> ScenarioReport {
    use PipelineStage::*;
    let inst = PpmInstance::from_traffic(&pop.graph, ts);
    let (rgraph, _) = pop.router_subgraph();
    let candidates: Vec<netgraph::NodeId> = rgraph.nodes().collect();
    let probes_of = |c: &Case<'_, PipelineStage>| {
        c.memo
            .get_or_compute("probes", 0, || compute_probes(&rgraph, &candidates))
    };
    let ilp_of = |c: &Case<'_, PipelineStage>| {
        let probes = probes_of(c);
        c.memo.get_or_compute("beacons_ilp", 0, || {
            place_beacons_ilp(&rgraph, &probes, &candidates)
        })
    };

    let spec = ScenarioSpec::new(
        "xp_scale_pipeline",
        vec![
            PassiveGreedy,
            PassiveExact,
            Probes,
            BeaconsThiran,
            BeaconsGreedy,
            BeaconsIlp,
            ProbeMakespan,
        ],
    );
    engine.run_report(
        &spec,
        "metric,value,seconds",
        |c: Case<'_, PipelineStage>| match *c.point {
            PassiveGreedy => {
                let (g, t) = timed(|| greedy_static(&inst, k).expect("feasible"));
                format!("passive_greedy_devices,{},{t:.2}", g.device_count())
            }
            PassiveExact => {
                let (s, t) = timed(|| solve_ppm_mecf_bb(&inst, k, opts).expect("feasible"));
                assert!(inst.is_feasible(&s.edges, k));
                format!(
                    "passive_exact_devices,{} (proven {}),{t:.2}",
                    s.device_count(),
                    s.proven_optimal
                )
            }
            Probes => {
                // Time the computation itself (not a memo lookup a racing
                // dependent stage may already have satisfied), then
                // publish the result for the beacon stages.
                let (p, t) = timed(|| compute_probes(&rgraph, &candidates));
                let p = c.memo.get_or_compute("probes", 0, || p);
                format!("probes,{},{t:.2}", p.len())
            }
            BeaconsThiran => {
                let probes = probes_of(&c);
                let (b, t) = timed(|| place_beacons_thiran(&probes, &candidates));
                format!("beacons_thiran,{},{t:.2}", b.len())
            }
            BeaconsGreedy => {
                let probes = probes_of(&c);
                let (b, t) = timed(|| place_beacons_greedy(&probes, &candidates));
                format!("beacons_greedy,{},{t:.2}", b.len())
            }
            BeaconsIlp => {
                let probes = probes_of(&c);
                let (ilp, t) = timed(|| {
                    c.memo.get_or_compute("beacons_ilp", 0, || {
                        place_beacons_ilp(&rgraph, &probes, &candidates)
                    })
                });
                format!(
                    "beacons_ilp,{} (proven {}),{t:.2}",
                    ilp.len(),
                    ilp.proven_optimal
                )
            }
            ProbeMakespan => {
                let probes = probes_of(&c);
                let ilp = ilp_of(&c);
                let (assign, t) = timed(|| assign_probes_ilp(&probes, &ilp));
                format!("probe_makespan,{},{t:.2}", assign.max_load)
            }
        },
        |_, rs| rs[0].clone(),
    )
}

// ---------------------------------------------------------------------------
// xp_topology_families: devices and beacons across the open instance space
// ---------------------------------------------------------------------------

/// One point of the topology-family sweep: a family name crossed with an
/// instance size and a density setting (percent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyPoint {
    /// Family name (`"waxman"`, `"ba"`, `"hier"`).
    pub family: &'static str,
    /// Router count of the generated instances.
    pub routers: usize,
    /// Density knob in percent (maps to `FamilySpec::density`).
    pub density_pct: u32,
}

/// The validated spec for a sweep point: the family's canonical shape with
/// the point's size and density, and `routers/2` traffic endpoints so the
/// traffic matrix scales quadratically but stays solvable.
pub fn family_spec(point: &FamilyPoint) -> FamilySpec {
    let endpoints = (point.routers / 2).max(2);
    let mut spec = FamilySpec::canonical(point.family, point.routers, endpoints)
        .unwrap_or_else(|| panic!("unknown family {:?}", point.family));
    spec.density = point.density_pct as f64 / 100.0;
    spec.validate().expect("sweep points map to valid specs");
    spec
}

/// The exact-solver budget every topology-family consumer shares (the
/// sweep binary, the golden/parity tests, the bench stages): node-bounded
/// and never wall-clock-bounded, so family reports stay deterministic and
/// the regression tests can never drift from the shipped sweep's options.
pub fn family_exact_options() -> ExactOptions {
    ExactOptions {
        max_nodes: 20_000,
        time_limit: None,
        ..Default::default()
    }
}

/// The topology-family sweep: for every `family × size × density` point,
/// seeded random instances with gravity traffic, solved by the passive
/// greedy, the exact MECF branch-and-bound, and the active greedy beacon
/// placement; links, device counts, and beacon counts averaged over seeds.
///
/// Fully deterministic (the exact solver must be bounded by `max_nodes`,
/// not wall-clock — callers pass `time_limit: None` so reports stay
/// byte-identical across runs and thread counts).
pub fn topology_families_report(
    engine: &Engine,
    points: &[FamilyPoint],
    seeds: u64,
    k: f64,
    opts: &ExactOptions,
) -> ScenarioReport {
    assert!(
        opts.time_limit.is_none(),
        "wall-clock bounds would break report determinism"
    );
    let spec = ScenarioSpec::new("xp_topology_families", points.to_vec()).with_seeds(seeds);
    engine.run_report(
        &spec,
        "family,routers,density_pct,links,greedy_devices,exact_devices,beacons_greedy",
        |c: Case<'_, FamilyPoint>| {
            let fam = family_spec(c.point);
            // Waxman draws positions and the spanning tree before any
            // density-dependent sampling, so its density sweeps compare
            // paired instances at a given (size, seed).
            let pop = fam.build(c.seed).expect("validated spec");
            let ts = GravitySpec::default().generate(&pop, c.seed);
            let inst = PpmInstance::from_traffic(&pop.graph, &ts);
            let g = greedy_static(&inst, k).expect("family flows all cross >= 1 link");
            let e = solve_ppm_mecf_bb(&inst, k, opts).expect("feasible");
            assert!(inst.is_feasible(&g.edges, k) && inst.is_feasible(&e.edges, k));
            let (rgraph, _) = pop.router_subgraph();
            let candidates: Vec<netgraph::NodeId> = rgraph.nodes().collect();
            let probes = compute_probes(&rgraph, &candidates);
            let b = place_beacons_greedy(&probes, &candidates);
            debug_assert!(b.covers(&probes));
            [
                pop.graph.edge_count() as f64,
                g.device_count() as f64,
                e.device_count() as f64,
                b.len() as f64,
            ]
        },
        |p, rs| {
            let col = |i: usize| mean(&rs.iter().map(|r| r[i]).collect::<Vec<_>>());
            format!(
                "{},{},{},{:.1},{:.2},{:.2},{:.2}",
                p.family,
                p.routers,
                p.density_pct,
                col(0),
                col(1),
                col(2),
                col(3),
            )
        },
    )
}

// ---------------------------------------------------------------------------
// figs 9–11: the active-monitoring sweep (used by `active_experiment`)
// ---------------------------------------------------------------------------

/// Per-case result of the active sweep: beacon counts for the three
/// strategies plus the probe-set size.
#[derive(Debug, Clone, Copy)]
pub struct ActiveCounts {
    pub thiran: f64,
    pub greedy: f64,
    pub ilp: f64,
    pub probes: f64,
}

/// The figures 9/10/11 sweep: for every candidate-set size `|V_B|` in
/// `sizes`, seeded random router subsets, probe computation, and the
/// three beacon placements, averaged over seeds. One CSV row per `|V_B|`.
/// The binaries sweep `2..=n`; golden and parity tests pass subsets (a
/// case depends only on its own `(size, seed)`, so subset rows are
/// byte-identical to the full sweep's).
pub fn active_report(
    engine: &Engine,
    graph: &Graph,
    sizes: &[usize],
    seeds: u64,
) -> ScenarioReport {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let routers: Vec<netgraph::NodeId> = graph.nodes().collect();
    let spec = ScenarioSpec::new("active_experiment", sizes.to_vec()).with_seeds(seeds);
    engine.run_report(
        &spec,
        "vb_size,thiran,greedy,ilp,probes",
        |c: Case<'_, usize>| {
            let size = *c.point;
            let mut rng = rand::rngs::StdRng::seed_from_u64(c.seed * 10_007 + size as u64);
            let mut pool = routers.clone();
            pool.shuffle(&mut rng);
            let candidates = &pool[..size];
            let probes: ProbeSet = compute_probes(graph, candidates);
            let t = place_beacons_thiran(&probes, candidates);
            let g = place_beacons_greedy(&probes, candidates);
            let i = place_beacons_ilp(graph, &probes, candidates);
            debug_assert!(t.covers(&probes) && g.covers(&probes) && i.covers(&probes));
            ActiveCounts {
                thiran: t.len() as f64,
                greedy: g.len() as f64,
                ilp: i.len() as f64,
                probes: probes.len() as f64,
            }
        },
        |size, rs| {
            let col = |f: fn(&ActiveCounts) -> f64| mean(&rs.iter().map(f).collect::<Vec<_>>());
            format!(
                "{size},{:.2},{:.2},{:.2},{:.1}",
                col(|r| r.thiran),
                col(|r| r.greedy),
                col(|r| r.ilp),
                col(|r| r.probes),
            )
        },
    )
}

// ---------------------------------------------------------------------------
// xp_resilience: Monte-Carlo failure ensembles, deterministic vs. stochastic
// ---------------------------------------------------------------------------

/// One point of the resilience sweep: a topology family crossed with an
/// instance size and an SRLG failure intensity (percent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResiliencePoint {
    /// Family name (`"waxman"`, `"ba"`, `"hier"`).
    pub family: &'static str,
    /// Router count of the generated instances.
    pub routers: usize,
    /// Failure intensity in percent: the per-scenario SRLG group rate is
    /// `rate_pct/100`, the independent per-link rate a quarter of that.
    pub rate_pct: u32,
}

/// The failure model at a sweep point's intensity: a handful of SRLG
/// groups whose joint failure rate dominates, plus a weaker independent
/// per-link fault process. Churn stays off so every scenario difference
/// comes from the intensity knob.
pub fn resilience_failure_spec(rate_pct: u32) -> FailureSpec {
    let rate = rate_pct as f64 / 100.0;
    let spec = FailureSpec {
        groups: 4,
        group_rate: rate,
        link_rate: rate / 4.0,
        churn: 0.0,
    };
    spec.validate()
        .expect("sweep intensities map to valid specs");
    spec
}

/// The resilience campaign sweep: for every `family × size × intensity`
/// point, a seeded ensemble of SRLG failure scenarios with diurnal demand
/// perturbation, scored for two rival placements of equal device count —
///
/// * **det** — the deterministic exact `PPM(0.9)` optimum, solved once
///   per `(family, size, seed)` through the unified
///   [`SolveRequest`]/[`SolveOutcome`] API, blind to failures; and
/// * **sto** — [`greedy_expected`], which sees the sampled ensemble and
///   maximizes *expected* coverage with the same device budget.
///
/// Each seed walks its whole point list through **one warm
/// [`DeltaInstance`] chain** per `(family, size)` group (points are
/// ordered intensity-innermost): both placements are scored by
/// [`score_ensemble`], which hands the chain back in its entry state, so
/// the deterministic base placement and the chain survive to the next
/// intensity. Every column is deterministic — the CSV is byte-identical
/// at any `POPMON_THREADS`.
pub fn resilience_report(
    engine: &Engine,
    points: &[ResiliencePoint],
    seeds: u64,
    scenarios_per_point: usize,
) -> ScenarioReport {
    // Per-(family, size) state carried across the intensity grid: the
    // instance, its warm chain, and the deterministic optimum.
    struct GroupState {
        key: (&'static str, usize),
        pop: Pop,
        inst: PpmInstance,
        chain: DeltaInstance,
        det: Vec<usize>,
    }
    let spec = ScenarioSpec::new("xp_resilience", points.to_vec()).with_seeds(seeds);
    engine.run_chain_report(
        &spec,
        "family,routers,rate_pct,devices,det_expected,det_p99,det_worst,sto_expected,sto_p99,sto_worst",
        |c: ChainCase<'_, ResiliencePoint>| {
            let req = SolveRequest::ppm(0.9)
                .exact()
                .with_exact_options(&family_exact_options());
            let dspec = DynamicSpec::default();
            let mut state: Option<GroupState> = None;
            c.points
                .iter()
                .map(|p| {
                    let key = (p.family, p.routers);
                    if state.as_ref().map(|s| s.key) != Some(key) {
                        let fam = family_spec(&FamilyPoint {
                            family: p.family,
                            routers: p.routers,
                            density_pct: 70,
                        });
                        let pop = fam.build(c.seed).expect("validated spec");
                        let ts = GravitySpec::default().generate(&pop, c.seed);
                        let inst = PpmInstance::from_traffic(&pop.graph, &ts);
                        let mut chain = DeltaInstance::from_instance(&inst);
                        let det = match chain.solve(&req).expect("request validated above") {
                            SolveOutcome::Ppm(sol) => sol.edges,
                            _ => unreachable!("family flows all cross >= 1 link"),
                        };
                        state = Some(GroupState {
                            key,
                            pop,
                            inst,
                            chain,
                            det,
                        });
                    }
                    let s = state.as_mut().expect("state set above");
                    let model =
                        FailureModel::try_new(&s.pop, &resilience_failure_spec(p.rate_pct))
                            .expect("valid spec");
                    let sample_seed = c.seed.wrapping_mul(1009).wrapping_add(p.rate_pct as u64);
                    let ensemble = model
                        .sample_scenarios(
                            s.inst.traffics.len(),
                            Some(&dspec),
                            scenarios_per_point,
                            sample_seed,
                        )
                        .expect("valid sampling request");
                    let det_score =
                        score_ensemble(&mut s.chain, &s.det, &ensemble).expect("validated inputs");
                    let sto = greedy_expected(&s.inst, &[], &ensemble, s.det.len())
                        .expect("validated inputs");
                    let sto_score =
                        score_ensemble(&mut s.chain, &sto, &ensemble).expect("validated inputs");
                    [
                        s.det.len() as f64,
                        det_score.expected_coverage,
                        det_score.p99_tail,
                        det_score.worst_case,
                        sto_score.expected_coverage,
                        sto_score.p99_tail,
                        sto_score.worst_case,
                    ]
                })
                .collect()
        },
        |p, rs| {
            // `+ 0.0` maps the scorer's exact `-0.0` (the empty covered
            // sum) to `+0.0` so the CSV never renders a negative zero.
            let col = |i: usize| mean(&rs.iter().map(|r| r[i]).collect::<Vec<_>>()) + 0.0;
            format!(
                "{},{},{},{:.2},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                p.family,
                p.routers,
                p.rate_pct,
                col(0),
                col(1),
                col(2),
                col(3),
                col(4),
                col(5),
                col(6),
            )
        },
    )
}
