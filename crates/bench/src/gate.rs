//! The perf-trajectory gate: compares a freshly measured
//! `BENCH_popmon.json` against the committed one and fails on real
//! regressions, so the measured-speed claims of past PRs stay true.
//!
//! The comparison is on `cases_per_s` per stage — the rate survives
//! iteration-count changes — and only over [`STABLE_STAGES`]: stages
//! whose smoke wall-clock is long enough that shared-runner noise stays
//! well under the failure threshold. Sub-millisecond substrate stages and
//! the `*_par4` scaling stage (which depends on the runner's core count)
//! are tracked in the JSON but not gated.

/// Stages compared by the gate: deterministic solver-bound stages with
/// tens of milliseconds (or more) of smoke wall-clock each.
pub const STABLE_STAGES: &[&str] = &[
    "simplex_lp2_10router",
    "simplex_lp2_15router",
    "simplex_lp2_20router",
    "simplex_lp2_25router",
    "simplex_illcond_25router",
    "mecf_bb_15router_k80",
    "exact_scale_50",
    "degraded_solve_scale_100",
    "fig7_sweep",
    "fig8_point_k75",
    "xp_incremental_sweep",
    "family_placement_30",
    "popmond_whatif_chain",
    "resilience_ensemble_1k",
];

/// One regression found by [`compare_reports`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Stage name.
    pub stage: String,
    /// Committed (baseline) cases/s.
    pub committed: f64,
    /// Freshly measured cases/s.
    pub fresh: f64,
    /// Regression in percent (positive = slower).
    pub loss_pct: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.3} -> {:.3} cases/s ({:.1}% regression)",
            self.stage, self.committed, self.fresh, self.loss_pct
        )
    }
}

/// Extracts `(name, cases_per_s)` for every entry of the `"stages"` array
/// of a `popmon-bench/1` report. A tolerant scanner, not a JSON parser —
/// the report's emitter is in-tree (`perf::BenchReport::to_json`) and
/// writes one stage object per line; anything that does not look like
/// that is a descriptive `Err`, never a wrong answer.
pub fn parse_stage_rates(json: &str) -> Result<Vec<(String, f64)>, String> {
    if !json.contains("\"schema\": \"popmon-bench/1\"") {
        return Err("not a popmon-bench/1 report (missing schema marker)".into());
    }
    let stages_at = json
        .find("\"stages\": [")
        .ok_or_else(|| "no \"stages\" array in report".to_string())?;
    let body = &json[stages_at..];
    let end = body
        .find(']')
        .ok_or_else(|| "unterminated \"stages\" array".to_string())?;
    let body = &body[..end];

    let mut out = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if !line.starts_with('{') {
            continue;
        }
        let name =
            field_str(line, "name").ok_or_else(|| format!("stage entry without a name: {line}"))?;
        let rate = field_num(line, "cases_per_s")
            .ok_or_else(|| format!("stage {name:?} without cases_per_s"))?;
        if !rate.is_finite() || rate < 0.0 {
            return Err(format!("stage {name:?} has invalid cases_per_s {rate}"));
        }
        out.push((name, rate));
    }
    if out.is_empty() {
        return Err("report has an empty \"stages\" array".into());
    }
    Ok(out)
}

fn field_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    Some(rest[..rest.find('"')?].to_string())
}

fn field_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Compares fresh rates against committed ones over the stable stages
/// present in **both** reports (a stage added or dropped by this very PR
/// cannot regress). Returns the regressions beyond `threshold_pct`.
pub fn compare_reports(
    committed: &[(String, f64)],
    fresh: &[(String, f64)],
    threshold_pct: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for stage in STABLE_STAGES {
        let old = committed.iter().find(|(n, _)| n == stage).map(|&(_, r)| r);
        let new = fresh.iter().find(|(n, _)| n == stage).map(|&(_, r)| r);
        let (Some(old), Some(new)) = (old, new) else {
            continue;
        };
        if old <= 0.0 {
            continue; // a zero-rate baseline cannot regress meaningfully
        }
        let loss_pct = 100.0 * (old - new) / old;
        if loss_pct > threshold_pct {
            regressions.push(Regression {
                stage: stage.to_string(),
                committed: old,
                fresh: new,
                loss_pct,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{BenchReport, StageResult};

    fn report(rates: &[(&'static str, f64)]) -> String {
        BenchReport {
            mode: "smoke",
            threads: 1,
            generated_unix: 1_753_000_000,
            stages: rates
                .iter()
                .map(|&(name, cps)| StageResult {
                    name,
                    wall_s: if cps > 0.0 { 10.0 / cps } else { 0.0 },
                    iters: 1,
                    cases: 10,
                    note: "cases",
                })
                .collect(),
        }
        .to_json()
    }

    #[test]
    fn parses_real_reports() {
        let json = report(&[("fig7_sweep", 36.0), ("fig8_point_k75", 2.7)]);
        let rates = parse_stage_rates(&json).unwrap();
        assert_eq!(rates.len(), 2);
        assert_eq!(rates[0].0, "fig7_sweep");
        assert!((rates[0].1 - 36.0).abs() < 1e-3);
        assert!((rates[1].1 - 2.7).abs() < 1e-3);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_stage_rates("{}").is_err());
        assert!(parse_stage_rates("\"schema\": \"popmon-bench/1\"").is_err());
        let no_stages = report(&[]).replace("\"stages\": [", "\"stagex\": [");
        assert!(parse_stage_rates(&no_stages).is_err());
    }

    #[test]
    fn flags_only_regressions_beyond_threshold() {
        let committed = parse_stage_rates(&report(&[
            ("fig7_sweep", 40.0),
            ("fig8_point_k75", 4.0),
            ("xp_incremental_sweep", 70.0),
        ]))
        .unwrap();
        // fig7 within threshold (-20%), fig8 beyond (-50%), incremental improved.
        let fresh = parse_stage_rates(&report(&[
            ("fig7_sweep", 32.0),
            ("fig8_point_k75", 2.0),
            ("xp_incremental_sweep", 90.0),
        ]))
        .unwrap();
        let r = compare_reports(&committed, &fresh, 25.0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].stage, "fig8_point_k75");
        assert!((r[0].loss_pct - 50.0).abs() < 1e-9);
        assert!(r[0].to_string().contains("50.0% regression"));
    }

    #[test]
    fn unstable_and_unshared_stages_are_ignored() {
        let committed = parse_stage_rates(&report(&[
            ("fig7_sweep_par4", 100.0), // not a stable stage
            ("fig7_sweep", 40.0),
            ("mecf_bb_15router_k80", 1.2), // absent from fresh
        ]))
        .unwrap();
        let fresh =
            parse_stage_rates(&report(&[("fig7_sweep_par4", 1.0), ("fig7_sweep", 39.0)])).unwrap();
        assert!(compare_reports(&committed, &fresh, 25.0).is_empty());
    }
}
