//! Figure 9: beacon placement on the 15-router POP.
//!
//! X-axis: number of selectable beacons `|V_B|` (random router subsets);
//! Y-axis: beacons placed by the Thiran baseline \[15\], the improved
//! greedy, and the ILP. Averaged over seeds (paper: 20; default 20 — this
//! experiment is cheap).
//!
//! Expected shape (paper): ILP ≤ greedy ≤ Thiran, the gap growing with
//! `|V_B|`; at `|V_B| = 15` the ILP halves the Thiran count, and the ILP
//! curve decreases past a threshold (more choice → better placement).

use popmon_bench::active_experiment;

fn main() {
    let args = popmon_bench::parse_args(20);
    active_experiment(popgen::PopSpec::paper_15(), &args);
}
