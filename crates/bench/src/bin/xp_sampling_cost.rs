//! Section 5 extension experiment: `PPME(h, k)` setup + exploitation cost
//! as the global target `k` sweeps, on the 10-router POP with multi-routed
//! traffics (2 routes per pair).
//!
//! The paper describes Linear Program 3 but does not plot it; this
//! experiment records the cost structure its MILP produces on a compact
//! POP (the fixed-charge MILP is solved with a 2% gap tolerance — see
//! EXPERIMENTS.md): the setup cost
//! is a staircase (devices are discrete) while the exploitation cost grows
//! smoothly with `k`, and a per-traffic floor `h` raises the baseline.
//!
//! The (h, k) grid runs through the scenario engine (`POPMON_THREADS`
//! workers, all cores by default) with the per-seed multi-routed traffic
//! memoized across all grid points; the CSV is byte-identical to a
//! serial run.

use placement::sampling::PpmeOptions;
use popgen::PopSpec;

fn main() {
    let args = popmon_bench::parse_args(3);
    let pop = PopSpec::small().build();
    let mut points: Vec<(u32, u32)> = Vec::new();
    for &h_pct in &[0u32, 20] {
        for k_pct in [40, 50, 60, 70, 80, 90, 95] {
            if h_pct <= k_pct {
                points.push((h_pct, k_pct));
            }
        }
    }
    let opts = PpmeOptions {
        rel_gap: 0.02,
        time_limit: Some(std::time::Duration::from_secs(60)),
        ..Default::default()
    };
    let r = popmon_bench::scenarios::sampling_cost_report(
        &engine::Engine::from_env(),
        &pop,
        &points,
        args.seeds,
        &opts,
    );
    popmon_bench::emit_reports(&[&r], args.out.as_deref());
}
