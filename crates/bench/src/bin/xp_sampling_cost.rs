//! Section 5 extension experiment: `PPME(h, k)` setup + exploitation cost
//! as the global target `k` sweeps, on the 10-router POP with multi-routed
//! traffics (2 routes per pair).
//!
//! The paper describes Linear Program 3 but does not plot it; this
//! experiment records the cost structure its MILP produces on a compact
//! POP (the fixed-charge MILP is solved with a 2% gap tolerance — see
//! EXPERIMENTS.md): the setup cost
//! is a staircase (devices are discrete) while the exploitation cost grows
//! smoothly with `k`, and a per-traffic floor `h` raises the baseline.

use placement::sampling::{solve_ppme, PpmeOptions, SamplingProblem};
use popgen::{PopSpec, TrafficSpec};

fn main() {
    let args = popmon_bench::parse_args(3);
    let pop = PopSpec::small().build();

    println!("k_percent,h_percent,devices,setup_cost,exploit_cost,total_cost");
    for &h_pct in &[0u32, 20] {
        for k_pct in [40, 50, 60, 70, 80, 90, 95] {
            if h_pct > k_pct {
                continue;
            }
            let (mut devices, mut setup, mut exploit, mut total) =
                (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            for seed in 0..args.seeds {
                let multi = TrafficSpec::default().generate_multi(&pop, seed, 2);
                let (ci, ce) = SamplingProblem::uniform_costs(pop.graph.edge_count());
                let prob = SamplingProblem::from_multi(
                    &pop.graph,
                    &multi,
                    h_pct as f64 / 100.0,
                    k_pct as f64 / 100.0,
                    ci,
                    ce,
                );
                let opts = PpmeOptions {
                    rel_gap: 0.02,
                    time_limit: Some(std::time::Duration::from_secs(60)),
                    ..Default::default()
                };
                let s = solve_ppme(&prob, &opts).expect("feasible");
                prob.check_solution(&s.installed, &s.rates, 1e-5).expect("valid solution");
                devices.push(s.device_count() as f64);
                setup.push(s.setup_cost);
                exploit.push(s.exploit_cost);
                total.push(s.total_cost());
            }
            println!(
                "{k_pct},{h_pct},{:.2},{:.2},{:.2},{:.2}",
                popmon_bench::mean(&devices),
                popmon_bench::mean(&setup),
                popmon_bench::mean(&exploit),
                popmon_bench::mean(&total),
            );
        }
    }
}
