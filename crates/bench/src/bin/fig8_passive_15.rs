//! Figure 8: passive device placement on the 15-router POP
//! (71 links, 1980 traffics).
//!
//! X-axis: percentage of monitored traffic (75–100%); Y-axis: number of
//! devices, for the decreasing-load greedy and the exact solver. At this
//! scale the exact solver is the MECF branch-and-bound (min-cost-flow
//! bounds — the "branching algorithm" of the paper's Section 4.3); the
//! generic LP 2 MIP would sit on ~1000-row simplex solves per node. Each
//! solve gets a two-minute budget; the `proven_fraction` column reports how
//! many seeded runs closed the search (unproven rows are upper bounds from
//! the best incumbent). The paper averages 20 seeds; default here is 3 —
//! pass `--seeds 20` to match.
//!
//! Expected shape (paper): three regimes — linear 75–85%, steeper 85–95%,
//! then a sharp jump at 100%; devices range from ~16 to ~41 and the
//! greedy/exact gap is smaller than on the 10-router POP.

use placement::instance::PpmInstance;
use placement::passive::{greedy_static, solve_ppm_mecf_bb, ExactOptions};
use popgen::{PopSpec, TrafficSpec};

fn main() {
    let args = popmon_bench::parse_args(3);
    let pop = PopSpec::paper_15().build();

    println!("k_percent,greedy_devices,exact_devices,proven_fraction,exact_time_s");
    for k_pct in [75, 80, 85, 90, 95, 100] {
        let k = k_pct as f64 / 100.0;
        let mut greedy_counts = Vec::new();
        let mut exact_counts = Vec::new();
        let mut times = Vec::new();
        let mut proven = 0usize;
        for seed in 0..args.seeds {
            let ts = TrafficSpec::default().generate(&pop, seed);
            let inst = PpmInstance::from_traffic(&pop.graph, &ts);
            let g = greedy_static(&inst, k).expect("all traffic coverable on this POP");
            greedy_counts.push(g.device_count() as f64);
            let opts = ExactOptions {
                max_nodes: 50_000,
                time_limit: Some(std::time::Duration::from_secs(120)),
                ..Default::default()
            };
            let (s, secs) =
                popmon_bench::timed(|| solve_ppm_mecf_bb(&inst, k, &opts).expect("feasible"));
            assert!(inst.is_feasible(&s.edges, k));
            exact_counts.push(s.device_count() as f64);
            times.push(secs);
            proven += s.proven_optimal as usize;
        }
        println!(
            "{k_pct},{:.2},{:.2},{:.2},{:.1}",
            popmon_bench::mean(&greedy_counts),
            popmon_bench::mean(&exact_counts),
            proven as f64 / args.seeds.max(1) as f64,
            popmon_bench::mean(&times),
        );
    }
}
