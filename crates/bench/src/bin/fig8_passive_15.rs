//! Figure 8: passive device placement on the 15-router POP
//! (71 links, 1980 traffics).
//!
//! X-axis: percentage of monitored traffic (75–100%); Y-axis: number of
//! devices, for the decreasing-load greedy and the exact solver. At this
//! scale the exact solver is the MECF branch-and-bound (min-cost-flow
//! bounds — the "branching algorithm" of the paper's Section 4.3); the
//! generic LP 2 MIP would sit on ~1000-row simplex solves per node. Each
//! solve gets a two-minute budget; the `proven_fraction` column reports how
//! many seeded runs closed the search (unproven rows are upper bounds from
//! the best incumbent). The paper averages 20 seeds; default here is 3 —
//! pass `--seeds 20` to match.
//!
//! Expected shape (paper): three regimes — linear 75–85%, steeper 85–95%,
//! then a sharp jump at 100%; devices range from ~16 to ~41 and the
//! greedy/exact gap is smaller than on the 10-router POP.
//!
//! The sweep runs through the scenario engine (`POPMON_THREADS` workers,
//! all cores by default); every column except the trailing `exact_time_s`
//! wall-clock is byte-identical to a serial run.

use placement::passive::ExactOptions;
use popgen::PopSpec;

fn main() {
    let args = popmon_bench::parse_args(3);
    let pop = PopSpec::paper_15().build();
    let opts = ExactOptions {
        max_nodes: 50_000,
        time_limit: Some(std::time::Duration::from_secs(120)),
        ..Default::default()
    };
    let r = popmon_bench::scenarios::fig8_report(
        &engine::Engine::from_env(),
        &pop,
        &[75, 80, 85, 90, 95, 100],
        args.seeds,
        &opts,
    );
    popmon_bench::emit_reports(&[&r], args.out.as_deref());
}
