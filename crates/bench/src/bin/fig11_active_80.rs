//! Figure 11: beacon placement on the 80-router POP.
//!
//! Same protocol as Figure 9; the paper reports a 33% reduction (ILP vs
//! Thiran \[15\]), with the greedy about 7 beacons above the ILP at
//! `|V_B| = 80`. Default 5 seeds (80 sizes × 3 strategies adds up);
//! pass `--seeds 20` to match the paper.

fn main() {
    let args = popmon_bench::parse_args(5);
    popmon_bench::active_experiment(popgen::PopSpec::paper_80(), &args);
}
