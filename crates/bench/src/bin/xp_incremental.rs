//! Sections 1 / 4.3 experiment: incremental deployment and the expected
//! gain of buying devices.
//!
//! Protocol: place an optimal deployment for `k = 0.8` on the 10-router
//! POP, then (a) compute how many *additional* devices each higher target
//! needs when the installed devices cannot move, versus a from-scratch
//! optimal deployment; (b) report the coverage gain of buying 1..5 extra
//! devices placed optimally on top of the base.

use placement::instance::PpmInstance;
use placement::passive::{
    expected_gain, solve_budget, solve_incremental, solve_ppm_exact, ExactOptions,
};
use popgen::{PopSpec, TrafficSpec};

fn main() {
    let args = popmon_bench::parse_args(5);
    let pop = PopSpec::paper_10().build();
    let opts = ExactOptions::default();

    println!("section,x,incremental_total,scratch_total,penalty");
    for k_pct in [85, 90, 95, 100] {
        let k = k_pct as f64 / 100.0;
        let (mut inc_counts, mut scratch_counts) = (Vec::new(), Vec::new());
        for seed in 0..args.seeds {
            let ts = TrafficSpec::default().generate(&pop, seed);
            let inst = PpmInstance::from_traffic(&pop.graph, &ts);
            let base = solve_ppm_exact(&inst, 0.8, &opts).expect("feasible");
            let inc = solve_incremental(&inst, k, &base.edges, &opts).expect("feasible");
            let scratch = solve_ppm_exact(&inst, k, &opts).expect("feasible");
            assert!(inst.is_feasible(&inc.edges, k));
            inc_counts.push(inc.device_count() as f64);
            scratch_counts.push(scratch.device_count() as f64);
        }
        let (i, s) = (popmon_bench::mean(&inc_counts), popmon_bench::mean(&scratch_counts));
        println!("upgrade_to_k,{k_pct},{i:.2},{s:.2},{:.2}", i - s);
    }

    println!("section,x,coverage_gain,coverage_after_percent,unused");
    for extra in 1..=5usize {
        let (mut gains, mut after) = (Vec::new(), Vec::new());
        for seed in 0..args.seeds {
            let ts = TrafficSpec::default().generate(&pop, seed);
            let inst = PpmInstance::from_traffic(&pop.graph, &ts);
            let base = solve_ppm_exact(&inst, 0.8, &opts).expect("feasible");
            gains.push(expected_gain(&inst, &base.edges, extra, &opts));
            let b = solve_budget(&inst, extra, &base.edges, &opts);
            after.push(100.0 * b.coverage_fraction());
        }
        println!(
            "buy_devices,{extra},{:.2},{:.2},0",
            popmon_bench::mean(&gains),
            popmon_bench::mean(&after),
        );
    }
}
