//! Sections 1 / 4.3 experiment: incremental deployment and the expected
//! gain of buying devices.
//!
//! Protocol: place an optimal deployment for `k = 0.8` on the 10-router
//! POP, then (a) compute how many *additional* devices each higher target
//! needs when the installed devices cannot move, versus a from-scratch
//! optimal deployment; (b) report the coverage gain of buying 1..5 extra
//! devices placed optimally on top of the base.
//!
//! Both sections run through the scenario engine (`POPMON_THREADS`
//! workers, all cores by default); the per-seed `PPM(0.8)` base solve is
//! memoized across every point of a section (the serial loops re-solved
//! it per point). The CSV is byte-identical to a serial run.

use popgen::PopSpec;

fn main() {
    let args = popmon_bench::parse_args(5);
    let pop = PopSpec::paper_10().build();
    let engine = engine::Engine::from_env();
    let up =
        popmon_bench::scenarios::incremental_report(&engine, &pop, &[85, 90, 95, 100], args.seeds);
    let gain =
        popmon_bench::scenarios::budget_gain_report(&engine, &pop, &[1, 2, 3, 4, 5], args.seeds);
    popmon_bench::emit_reports(&[&up, &gain], args.out.as_deref());
}
