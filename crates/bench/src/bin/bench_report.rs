//! `bench_report` — runs the fixed hot-path grid and emits
//! `BENCH_popmon.json` (schema in DESIGN.md).
//!
//! Usage: `bench_report [--smoke] [--out PATH]`
//!
//! * `--smoke` — the CI-sized grid (fewer iterations, bounded solves);
//!   without it every stage runs more iterations for tighter means.
//! * `--out PATH` — where to write the JSON (default `BENCH_popmon.json`
//!   in the current directory).
//!
//! Stage names are stable across PRs: the JSON trajectory joins on them,
//! and `perf::BASELINE` freezes the pre-PR-2 numbers so the report can
//! prove (or disprove) claimed speedups. Engine-backed sweep stages run
//! **serially** so wall-clock numbers measure the algorithms, not the
//! machine's core count; a separate `*_par4` stage measures scaling.

use std::time::{SystemTime, UNIX_EPOCH};

use engine::Engine;
use netgraph::NodeId;
use placement::delta::DeltaInstance;
use placement::instance::PpmInstance;
use placement::passive::{greedy_static, solve_ppm_mecf_bb, ExactOptions};
use placement::resilience::{score_ensemble, score_ensemble_cold};
use popgen::{
    DynamicSpec, FailureModel, FailureSpec, FamilySpec, GravitySpec, PopSpec, TrafficSpec,
};
use popmon_bench::perf::{run_stage, BenchReport, StageResult};
use popmon_bench::scenarios::FamilyPoint;

fn usage(exit_code: i32) -> ! {
    eprintln!("usage: bench_report [--smoke] [--out PATH]");
    std::process::exit(exit_code);
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_popmon.json");
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => out = p.clone(),
                    None => {
                        eprintln!("error: --out needs a path");
                        usage(2);
                    }
                }
            }
            "--help" | "-h" => usage(0),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage(2);
            }
        }
        i += 1;
    }

    let iters: u64 = if smoke { 2 } else { 5 };
    // Sub-millisecond substrate stages get more iterations so the rate
    // (cases/s) is stable; speedups are computed on rates, so iteration
    // counts are free to differ from the baseline capture.
    let fast_iters: u64 = if smoke { 20 } else { 50 };
    let mut stages: Vec<StageResult> = Vec::new();
    let push = |stages: &mut Vec<StageResult>, s: StageResult| {
        println!(
            "stage {:<28} {:>10.3} s  {:>12.1} cases/s  ({})",
            s.name,
            s.wall_s,
            s.cases_per_s(),
            s.note
        );
        stages.push(s);
    };

    // --- substrate: Dijkstra trees on the 150-router preset -------------
    let pop150 = PopSpec::large_150().build();
    let (g150, _) = pop150.router_subgraph();
    let sources: Vec<NodeId> = g150.nodes().take(if smoke { 16 } else { 64 }).collect();
    push(
        &mut stages,
        run_stage(
            "dijkstra_trees_150",
            "cases = shortest-path trees",
            fast_iters,
            || {
                let mut reached = 0u64;
                for &s in &sources {
                    let t = netgraph::dijkstra::shortest_path_tree(&g150, s).expect("connected");
                    reached += g150.nodes().filter(|&v| t.distance(v).is_some()).count() as u64;
                }
                std::hint::black_box(reached);
                sources.len() as u64
            },
        ),
    );

    // --- substrate: Yen k-shortest-paths on the 80-router preset --------
    let pop80 = PopSpec::paper_80().build();
    let (g80, _) = pop80.router_subgraph();
    let routers80: Vec<NodeId> = g80.nodes().collect();
    let pairs: Vec<(NodeId, NodeId)> = (0..if smoke { 8 } else { 24 })
        .map(|i| {
            (
                routers80[(i * 7 + 1) % routers80.len()],
                routers80[(i * 13 + 5) % routers80.len()],
            )
        })
        .filter(|(a, b)| a != b)
        .collect();
    push(
        &mut stages,
        run_stage(
            "ksp4_pairs_80",
            "cases = (source,target) pairs, k = 4",
            fast_iters,
            || {
                let mut total_paths = 0u64;
                for &(s, t) in &pairs {
                    total_paths += netgraph::ksp::k_shortest_paths(&g80, s, t, 4)
                        .expect("valid pair")
                        .len() as u64;
                }
                std::hint::black_box(total_paths);
                pairs.len() as u64
            },
        ),
    );

    // --- simplex: the LP2 relaxation of the 10-router instance ----------
    let pop10 = PopSpec::paper_10().build();
    let ts10 = TrafficSpec::default().generate(&pop10, 3);
    let inst10 = PpmInstance::from_traffic(&pop10.graph, &ts10);
    let merged10 = inst10.merged();
    let (lp2, _) = placement::passive::build_lp2(&merged10, 0.95);
    push(
        &mut stages,
        run_stage(
            "simplex_lp2_10router",
            "cases = LP solves",
            iters * 5,
            || {
                let s = lp2.solve_lp().expect("LP2 relaxation solves");
                std::hint::black_box((s.objective, s.iterations));
                1
            },
        ),
    );

    // --- simplex at fig8 scale: LP2 on the merged 15-router instance ----
    let pop15 = PopSpec::paper_15().build();
    let ts15 = TrafficSpec::default().generate(&pop15, 1);
    let inst15 = PpmInstance::from_traffic(&pop15.graph, &ts15);
    let merged15 = inst15.merged();
    let (lp2_15, _) = placement::passive::build_lp2(&merged15, 0.9);
    push(
        &mut stages,
        run_stage("simplex_lp2_15router", "cases = LP solves", 1, || {
            let s = lp2_15.solve_lp().expect("LP2 relaxation solves");
            std::hint::black_box((s.objective, s.iterations));
            1
        }),
    );

    // --- simplex past the paper's scale: LP2 at 20 and 25 routers -------
    // The ROADMAP's 20-25+ router ladder; these stages exist to prove the
    // sparse-LU simplex core scales past the Figure 8 instance.
    let pop20 = PopSpec::scale_20().build();
    let ts20 = TrafficSpec::default().generate(&pop20, 1);
    let inst20 = PpmInstance::from_traffic(&pop20.graph, &ts20);
    let merged20 = inst20.merged();
    let (lp2_20, _) = placement::passive::build_lp2(&merged20, 0.9);
    push(
        &mut stages,
        run_stage("simplex_lp2_20router", "cases = LP solves", 1, || {
            let s = lp2_20.solve_lp().expect("LP2 relaxation solves");
            std::hint::black_box((s.objective, s.iterations));
            1
        }),
    );

    let pop25 = PopSpec::scale_25().build();
    let ts25 = TrafficSpec::default().generate(&pop25, 1);
    let inst25 = PpmInstance::from_traffic(&pop25.graph, &ts25);
    let merged25 = inst25.merged();
    let (lp2_25, _) = placement::passive::build_lp2(&merged25, 0.9);
    push(
        &mut stages,
        run_stage("simplex_lp2_25router", "cases = LP solves", 1, || {
            let s = lp2_25.solve_lp().expect("LP2 relaxation solves");
            std::hint::black_box((s.objective, s.iterations));
            1
        }),
    );

    // --- simplex robustness: the 25-router LP2 under a hostile exact
    // power-of-two rescaling (rows and columns cycling through 2^±20).
    // The optimum is invariant under the rescaling, so this prices the
    // full numerical-robustness pipeline — equilibration, scale-relative
    // tolerances, Harris ratio test, residual certification — on data it
    // exists for, and pins its overhead in the perf trajectory.
    let illpow_rows: Vec<i32> = (0..lp2_25.constr_count())
        .map(|r| [0, 20, -20, 8, -14][r % 5])
        .collect();
    let illpow_cols: Vec<i32> = (0..lp2_25.var_count())
        .map(|c| [12, -6, 0, -20, 17][c % 5])
        .collect();
    let lp2_25_ill = lp2_25.equivalently_rescaled(&illpow_rows, &illpow_cols);
    let lp2_25_obj = lp2_25.solve_lp().expect("LP2 relaxation solves").objective;
    push(
        &mut stages,
        run_stage("simplex_illcond_25router", "cases = LP solves", 1, || {
            let s = lp2_25_ill.solve_lp().expect("rescaled LP2 solves");
            assert!(
                (s.objective - lp2_25_obj).abs() <= 1e-6 * (1.0 + lp2_25_obj.abs()),
                "rescaled LP2 objective {} drifted from {}",
                s.objective,
                lp2_25_obj
            );
            std::hint::black_box(s.iterations);
            1
        }),
    );

    // --- greedy set-cover on the 1980-traffic instance ------------------
    push(
        &mut stages,
        run_stage(
            "greedy_static_15router",
            "cases = greedy solves (1980 traffics)",
            fast_iters,
            || {
                let g = greedy_static(&inst15, 0.9).expect("coverable");
                std::hint::black_box(g.device_count());
                1
            },
        ),
    );

    // --- MECF branch-and-bound on the fig8 instance ---------------------
    push(
        &mut stages,
        run_stage("mecf_bb_15router_k80", "cases = exact solves", 1, || {
            let opts = ExactOptions {
                max_nodes: 100_000,
                time_limit: Some(std::time::Duration::from_secs(60)),
                ..Default::default()
            };
            let s = solve_ppm_mecf_bb(&inst15, 0.8, &opts).expect("feasible");
            std::hint::black_box(s.device_count());
            1
        }),
    );

    // --- scaling ladder: exact PPM at the 50-router rung ----------------
    // The gated stage behind the ROADMAP's past-the-paper scaling claim:
    // generator + gravity-free traffic + the flow-bound branch-and-bound
    // at k = 0.9 on the 50-router preset (4290 traffics pre-merge).
    let pop50 = PopSpec::scale_50().build();
    let ts50 = TrafficSpec::default().generate(&pop50, 1);
    let inst50 = PpmInstance::from_traffic(&pop50.graph, &ts50);
    push(
        &mut stages,
        run_stage(
            "exact_scale_50",
            "cases = exact solves (25k nodes)",
            1,
            || {
                let opts = ExactOptions {
                    max_nodes: 25_000,
                    time_limit: Some(std::time::Duration::from_secs(120)),
                    ..Default::default()
                };
                let s = solve_ppm_mecf_bb(&inst50, 0.9, &opts).expect("feasible");
                std::hint::black_box(s.device_count());
                1
            },
        ),
    );

    // The 100-router rung: tracked in the trajectory but NOT gated (the
    // node count this instance explores varies enough across incumbent
    // luck that shared-runner noise would trip a rate gate).
    let pop100 = PopSpec::scale_100().build();
    let ts100 = TrafficSpec::default().generate(&pop100, 1);
    let inst100 = PpmInstance::from_traffic(&pop100.graph, &ts100);
    push(
        &mut stages,
        run_stage(
            "exact_scale_100",
            "cases = exact solves (15k nodes)",
            1,
            || {
                let opts = ExactOptions {
                    max_nodes: 15_000,
                    time_limit: Some(std::time::Duration::from_secs(180)),
                    ..Default::default()
                };
                let s = solve_ppm_mecf_bb(&inst100, 0.8, &opts).expect("feasible");
                std::hint::black_box(s.device_count());
                1
            },
        ),
    );

    // --- anytime degradation: time-to-first-answer on the 100-router
    // rung under a starved work budget. The same instance as
    // `exact_scale_100`, but the solve carries a fixed deterministic
    // budget far below the full search's cost, so the stage prices what
    // a popmond client actually waits for when its budget trips: the
    // root relaxation plus the first incumbent (or the greedy fallback),
    // never the full tree. Work units make the trip point — and hence
    // the rate — reproducible, which is what lets this stage be gated
    // while `exact_scale_100` (incumbent-luck node counts) is not.
    push(
        &mut stages,
        run_stage(
            "degraded_solve_scale_100",
            "cases = degraded anytime solves (100-router, 2k-unit budget)",
            iters,
            || {
                let req = placement::solve::SolveRequest::ppm(0.8)
                    .exact()
                    .with_work_budget(2_000);
                let out = placement::solve::solve_instance(&inst100, &req).expect("valid request");
                let placement::solve::SolveOutcome::Degraded {
                    partial,
                    work_spent,
                    ..
                } = &out
                else {
                    panic!("a 2k-unit budget must trip on the 100-router instance");
                };
                assert!(
                    matches!(**partial, placement::solve::SolveOutcome::Ppm(_)),
                    "the degraded solve must still carry an answer"
                );
                std::hint::black_box(*work_spent);
                1
            },
        ),
    );

    // --- end-to-end fig7 sweep (6 k-points x 2 seeds, greedy + ILP) -----
    // Engine-backed with the per-seed instance memoized; serial so the
    // number measures the algorithms (the baseline entry is the pre-PR
    // serial loop over the identical grid).
    let fig7_ks = [75u32, 80, 85, 90, 95, 100];
    let fig7_seeds = 2u64;
    let fig7_cells = fig7_ks.len() as u64 * fig7_seeds;
    push(
        &mut stages,
        run_stage("fig7_sweep", "cases = (k,seed) grid cells", 1, || {
            let r = popmon_bench::scenarios::fig7_report(
                &Engine::serial(),
                &pop10,
                &fig7_ks,
                fig7_seeds,
            );
            std::hint::black_box(r.rows.len());
            fig7_cells
        }),
    );

    // The same sweep across 4 workers: the scaling view (no baseline
    // entry — the pre-PR sweep could not run parallel at all).
    push(
        &mut stages,
        run_stage(
            "fig7_sweep_par4",
            "cases = (k,seed) grid cells, 4 workers",
            1,
            || {
                let r = popmon_bench::scenarios::fig7_report(
                    &Engine::with_threads(4),
                    &pop10,
                    &fig7_ks,
                    fig7_seeds,
                );
                std::hint::black_box(r.rows.len());
                fig7_cells
            },
        ),
    );

    // --- end-to-end xp_incremental sweep (warm-start chain showcase) ----
    // The 4-point upgrade grid x 2 seeds, serial: per seed, a frozen
    // PPM(0.8) base (memoized), then the incremental and from-scratch
    // exact solves ride one warm-started model each across the k grid.
    let inc_ks = [85u32, 90, 95, 100];
    let inc_seeds = 2u64;
    let inc_cells = inc_ks.len() as u64 * inc_seeds;
    push(
        &mut stages,
        run_stage(
            "xp_incremental_sweep",
            "cases = (k,seed) grid cells",
            1,
            || {
                let r = popmon_bench::scenarios::incremental_report(
                    &Engine::serial(),
                    &pop10,
                    &inc_ks,
                    inc_seeds,
                );
                std::hint::black_box(r.rows.len());
                inc_cells
            },
        ),
    );

    // --- end-to-end fig8 single point (traffic gen through exact) -------
    push(
        &mut stages,
        run_stage(
            "fig8_point_k75",
            "cases = end-to-end pipeline runs",
            1,
            || {
                let opts = ExactOptions {
                    max_nodes: 50_000,
                    time_limit: Some(std::time::Duration::from_secs(120)),
                    ..Default::default()
                };
                let r = popmon_bench::scenarios::fig8_report(
                    &Engine::serial(),
                    &pop15,
                    &[75],
                    1,
                    &opts,
                );
                std::hint::black_box(r.rows.len());
                1
            },
        ),
    );

    // --- instance-space generator: all three families at the 80-router
    // scale (generation only; placement cost is the next stage) ---------
    let family_specs: Vec<FamilySpec> = [
        FamilySpec::waxman(80, 30),
        FamilySpec::barabasi_albert(80, 30),
        FamilySpec::hier_isp(80, 30),
    ]
    .to_vec();
    let gen_seeds: u64 = if smoke { 4 } else { 16 };
    push(
        &mut stages,
        run_stage(
            "family_generate_80",
            "cases = generated instances (3 families)",
            fast_iters,
            || {
                let mut links = 0u64;
                for spec in &family_specs {
                    for seed in 0..gen_seeds {
                        let pop = spec.build(seed).expect("valid spec");
                        links += pop.graph.edge_count() as u64;
                        std::hint::black_box(&pop);
                    }
                }
                std::hint::black_box(links);
                family_specs.len() as u64 * gen_seeds
            },
        ),
    );

    // --- instance-space placement: generator + gravity traffic + greedy
    // + node-bounded exact on one 30-router point per family ------------
    let family_points = [
        FamilyPoint {
            family: "waxman",
            routers: 30,
            density_pct: 70,
        },
        FamilyPoint {
            family: "ba",
            routers: 30,
            density_pct: 70,
        },
        FamilyPoint {
            family: "hier",
            routers: 30,
            density_pct: 70,
        },
    ];
    push(
        &mut stages,
        run_stage(
            "family_placement_30",
            "cases = end-to-end family solves",
            iters,
            || {
                let opts = popmon_bench::scenarios::family_exact_options();
                for p in &family_points {
                    let spec = popmon_bench::scenarios::family_spec(p);
                    let pop = spec.build(0).expect("valid spec");
                    let ts = GravitySpec::default().generate(&pop, 0);
                    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
                    let g = greedy_static(&inst, 0.9).expect("coverable");
                    let e = solve_ppm_mecf_bb(&inst, 0.9, &opts).expect("feasible");
                    std::hint::black_box((g.device_count(), e.device_count()));
                }
                family_points.len() as u64
            },
        ),
    );

    // --- popmond: warm what-if chain on the 15-router preset ------------
    // A resident service instance answers a fixed what-if script — link
    // failures/restores interleaved with small demand scalings (net
    // factor 1.0 per traffic, so every iteration replays the same state
    // sequence), each with an embedded exact re-solve at k = 0.3 —
    // through its warm DeltaInstance chain. The frozen baseline is the
    // same script answered statelessly (per query: rebuild the instance
    // from its spec, replay the session mutations, build and solve a
    // fresh model), so `speedup_vs_baseline` is the resident service's
    // incremental-repair advantage over a batch process per query.
    let whatif_script: Vec<String> = {
        let resolve = r#""resolve":{"method":"exact","k":0.3}"#;
        let fail = |e: usize| {
            format!(r#"{{"op":"whatif","id":"bench","action":"fail_link","link":{e},{resolve}}}"#)
        };
        let restore = |e: usize| {
            format!(
                r#"{{"op":"whatif","id":"bench","action":"restore_link","link":{e},{resolve}}}"#
            )
        };
        let scale = |t: usize, f: f64| {
            format!(
                r#"{{"op":"whatif","id":"bench","action":"scale_demand","traffic":{t},"factor":{f},{resolve}}}"#
            )
        };
        vec![
            fail(2),
            scale(0, 1.25),
            restore(2),
            scale(3, 0.8),
            fail(12),
            scale(0, 0.8),
            restore(12),
            scale(3, 1.25),
            fail(9),
            scale(5, 1.25),
            restore(9),
            scale(5, 0.8),
        ]
    };
    let service = popmond::Service::new(popmond::ServiceConfig::default());
    let loaded = service
        .handle_line(r#"{"op":"load_spec","id":"bench","spec":"paper_15","seed":1}"#)
        .text;
    assert!(loaded.contains("\"ok\":true"), "{loaded}");
    // Prime the warm chain so the measured loop is pure incremental work.
    let primed = service
        .handle_line(r#"{"op":"solve","id":"bench","method":"exact","k":0.3}"#)
        .text;
    assert!(primed.contains("\"ok\":true"), "{primed}");
    push(
        &mut stages,
        run_stage(
            "popmond_whatif_chain",
            "cases = warm what-if re-solves (paper_15, k = 0.3)",
            1,
            || {
                for req in &whatif_script {
                    let resp = service.handle_line(req).text;
                    debug_assert!(resp.contains("\"ok\":true"), "{resp}");
                    std::hint::black_box(&resp);
                }
                whatif_script.len() as u64
            },
        ),
    );

    // --- resilience: a 1000-scenario SRLG ensemble through one warm
    // DeltaInstance chain on the paper_15 preset. The frozen baseline is
    // the cold path — an independent PpmInstance rebuilt per scenario —
    // on identical inputs, so `speedup_vs_baseline` prices the warm
    // chain's incremental fail/scale/score/restore walk. The warm result
    // is asserted bitwise-equal to the cold reference before anything is
    // timed (the exactness contract of `placement::resilience`).
    let rmodel = FailureModel::try_new(&pop15, &FailureSpec::default()).expect("valid spec");
    let rdyn = DynamicSpec::default();
    let ensemble = rmodel
        .sample_scenarios(inst15.traffics.len(), Some(&rdyn), 1000, 7)
        .expect("valid sampling request");
    let rplacement = greedy_static(&inst15, 0.9).expect("coverable").edges;
    let cold_ref =
        score_ensemble_cold(&inst15, &[], &rplacement, &ensemble).expect("validated inputs");
    let mut rchain = DeltaInstance::from_instance(&inst15);
    push(
        &mut stages,
        run_stage(
            "resilience_ensemble_1k",
            "cases = scenarios scored (paper_15, 1000-scenario warm chain)",
            iters * 5,
            || {
                let warm =
                    score_ensemble(&mut rchain, &rplacement, &ensemble).expect("validated inputs");
                assert_eq!(
                    warm.expected_coverage.to_bits(),
                    cold_ref.expected_coverage.to_bits(),
                    "warm chain drifted from the cold reference"
                );
                std::hint::black_box(warm.p99_tail);
                ensemble.len() as u64
            },
        ),
    );

    let report = BenchReport {
        mode: if smoke { "smoke" } else { "full" },
        threads: Engine::from_env().threads(),
        generated_unix: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        stages,
    };
    let json = report.to_json();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("total {:.3} s -> {out}", report.total_wall_s());
}
