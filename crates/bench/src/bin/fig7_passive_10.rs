//! Figure 7: passive device placement on the 10-router POP
//! (27 links, 132 traffics).
//!
//! X-axis: percentage of monitored traffic (75–100%); Y-axis: number of
//! devices, for the decreasing-load greedy and the exact ILP. The paper
//! averages 20 seeded runs; pass `--seeds 20` to match (default 10).
//!
//! Expected shape (paper): the ILP curve is near-linear up to 95% and
//! jumps hard at 100% ("we need twice more devices to monitor extra 5%");
//! the greedy uses about twice as many devices.

use placement::instance::PpmInstance;
use placement::passive::{greedy_static, solve_ppm_exact, ExactOptions};
use popgen::{PopSpec, TrafficSpec};

fn main() {
    let args = popmon_bench::parse_args(10);
    let spec = PopSpec::paper_10();
    let pop = spec.build();

    println!("k_percent,greedy_devices,ilp_devices,greedy_stddev,ilp_stddev,ilp_time_s");
    for k_pct in [75, 80, 85, 90, 95, 100] {
        let k = k_pct as f64 / 100.0;
        let mut greedy_counts = Vec::new();
        let mut ilp_counts = Vec::new();
        let mut ilp_times = Vec::new();
        for seed in 0..args.seeds {
            let ts = TrafficSpec::default().generate(&pop, seed);
            let inst = PpmInstance::from_traffic(&pop.graph, &ts);
            let g = greedy_static(&inst, k).expect("all traffic coverable on this POP");
            greedy_counts.push(g.device_count() as f64);
            let (ilp, secs) = popmon_bench::timed(|| {
                solve_ppm_exact(&inst, k, &ExactOptions::default()).expect("feasible")
            });
            assert!(inst.is_feasible(&ilp.edges, k));
            ilp_counts.push(ilp.device_count() as f64);
            ilp_times.push(secs);
        }
        println!(
            "{k_pct},{:.2},{:.2},{:.2},{:.2},{:.3}",
            popmon_bench::mean(&greedy_counts),
            popmon_bench::mean(&ilp_counts),
            popmon_bench::stddev(&greedy_counts),
            popmon_bench::stddev(&ilp_counts),
            popmon_bench::mean(&ilp_times),
        );
    }
}
