//! Figure 7: passive device placement on the 10-router POP
//! (27 links, 132 traffics).
//!
//! X-axis: percentage of monitored traffic (75–100%); Y-axis: number of
//! devices, for the decreasing-load greedy and the exact ILP. The paper
//! averages 20 seeded runs; pass `--seeds 20` to match (default 10).
//!
//! Expected shape (paper): the ILP curve is near-linear up to 95% and
//! jumps hard at 100% ("we need twice more devices to monitor extra 5%");
//! the greedy uses about twice as many devices.
//!
//! The sweep runs through the scenario engine: k × seed cases fan out
//! across `POPMON_THREADS` workers (all cores by default), the per-seed
//! instance is memoized across k-points, and every column except the
//! trailing `ilp_time_s` wall-clock is byte-identical to a serial run
//! (`tests/engine_parity.rs`).

use popgen::PopSpec;

fn main() {
    let args = popmon_bench::parse_args(10);
    let pop = PopSpec::paper_10().build();
    let r = popmon_bench::scenarios::fig7_report(
        &engine::Engine::from_env(),
        &pop,
        &[75, 80, 85, 90, 95, 100],
        args.seeds,
    );
    popmon_bench::emit_reports(&[&r], args.out.as_deref());
}
