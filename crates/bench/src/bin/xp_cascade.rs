//! Section 7 extension: the price of non-coordinated (cascade) sampling.
//!
//! Linear Program 3's additive rate model assumes packet marking; without
//! it, devices sample independently and overlapping rates waste samples
//! (`1 − Π(1−r)` < `Σ r`). This experiment compares, across `k`, the
//! optimal additive-model cost against the independent-sampling solver of
//! `placement::cascade`, reporting the overhead the refined model reveals.

use placement::cascade::{independent_monitored, solve_ppme_cascade};
use placement::sampling::{solve_ppme, PpmeOptions, SamplingPath, SamplingProblem};
use popgen::{PopSpec, TrafficSpec};

fn main() {
    let args = popmon_bench::parse_args(3);
    let pop = PopSpec::small().build();

    println!("k_percent,additive_cost,cascade_cost,overhead_percent,additive_true_coverage");
    for k_pct in [40, 50, 60, 70, 80, 90] {
        let k = k_pct as f64 / 100.0;
        let (mut add_c, mut cas_c, mut true_cov) = (Vec::new(), Vec::new(), Vec::new());
        for seed in 0..args.seeds {
            let multi = TrafficSpec::default().generate_multi(&pop, seed, 2);
            let (ci, ce) = SamplingProblem::uniform_costs(pop.graph.edge_count());
            let prob = SamplingProblem::from_multi(&pop.graph, &multi, 0.0, k, ci, ce);
            let additive = solve_ppme(&prob, &PpmeOptions::default()).expect("feasible");
            let cascade = solve_ppme_cascade(&prob, &PpmeOptions::default()).expect("feasible");
            add_c.push(additive.total_cost());
            cas_c.push(cascade.total_cost());
            // How much does the additive solution ACTUALLY cover when
            // devices cannot coordinate? (The optimism Section 5.2 warns
            // about.)
            let actual = independent_monitored(&prob, &additive.rates);
            true_cov.push(100.0 * actual / prob.total_volume());
        }
        let (a, c) = (popmon_bench::mean(&add_c), popmon_bench::mean(&cas_c));
        println!(
            "{k_pct},{a:.2},{c:.2},{:.1},{:.1}",
            100.0 * (c - a) / a.max(1e-9),
            popmon_bench::mean(&true_cov),
        );
    }

    // Crafted overlap demonstration: two links, three paths. Per-traffic
    // floors force BOTH devices to high rates (h = 0.7 on the single-link
    // paths), so the shared path {0, 1} reads Σr = 1.4 additively but only
    // 1 − 0.3² = 0.91 under independent sampling — the overlap waste the
    // paper's Section 7 asks to model. At k = 0.8 the additive optimum
    // under-covers in reality and the cascade solver must pay extra.
    println!();
    println!("crafted_overlap,additive_cost,cascade_cost,overhead_percent,additive_true_coverage");
    let prob = SamplingProblem {
        num_edges: 2,
        paths: vec![
            SamplingPath { edges: vec![0, 1], volume: 10.0, traffic: 0 },
            SamplingPath { edges: vec![0], volume: 10.0, traffic: 1 },
            SamplingPath { edges: vec![1], volume: 10.0, traffic: 2 },
        ],
        num_traffics: 3,
        h: vec![0.7; 3],
        k: 0.8,
        setup_cost: vec![1.0; 2],
        exploit_cost: vec![2.0; 2],
    };
    let additive = solve_ppme(&prob, &PpmeOptions::default()).expect("feasible");
    let cascade = solve_ppme_cascade(&prob, &PpmeOptions::default()).expect("feasible");
    let actual = independent_monitored(&prob, &additive.rates);
    println!(
        "shared_links,{:.2},{:.2},{:.1},{:.1}",
        additive.total_cost(),
        cascade.total_cost(),
        100.0 * (cascade.total_cost() - additive.total_cost()) / additive.total_cost(),
        100.0 * actual / prob.total_volume(),
    );
}
