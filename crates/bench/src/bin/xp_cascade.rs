//! Section 7 extension: the price of non-coordinated (cascade) sampling.
//!
//! Linear Program 3's additive rate model assumes packet marking; without
//! it, devices sample independently and overlapping rates waste samples
//! (`1 − Π(1−r)` < `Σ r`). This experiment compares, across `k`, the
//! optimal additive-model cost against the independent-sampling solver of
//! `placement::cascade`, reporting the overhead the refined model reveals.
//!
//! The sweep runs through the scenario engine (`POPMON_THREADS` workers,
//! all cores by default) with the per-seed multi-routed traffic memoized
//! across k-points; the CSV is byte-identical to a serial run. The
//! crafted-overlap demonstration below it is deterministic and unswept.

use placement::cascade::{independent_monitored, solve_ppme_cascade};
use placement::sampling::{solve_ppme, PpmeOptions, SamplingPath, SamplingProblem};
use popgen::PopSpec;

fn main() {
    let args = popmon_bench::parse_args(3);
    let pop = PopSpec::small().build();
    let r = popmon_bench::scenarios::cascade_report(
        &engine::Engine::from_env(),
        &pop,
        &[40, 50, 60, 70, 80, 90],
        args.seeds,
    );
    popmon_bench::emit_reports(&[&r], args.out.as_deref());

    // Crafted overlap demonstration: two links, three paths. Per-traffic
    // floors force BOTH devices to high rates (h = 0.7 on the single-link
    // paths), so the shared path {0, 1} reads Σr = 1.4 additively but only
    // 1 − 0.3² = 0.91 under independent sampling — the overlap waste the
    // paper's Section 7 asks to model. At k = 0.8 the additive optimum
    // under-covers in reality and the cascade solver must pay extra.
    println!();
    println!("crafted_overlap,additive_cost,cascade_cost,overhead_percent,additive_true_coverage");
    let prob = SamplingProblem {
        num_edges: 2,
        paths: vec![
            SamplingPath {
                edges: vec![0, 1],
                volume: 10.0,
                traffic: 0,
            },
            SamplingPath {
                edges: vec![0],
                volume: 10.0,
                traffic: 1,
            },
            SamplingPath {
                edges: vec![1],
                volume: 10.0,
                traffic: 2,
            },
        ],
        num_traffics: 3,
        h: vec![0.7; 3],
        k: 0.8,
        setup_cost: vec![1.0; 2],
        exploit_cost: vec![2.0; 2],
    };
    let additive = solve_ppme(&prob, &PpmeOptions::default()).expect("feasible");
    let cascade = solve_ppme_cascade(&prob, &PpmeOptions::default()).expect("feasible");
    let actual = independent_monitored(&prob, &additive.rates);
    println!(
        "shared_links,{:.2},{:.2},{:.1},{:.1}",
        additive.total_cost(),
        cascade.total_cost(),
        100.0 * (cascade.total_cost() - additive.total_cost()) / additive.total_cost(),
        100.0 * actual / prob.total_volume(),
    );
}
