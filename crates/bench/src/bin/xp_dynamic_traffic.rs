//! Section 5.4 experiment: the threshold controller under evolving
//! traffic.
//!
//! Devices are placed once (exact `PPM(0.95)` on the initial matrix);
//! volumes then follow the geometric random walk with drastic shift events
//! of `popgen::dynamic`. The controller re-optimizes the sampling rates
//! (`PPME*(x, h, k)`, a pure LP) whenever coverage drops below the
//! tolerance threshold `T`.
//!
//! One trajectory runs per seed in `0..--seeds` (default 1); trajectories
//! fan out across the scenario engine's worker pool and traces are printed
//! seed-major. Output: one row per step — seed, coverage before/after,
//! whether the controller acted, and the exploitation cost of the rates in
//! force. A summary line on stderr reports the re-optimization count and
//! wall time (the paper's point: adapting rates is cheap; moving devices
//! is not).

use popgen::PopSpec;

fn main() {
    let args = popmon_bench::parse_args(1);
    let steps = (60.0 * args.scale) as usize;
    let pop = PopSpec::paper_10().build();

    let ((report, outcomes), secs) = popmon_bench::timed(|| {
        popmon_bench::scenarios::dynamic_traffic_report(
            &engine::Engine::from_env(),
            &pop,
            args.seeds,
            steps,
        )
    });
    popmon_bench::emit_reports(&[&report], args.out.as_deref());
    for (seed, o) in outcomes.iter().enumerate() {
        eprintln!(
            "# seed {seed}: installed {} devices for k = 0.95; reoptimizations: {} / {} steps",
            o.devices, o.reoptimizations, o.steps
        );
    }
    let total_steps: usize = outcomes.iter().map(|o| o.steps).sum();
    eprintln!(
        "# wall time: {secs:.2}s ({:.1} ms/step)",
        1000.0 * secs / total_steps.max(1) as f64
    );
}
