//! Section 5.4 experiment: the threshold controller under evolving
//! traffic.
//!
//! Devices are placed once (exact `PPM(0.95)` on the initial matrix);
//! volumes then follow the geometric random walk with drastic shift events
//! of `popgen::dynamic`. The controller re-optimizes the sampling rates
//! (`PPME*(x, h, k)`, a pure LP) whenever coverage drops below the
//! tolerance threshold `T`.
//!
//! Output: one row per step — coverage before/after, whether the
//! controller acted, and the exploitation cost of the rates in force.
//! A summary line on stderr reports the re-optimization count and the
//! mean LP time (the paper's point: adapting rates is cheap; moving
//! devices is not).

use placement::dynamic::{run_controller, ControllerSpec};
use placement::instance::PpmInstance;
use placement::passive::{solve_ppm_exact, ExactOptions};
use popgen::dynamic::{DynamicSpec, TrafficProcess};
use popgen::{PopSpec, TrafficSpec};

fn main() {
    let args = popmon_bench::parse_args(1);
    let steps = (60.0 * args.scale) as usize;
    let pop = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop, args.seeds);
    let ne = pop.graph.edge_count();

    // Fixed deployment from the initial matrix.
    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    let placed = solve_ppm_exact(&inst, 0.95, &ExactOptions::default()).expect("feasible");
    let mut installed = vec![false; ne];
    for &e in &placed.edges {
        installed[e] = true;
    }
    eprintln!("# installed {} devices for k = 0.95", placed.device_count());

    let spec = ControllerSpec { k: 0.9, h: 0.0, threshold: 0.85 };
    let drift = DynamicSpec { shift_probability: 0.25, ..Default::default() };
    let mut process = TrafficProcess::new(ts, drift, args.seeds.wrapping_mul(31) + 1);
    let ((), secs) = popmon_bench::timed(|| {
        let trace = run_controller(
            &mut process,
            &pop.graph,
            &installed,
            &spec,
            vec![1.0; ne],
            vec![0.5; ne],
            steps,
        );
        println!("step,coverage_before,reoptimized,coverage_after,exploit_cost");
        for s in &trace.steps {
            println!(
                "{},{:.4},{},{:.4},{:.3}",
                s.step,
                s.coverage_before,
                s.reoptimized as u8,
                s.coverage_after,
                s.exploit_cost
            );
        }
        eprintln!(
            "# reoptimizations: {} / {} steps",
            trace.reoptimizations,
            trace.steps.len()
        );
    });
    eprintln!("# wall time: {secs:.2}s ({:.1} ms/step)", 1000.0 * secs / steps.max(1) as f64);
}
