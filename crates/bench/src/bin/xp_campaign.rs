//! Section 7 extension: measurement campaigns — re-route traffic to
//! maximize the monitored ratio for a fixed deployment.
//!
//! Protocol: place an optimal `PPM(k0)` deployment on the 10-router POP,
//! then sweep the allowed stretch budget (as a fraction of the budget the
//! unconstrained campaign would use) and report the coverage recaptured by
//! the greedy and exact campaign solvers with 3 candidate routes per
//! traffic.

use milp::MipOptions;
use placement::campaign::{campaign_exact, campaign_greedy, CampaignProblem};
use placement::instance::PpmInstance;
use placement::passive::{solve_ppm_exact, ExactOptions};
use popgen::{PopSpec, TrafficSpec};

fn main() {
    let args = popmon_bench::parse_args(5);
    let pop = PopSpec::paper_10().build();

    println!("budget_percent,coverage_before,greedy_after,exact_after,greedy_stretch");
    for budget_pct in [0, 10, 25, 50, 100] {
        let (mut before_v, mut greedy_v, mut exact_v, mut stretch_v) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for seed in 0..args.seeds {
            let ts = TrafficSpec::default().generate(&pop, seed);
            let inst = PpmInstance::from_traffic(&pop.graph, &ts);
            let placed = solve_ppm_exact(&inst, 0.8, &ExactOptions::default()).unwrap();
            let mut installed = vec![false; pop.graph.edge_count()];
            for &e in &placed.edges {
                installed[e] = true;
            }
            // Reference: the unconstrained campaign's stretch use.
            let free =
                CampaignProblem::new(&pop.graph, &ts, installed.clone(), 3, f64::INFINITY);
            let unconstrained = campaign_greedy(&free);
            let budget = if budget_pct == 100 {
                f64::INFINITY
            } else {
                unconstrained.total_stretch * budget_pct as f64 / 100.0
            };
            let prob = CampaignProblem::new(&pop.graph, &ts, installed, 3, budget);
            let total = prob.total_volume();
            let before = prob.evaluate(&vec![0; prob.traffics.len()]).0;
            let g = campaign_greedy(&prob);
            let e = campaign_exact(&prob, &MipOptions::default());
            before_v.push(100.0 * before / total);
            greedy_v.push(100.0 * g.monitored / total);
            exact_v.push(100.0 * e.monitored / total);
            stretch_v.push(g.total_stretch);
        }
        println!(
            "{budget_pct},{:.1},{:.1},{:.1},{:.1}",
            popmon_bench::mean(&before_v),
            popmon_bench::mean(&greedy_v),
            popmon_bench::mean(&exact_v),
            popmon_bench::mean(&stretch_v),
        );
    }
}
