//! Section 7 extension: measurement campaigns — re-route traffic to
//! maximize the monitored ratio for a fixed deployment.
//!
//! Protocol: place an optimal `PPM(k0)` deployment on the 10-router POP,
//! then sweep the allowed stretch budget (as a fraction of the budget the
//! unconstrained campaign would use) and report the coverage recaptured by
//! the greedy and exact campaign solvers with 3 candidate routes per
//! traffic.
//!
//! The sweep runs through the scenario engine: budget × seed cases fan out
//! across `POPMON_THREADS` workers (all cores by default), the per-seed
//! deployment is memoized across budget points, and the report is
//! byte-identical to a serial run (`tests/engine_parity.rs`).

use popgen::PopSpec;

fn main() {
    let args = popmon_bench::parse_args(5);
    let pop = PopSpec::paper_10().build();
    let budgets = [0u32, 10, 25, 50, 100];
    let r = popmon_bench::scenarios::campaign_report(
        &engine::Engine::from_env(),
        &pop,
        &budgets,
        args.seeds,
    );
    popmon_bench::emit_reports(&[&r], args.out.as_deref());
}
