//! Instance-space sweep: passive devices and active beacons across the
//! random topology families (`popgen::families`) — Waxman geometric,
//! Barabási–Albert preferential attachment, and the hierarchical
//! backbone/access ISP model — crossed with instance size and density.
//!
//! Where the `fig*` binaries re-answer the paper's questions on its five
//! hand-built POPs, this sweep asks them over an unbounded seeded instance
//! space: how do greedy/exact tap counts and the beacon budget move with
//! topology *shape*, not just size?
//!
//! `--scale S` multiplies the instance sizes; `--seeds N` averages seeded
//! instances per point. Runs through the scenario engine (`POPMON_THREADS`
//! workers, all cores by default); every column is deterministic, so the
//! CSV is byte-identical for any thread count (`tests/engine_parity.rs`,
//! with seed-0 rows pinned in `tests/golden_figures.rs`).

use popmon_bench::scenarios::{self, FamilyPoint};

fn main() {
    let args = popmon_bench::parse_args(3);
    let sizes: Vec<usize> = [12usize, 20, 30]
        .iter()
        .map(|&s| (((s as f64) * args.scale).round() as usize).max(6))
        .collect();
    let densities = [40u32, 70, 100];
    let mut points = Vec::new();
    for family in ["waxman", "ba", "hier"] {
        for &routers in &sizes {
            for &density_pct in &densities {
                points.push(FamilyPoint {
                    family,
                    routers,
                    density_pct,
                });
            }
        }
    }
    let opts = scenarios::family_exact_options();
    let r = scenarios::topology_families_report(
        &engine::Engine::from_env(),
        &points,
        args.seeds,
        0.9,
        &opts,
    );
    popmon_bench::emit_reports(&[&r], args.out.as_deref());
}
