//! Figure 6: traffic weight on a simple POP.
//!
//! The paper visualizes a 10-router POP where edge thickness is the share
//! of traffic on the edge, showing the generator's non-uniform matrix.
//! This binary prints the per-edge load share as CSV and emits the same
//! picture as a Graphviz document on stderr (render with `dot -Tpng`).

use netgraph::dot::{to_dot, DotOptions};
use popgen::{PopSpec, TrafficSpec};

fn main() {
    let args = popmon_bench::parse_args(1);
    let pop = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop, args.seeds);
    let loads = ts.edge_loads(&pop.graph);
    let total: f64 = loads.iter().sum();

    println!("edge,endpoint_u,endpoint_v,load,share_percent");
    let mut rows: Vec<(usize, f64)> = loads.iter().copied().enumerate().collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (e, load) in &rows {
        let (u, v) = pop.graph.endpoints(netgraph::EdgeId(*e as u32));
        println!(
            "{e},{},{},{:.2},{:.2}",
            pop.graph.label(u),
            pop.graph.label(v),
            load,
            100.0 * load / total
        );
    }

    // Non-uniformity summary: the paper's point is the skew.
    let max = rows.first().map(|r| r.1).unwrap_or(0.0);
    let min = rows.last().map(|r| r.1).unwrap_or(0.0);
    eprintln!(
        "# non-uniform traffic: max/min edge load ratio = {:.1}",
        if min > 0.0 { max / min } else { f64::INFINITY }
    );

    // Graphviz rendering with pen width proportional to load share.
    let max_load = max.max(1e-9);
    let opts = DotOptions {
        name: "figure6".into(),
        edge_width: pop
            .graph
            .edges()
            .map(|e| (e, 0.5 + 6.0 * loads[e.index()] / max_load))
            .collect(),
        edge_label: Vec::new(),
        highlight: Vec::new(),
    };
    eprintln!("{}", to_dot(&pop.graph, &opts));
}
