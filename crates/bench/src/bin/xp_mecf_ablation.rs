//! Section 4.3 ablation: the greedy family against the exact ILP.
//!
//! The paper's MECF view says the classical greedy *is* a min-cost flow on
//! the relaxed auxiliary graph. This experiment compares, on the 10-router
//! POP across `k`, the four solvers the framework provides:
//! static decreasing-load greedy, adaptive (set-cover) greedy, the MECF
//! flow greedy, and the exact ILP — device counts averaged over seeds.

use placement::instance::PpmInstance;
use placement::passive::{
    flow_greedy_ppm, greedy_adaptive, greedy_static, solve_ppm_exact, solve_ppm_mecf_bb,
    ExactOptions,
};
use popgen::{PopSpec, TrafficSpec};

fn main() {
    let args = popmon_bench::parse_args(10);
    let pop = PopSpec::paper_10().build();

    println!("k_percent,static_greedy,adaptive_greedy,flow_greedy,ilp,mecf_bb");
    for k_pct in [60, 70, 75, 80, 85, 90, 95, 100] {
        let k = k_pct as f64 / 100.0;
        let (mut st, mut ad, mut fl, mut il, mut bb) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for seed in 0..args.seeds {
            let ts = TrafficSpec::default().generate(&pop, seed);
            let inst = PpmInstance::from_traffic(&pop.graph, &ts);
            st.push(greedy_static(&inst, k).expect("feasible").device_count() as f64);
            ad.push(greedy_adaptive(&inst, k).expect("feasible").device_count() as f64);
            fl.push(flow_greedy_ppm(&inst, k).expect("feasible").device_count() as f64);
            il.push(
                solve_ppm_exact(&inst, k, &ExactOptions::default())
                    .expect("feasible")
                    .device_count() as f64,
            );
            bb.push(
                solve_ppm_mecf_bb(&inst, k, &ExactOptions::default())
                    .expect("feasible")
                    .device_count() as f64,
            );
        }
        println!(
            "{k_pct},{:.2},{:.2},{:.2},{:.2},{:.2}",
            popmon_bench::mean(&st),
            popmon_bench::mean(&ad),
            popmon_bench::mean(&fl),
            popmon_bench::mean(&il),
            popmon_bench::mean(&bb),
        );
    }
}
