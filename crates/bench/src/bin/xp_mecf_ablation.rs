//! Section 4.3 ablation: the greedy family against the exact ILP.
//!
//! The paper's MECF view says the classical greedy *is* a min-cost flow on
//! the relaxed auxiliary graph. This experiment compares, on the 10-router
//! POP across `k`, the four solvers the framework provides:
//! static decreasing-load greedy, adaptive (set-cover) greedy, the MECF
//! flow greedy, and the exact ILP — device counts averaged over seeds.
//!
//! The sweep runs through the scenario engine (`POPMON_THREADS` workers,
//! all cores by default) with the per-seed instance memoized across
//! k-points; the CSV is byte-identical to a serial run.

use popgen::PopSpec;

fn main() {
    let args = popmon_bench::parse_args(10);
    let pop = PopSpec::paper_10().build();
    let r = popmon_bench::scenarios::mecf_ablation_report(
        &engine::Engine::from_env(),
        &pop,
        &[60, 70, 75, 80, 85, 90, 95, 100],
        args.seeds,
    );
    popmon_bench::emit_reports(&[&r], args.out.as_deref());
}
