//! Figure 10: beacon placement on the 29-router POP.
//!
//! Same protocol as Figure 9; the paper reports the beacon count reduced
//! by 33% (ILP vs Thiran \[15\]) and the greedy within 2 beacons of the ILP.

fn main() {
    let args = popmon_bench::parse_args(20);
    popmon_bench::active_experiment(popgen::PopSpec::paper_29(), &args);
}
