//! `bench_gate` — the CI perf-trajectory gate.
//!
//! Usage: `bench_gate --committed PATH --fresh PATH [--threshold PCT]`
//!
//! Compares a freshly measured `BENCH_popmon.json` against the committed
//! one (see `popmon_bench::gate`): for every stable stage present in both
//! reports, the fresh `cases_per_s` must not fall more than the threshold
//! (default 25%) below the committed rate. Exit codes: 0 clean, 1 on any
//! regression (one line each), 2 on usage or unreadable/malformed input
//! (one-line error — CI logs stay readable).

use popmon_bench::gate::{compare_reports, parse_stage_rates, STABLE_STAGES};
use popmon_bench::perf::BASELINE;

fn usage() -> ! {
    eprintln!("usage: bench_gate --committed PATH --fresh PATH [--threshold PCT]");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut committed: Option<String> = None;
    let mut fresh: Option<String> = None;
    let mut threshold = 25.0f64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--committed" => {
                i += 1;
                committed = Some(argv.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--fresh" => {
                i += 1;
                fresh = Some(argv.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--threshold" => {
                i += 1;
                let raw = argv.get(i).cloned().unwrap_or_else(|| usage());
                threshold = match raw.parse() {
                    Ok(t) if (0.0..100.0).contains(&t) => t,
                    _ => fail(&format!(
                        "--threshold needs a percent in [0, 100), got {raw:?}"
                    )),
                };
            }
            "--help" | "-h" => usage(),
            other => fail(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    let (Some(committed_path), Some(fresh_path)) = (committed, fresh) else {
        usage()
    };

    let read = |path: &str| -> Vec<(String, f64)> {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        parse_stage_rates(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
    };
    let committed_rates = read(&committed_path);
    let fresh_rates = read(&fresh_path);

    // Per-stage speedup table: fresh vs committed (what the gate
    // enforces) and both vs the frozen pre-optimization baseline (the
    // trajectory each PR claims against), so a regression is diagnosable
    // from the CI log alone.
    let mut gated = 0usize;
    println!(
        "{:<24} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "stage", "committed c/s", "fresh c/s", "fresh/comm", "comm/base", "fresh/base"
    );
    let ratio = |num: f64, den: Option<f64>| -> String {
        match den {
            Some(d) if d > 0.0 => format!("{:.3}x", num / d),
            _ => "-".into(),
        }
    };
    for stage in STABLE_STAGES {
        let old = committed_rates
            .iter()
            .find(|(n, _)| n == stage)
            .map(|&(_, r)| r);
        let new = fresh_rates
            .iter()
            .find(|(n, _)| n == stage)
            .map(|&(_, r)| r);
        let base = BASELINE
            .iter()
            .find(|(n, _, _)| n == stage)
            .map(|&(_, _, cps)| cps);
        let (Some(old), Some(new)) = (old, new) else {
            continue;
        };
        gated += 1;
        println!(
            "{:<24} {:>14.3} {:>14.3} {:>12} {:>12} {:>12}",
            stage,
            old,
            new,
            ratio(new, Some(old)),
            ratio(old, base),
            ratio(new, base),
        );
    }
    if gated == 0 {
        fail("no stable stage is present in both reports — nothing to gate");
    }

    let regressions = compare_reports(&committed_rates, &fresh_rates, threshold);
    if regressions.is_empty() {
        println!("bench gate passed: {gated} stable stages within {threshold}%");
    } else {
        for r in &regressions {
            eprintln!("bench gate: {r}");
        }
        std::process::exit(1);
    }
}
