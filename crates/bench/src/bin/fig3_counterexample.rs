//! Figure 3: the greedy counter-example POP.
//!
//! The POP carries four traffics — two of weight 2 crossing a shared link
//! of load 4, and two of weight 1 — and `PPM(1)` is solved by two devices
//! on the load-3 links, while the greedy starts with the load-4 link and
//! ends up with three devices.
//!
//! Output: one row per algorithm with its device count and selection.

use placement::instance::PpmInstance;
use placement::passive::{
    brute_force_ppm, greedy_adaptive, greedy_static, solve_ppm_exact, ExactOptions,
};

fn main() {
    let inst = PpmInstance::new(
        5,
        vec![
            (2.0, vec![0, 1]),
            (2.0, vec![0, 2]),
            (1.0, vec![1, 3]),
            (1.0, vec![2, 4]),
        ],
    );

    println!("algorithm,devices,edges,coverage");
    let greedy = greedy_static(&inst, 1.0).expect("feasible");
    println!(
        "greedy_static,{},{:?},{}",
        greedy.device_count(),
        greedy.edges,
        greedy.coverage
    );
    let adaptive = greedy_adaptive(&inst, 1.0).expect("feasible");
    println!(
        "greedy_adaptive,{},{:?},{}",
        adaptive.device_count(),
        adaptive.edges,
        adaptive.coverage
    );
    let ilp = solve_ppm_exact(&inst, 1.0, &ExactOptions::default()).expect("feasible");
    println!(
        "ilp,{},{:?},{}",
        ilp.device_count(),
        ilp.edges,
        ilp.coverage
    );
    let brute = brute_force_ppm(&inst, 1.0).expect("feasible");
    println!(
        "brute_force,{},{:?},{}",
        brute.device_count(),
        brute.edges,
        brute.coverage
    );

    assert_eq!(
        greedy.device_count(),
        3,
        "paper: greedy gives three measurement points"
    );
    assert_eq!(
        ilp.device_count(),
        2,
        "paper: an optimal solution is two measurement points"
    );
    eprintln!("figure 3 reproduced: greedy = 3 devices, optimal = 2 devices");
}
