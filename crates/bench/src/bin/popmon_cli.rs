//! `popmon-cli` — plan a monitoring deployment from a topology file.
//!
//! The operator-facing entry point: feed it a topology + traffic document
//! in the `popgen::fileio` text format (convertible from Rocketfuel-style
//! data) and get device placements back as CSV.
//!
//! ```text
//! popmon_cli passive  <file> [k]          # tap placement (default k = 0.95)
//! popmon_cli sampling <file> [k] [h]      # PPME(h, k) with unit costs
//! popmon_cli active   <file>              # beacon placement on the routers
//! popmon_cli generate [routers]           # emit a preset POP document
//! popmon_cli family   <spec> [seed]       # emit a random-family document
//! popmon_cli inspect  <file>              # summarize a topology document
//! ```
//!
//! `family` takes a `popgen::families::FamilySpec` line, e.g.
//! `"waxman routers=30 endpoints=15 density=0.6"` — see `popgen::families`
//! for the full key set per family.

use std::process::ExitCode;

use placement::active::{
    assign_probes_greedy, compute_probes, place_beacons_greedy, place_beacons_ilp,
    place_beacons_thiran,
};
use placement::instance::PpmInstance;
use placement::passive::{greedy_static, solve_ppm_mecf_bb, ExactOptions};
use placement::sampling::{solve_ppme, SamplingProblem};
use popgen::{fileio, Pop, PopSpec, TrafficSet, TrafficSpec};

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().collect();
    let usage = || {
        eprintln!(
            "usage: popmon_cli <passive|sampling|active|inspect> <topology-file> [args] \
             | popmon_cli generate [routers] | popmon_cli family <spec> [seed] \
             (document-emitting commands accept --out PATH)"
        );
        ExitCode::from(2)
    };
    // `--out PATH` may appear anywhere; strip it before positional parsing.
    let out: Option<String> = match argv.iter().position(|a| a == "--out") {
        None => None,
        Some(i) if i + 1 < argv.len() => {
            let path = argv.remove(i + 1);
            argv.remove(i);
            Some(path)
        }
        Some(_) => {
            eprintln!("error: --out needs a path");
            return usage();
        }
    };
    let Some(cmd) = argv.get(1) else {
        return usage();
    };

    match cmd.as_str() {
        "family" => {
            let Some(spec_line) = argv.get(2) else {
                return usage();
            };
            let spec: popgen::FamilySpec = match spec_line.parse() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    eprintln!("example: popmon_cli family \"waxman routers=30 endpoints=15 density=0.6\" 7");
                    return ExitCode::FAILURE;
                }
            };
            let seed: u64 = match argv.get(3).map(|s| s.parse()) {
                None => 0,
                Some(Ok(s)) => s,
                Some(Err(_)) => {
                    eprintln!("error: seed must be a non-negative integer");
                    return ExitCode::FAILURE;
                }
            };
            match popgen::families::emit_document(&spec, seed) {
                Ok(doc) => emit(&doc, out.as_deref()),
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "generate" => {
            let routers: usize = argv.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
            let spec = match routers {
                0..=7 => PopSpec::small(),
                8..=12 => PopSpec::paper_10(),
                13..=20 => PopSpec::paper_15(),
                21..=50 => PopSpec::paper_29(),
                51..=100 => PopSpec::paper_80(),
                _ => PopSpec::large_150(),
            };
            let pop = spec.build();
            let ts = TrafficSpec::default().generate(&pop, 42);
            emit(&fileio::serialize(&pop, &ts), out.as_deref())
        }
        "passive" | "sampling" | "active" | "inspect" => {
            let Some(path) = argv.get(2) else {
                return usage();
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (pop, ts) = match fileio::parse(&text) {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cmd.as_str() {
                "passive" => passive(&pop, &ts, parse_f64(&argv, 3, 0.95)),
                "sampling" => sampling(
                    &pop,
                    &ts,
                    parse_f64(&argv, 3, 0.9),
                    parse_f64(&argv, 4, 0.0),
                ),
                "inspect" => inspect(&pop, &ts, out.as_deref()),
                _ => active(&pop),
            }
        }
        _ => usage(),
    }
}

/// Routes document output through the experiment binaries' fallible
/// emitter: an unwritable `--out` path (or a closed stdout pipe) is a
/// one-line error and exit code 1, never a panic.
fn emit(text: &str, out: Option<&str>) -> ExitCode {
    match popmon_bench::try_emit_text(text, out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_f64(argv: &[String], idx: usize, default: f64) -> f64 {
    argv.get(idx)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn passive(pop: &Pop, ts: &TrafficSet, k: f64) -> ExitCode {
    let inst = PpmInstance::from_traffic(&pop.graph, ts);
    eprintln!(
        "# passive placement: {} links, {} traffics, k = {k}",
        inst.num_edges,
        inst.traffics.len()
    );
    let Some(greedy) = greedy_static(&inst, k) else {
        eprintln!("error: target unreachable (uncoverable traffic exceeds 1 - k)");
        return ExitCode::FAILURE;
    };
    let opts = ExactOptions {
        max_nodes: 1_000_000,
        time_limit: Some(std::time::Duration::from_secs(60)),
        ..Default::default()
    };
    let exact = solve_ppm_mecf_bb(&inst, k, &opts).expect("greedy succeeded, so must B&B");
    eprintln!(
        "# greedy: {} devices; exact: {} devices{}",
        greedy.device_count(),
        exact.device_count(),
        if exact.proven_optimal {
            " (proven optimal)"
        } else {
            " (best found)"
        }
    );
    println!("link_u,link_v");
    for &e in &exact.edges {
        let (u, v) = pop.graph.endpoints(netgraph::EdgeId(e as u32));
        println!("{},{}", pop.graph.label(u), pop.graph.label(v));
    }
    ExitCode::SUCCESS
}

fn sampling(pop: &Pop, ts: &TrafficSet, k: f64, h: f64) -> ExitCode {
    let ne = pop.graph.edge_count();
    let (ci, ce) = SamplingProblem::uniform_costs(ne);
    let prob = SamplingProblem::from_traffic_set(&pop.graph, ts, h, k, ci, ce);
    let opts = ExactOptions {
        max_nodes: 200_000,
        time_limit: Some(std::time::Duration::from_secs(60)),
        rel_gap: 0.02,
        ..Default::default()
    };
    let Some(sol) = solve_ppme(&prob, &opts) else {
        eprintln!("error: PPME(h = {h}, k = {k}) is infeasible on this input");
        return ExitCode::FAILURE;
    };
    if let Err(e) = prob.check_solution(&sol.installed, &sol.rates, 1e-5) {
        eprintln!("internal error: produced an invalid plan: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "# PPME(h = {h}, k = {k}): {} devices, setup {:.2}, exploitation {:.2}{}",
        sol.device_count(),
        sol.setup_cost,
        sol.exploit_cost,
        if sol.proven_optimal {
            ""
        } else {
            " (within 2% of optimal)"
        }
    );
    println!("link_u,link_v,sampling_rate_percent");
    for e in 0..ne {
        if sol.installed[e] {
            let (u, v) = pop.graph.endpoints(netgraph::EdgeId(e as u32));
            println!(
                "{},{},{:.1}",
                pop.graph.label(u),
                pop.graph.label(v),
                100.0 * sol.rates[e]
            );
        }
    }
    ExitCode::SUCCESS
}

/// Summarizes a topology document: tier sizes, link stats, traffic mass,
/// and how hard the monitoring problem it encodes is (load concentration,
/// uncoverable share). CSV `metric,value` rows for scripting.
fn inspect(pop: &Pop, ts: &TrafficSet, out: Option<&str>) -> ExitCode {
    use std::fmt::Write as _;
    let g = &pop.graph;
    let inst = PpmInstance::from_traffic(g, ts);
    let router_degrees: Vec<usize> = pop
        .backbone
        .iter()
        .chain(pop.access.iter())
        .map(|&r| g.degree(r))
        .collect();
    let max_deg = router_degrees.iter().copied().max().unwrap_or(0);
    let mean_deg = if router_degrees.is_empty() {
        0.0
    } else {
        router_degrees.iter().sum::<usize>() as f64 / router_degrees.len() as f64
    };
    let loads = inst.edge_loads();
    let total = inst.total_volume();
    let top_load = loads.iter().cloned().fold(0.0, f64::max);
    let mut doc = String::new();
    let _ = writeln!(doc, "metric,value");
    let _ = writeln!(doc, "backbone_routers,{}", pop.backbone.len());
    let _ = writeln!(doc, "access_routers,{}", pop.access.len());
    let _ = writeln!(doc, "endpoints,{}", pop.endpoints.len());
    let _ = writeln!(doc, "links,{}", g.edge_count());
    let _ = writeln!(doc, "router_degree_mean,{mean_deg:.2}");
    let _ = writeln!(doc, "router_degree_max,{max_deg}");
    let _ = writeln!(doc, "traffics,{}", ts.len());
    let _ = writeln!(doc, "total_volume,{total:.3}");
    let _ = writeln!(
        doc,
        "top_link_load_fraction,{:.4}",
        if total > 0.0 { top_load / total } else { 0.0 }
    );
    let _ = writeln!(
        doc,
        "max_coverage_fraction,{:.4}",
        inst.max_coverage_fraction()
    );
    emit(&doc, out)
}

fn active(pop: &Pop) -> ExitCode {
    let (graph, _) = pop.router_subgraph();
    let candidates: Vec<_> = graph.nodes().collect();
    let probes = compute_probes(&graph, &candidates);
    eprintln!(
        "# active monitoring: {} routers, {} probes cover {}/{} router links",
        graph.node_count(),
        probes.len(),
        probes.covered.iter().filter(|&&c| c).count(),
        graph.edge_count()
    );
    let thiran = place_beacons_thiran(&probes, &candidates);
    let greedy = place_beacons_greedy(&probes, &candidates);
    let ilp = place_beacons_ilp(&graph, &probes, &candidates);
    eprintln!(
        "# beacons: Thiran[15] {}, greedy {}, ILP {}{}",
        thiran.len(),
        greedy.len(),
        ilp.len(),
        if ilp.proven_optimal {
            " (proven optimal)"
        } else {
            ""
        }
    );
    let assignment = assign_probes_greedy(&probes, &ilp);
    println!("beacon,probes_emitted");
    for (b, load) in ilp.beacons.iter().zip(&assignment.load) {
        println!("{},{load}", graph.label(*b));
    }
    ExitCode::SUCCESS
}
