//! Monte-Carlo resilience campaigns across the topology families: for
//! every `family × size × SRLG-intensity` grid point, a seeded failure
//! ensemble (correlated SRLG group faults + independent link faults +
//! diurnal demand perturbation) scores two rival placements of equal
//! device count — the failure-blind deterministic exact `PPM(0.9)`
//! optimum and the ensemble-aware `greedy_expected` — head to head on
//! expected, p99-tail, and worst-case coverage.
//!
//! Every scenario is walked through one warm `DeltaInstance` chain per
//! `(family, size, seed)` (fail / scale / score / restore — never a cold
//! rebuild), the same machinery the `resilience_ensemble_1k` bench stage
//! prices against cold per-scenario rebuilds.
//!
//! `--scale S` multiplies the instance sizes; `--seeds N` averages seeded
//! instances per point. Runs through the scenario engine (`POPMON_THREADS`
//! workers, all cores by default); every column is deterministic, so the
//! CSV is byte-identical for any thread count (`tests/engine_parity.rs`,
//! with seed-0 rows pinned in `tests/golden_figures.rs`).

use popmon_bench::scenarios::{self, ResiliencePoint};

fn main() {
    let args = popmon_bench::parse_args(3);
    let routers = (((12f64) * args.scale).round() as usize).max(6);
    let rates = [0u32, 5, 15, 30];
    let mut points = Vec::new();
    for family in ["waxman", "ba", "hier"] {
        for &rate_pct in &rates {
            points.push(ResiliencePoint {
                family,
                routers,
                rate_pct,
            });
        }
    }
    let r = scenarios::resilience_report(&engine::Engine::from_env(), &points, args.seeds, 64);
    popmon_bench::emit_reports(&[&r], args.out.as_deref());
}
