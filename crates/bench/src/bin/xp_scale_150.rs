//! Section 7 extension: "we are also currently testing our solution on
//! larger POPs, with at least 150 routers."
//!
//! Runs the whole pipeline once on the 150-router preset and reports the
//! sizes and wall-clock costs: passive placement (greedy + MECF
//! branch-and-bound at k = 0.9) and active monitoring (probes + all three
//! placements with the full router set as candidates).
//!
//! The solver stages are independent, so they fan out across the scenario
//! engine's worker pool (`POPMON_THREADS` workers, all cores by default):
//! passive greedy, the exact branch-and-bound, and the active stages run
//! concurrently, with the probe set Φ shared through the engine memo.
//! Row order is fixed regardless of completion order.

use placement::passive::ExactOptions;
use popgen::{PopSpec, TrafficSpec};

fn main() {
    let args = popmon_bench::parse_args(1);
    let spec = PopSpec::large_150();
    let pop = spec.build();
    let mut out = String::new();
    out.push_str("metric,value,seconds\n");
    out.push_str(&format!("routers,{},0\n", pop.router_count()));
    out.push_str(&format!("links,{},0\n", pop.graph.edge_count()));

    let (ts, t_gen) = popmon_bench::timed(|| TrafficSpec::default().generate(&pop, 0));
    out.push_str(&format!("traffics,{},{t_gen:.2}\n", ts.len()));

    let opts = ExactOptions {
        max_nodes: 2_000_000,
        time_limit: Some(std::time::Duration::from_secs(120)),
        ..Default::default()
    };
    let report = popmon_bench::scenarios::pipeline_stage_report(
        &engine::Engine::from_env(),
        &pop,
        &ts,
        0.9,
        &opts,
    );
    for row in &report.rows {
        out.push_str(row);
        out.push('\n');
    }
    popmon_bench::emit_text(&out, args.out.as_deref());
}
