//! Section 7 extension: "we are also currently testing our solution on
//! larger POPs, with at least 150 routers."
//!
//! Runs the whole pipeline once on the 150-router preset and reports the
//! sizes and wall-clock costs: passive placement (greedy + MECF
//! branch-and-bound at k = 0.9) and active monitoring (probes + all three
//! placements with the full router set as candidates).

use placement::active::{
    assign_probes_ilp, compute_probes, place_beacons_greedy, place_beacons_ilp,
    place_beacons_thiran,
};
use placement::instance::PpmInstance;
use placement::passive::{greedy_static, solve_ppm_mecf_bb, ExactOptions};
use popgen::{PopSpec, TrafficSpec};

fn main() {
    let _ = popmon_bench::parse_args(1);
    let spec = PopSpec::large_150();
    let pop = spec.build();
    println!("metric,value,seconds");
    println!("routers,{},0", pop.router_count());
    println!("links,{},0", pop.graph.edge_count());

    // Passive at k = 0.9.
    let (ts, t_gen) = popmon_bench::timed(|| TrafficSpec::default().generate(&pop, 0));
    println!("traffics,{},{t_gen:.2}", ts.len());
    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    let (g, t_g) = popmon_bench::timed(|| greedy_static(&inst, 0.9).expect("feasible"));
    println!("passive_greedy_devices,{},{t_g:.2}", g.device_count());
    let opts = ExactOptions {
        max_nodes: 2_000_000,
        time_limit: Some(std::time::Duration::from_secs(120)),
        ..Default::default()
    };
    let (s, t_s) =
        popmon_bench::timed(|| solve_ppm_mecf_bb(&inst, 0.9, &opts).expect("feasible"));
    assert!(inst.is_feasible(&s.edges, 0.9));
    println!(
        "passive_exact_devices,{} (proven {}),{t_s:.2}",
        s.device_count(),
        s.proven_optimal
    );

    // Active with the full router candidate set.
    let (graph, _) = pop.router_subgraph();
    let candidates: Vec<_> = graph.nodes().collect();
    let (probes, t_p) = popmon_bench::timed(|| compute_probes(&graph, &candidates));
    println!("probes,{},{t_p:.2}", probes.len());
    let (thiran, t_t) = popmon_bench::timed(|| place_beacons_thiran(&probes, &candidates));
    println!("beacons_thiran,{},{t_t:.2}", thiran.len());
    let (greedy, t_gr) = popmon_bench::timed(|| place_beacons_greedy(&probes, &candidates));
    println!("beacons_greedy,{},{t_gr:.2}", greedy.len());
    let (ilp, t_i) = popmon_bench::timed(|| place_beacons_ilp(&graph, &probes, &candidates));
    println!("beacons_ilp,{} (proven {}),{t_i:.2}", ilp.len(), ilp.proven_optimal);
    let (assign, t_a) = popmon_bench::timed(|| assign_probes_ilp(&probes, &ilp));
    println!("probe_makespan,{},{t_a:.2}", assign.max_load);
}
