//! Measured-performance subsystem: machine-readable benchmark reports.
//!
//! The `bench_report` binary runs a fixed grid of named stages (the
//! workspace's hot paths) and serializes the measurements to
//! `BENCH_popmon.json` so performance is a *tracked* quantity: every PR
//! that claims a speedup re-runs the grid and the JSON trajectory shows
//! whether the claim held. See `DESIGN.md` ("The perf subsystem") for the
//! schema and the measurement protocol.
//!
//! The [`BASELINE`] table freezes the numbers measured at the pre-PR-2
//! commit (`ffa26e6`, serial sweeps, Dantzig full-scan simplex pricing) on
//! the reference container; [`BenchReport::to_json`] computes
//! `speedup_vs_baseline` for every stage that already existed then.

use std::time::Instant;

/// One measured stage of the benchmark grid.
#[derive(Debug, Clone)]
pub struct StageResult {
    /// Stage name (stable across PRs — the JSON trajectory joins on it).
    pub name: &'static str,
    /// Total wall-clock seconds across all iterations.
    pub wall_s: f64,
    /// Timed iterations of the whole stage.
    pub iters: u64,
    /// Logical cases processed across all iterations (what a "case" is —
    /// pivots, trees, sweeps — is stage-specific and recorded in `note`).
    pub cases: u64,
    /// Human description of the case unit.
    pub note: &'static str,
}

impl StageResult {
    /// Cases per wall-clock second (0 when nothing was timed).
    pub fn cases_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.cases as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Runs `body` `iters` times, counting the logical cases it reports.
pub fn run_stage(
    name: &'static str,
    note: &'static str,
    iters: u64,
    mut body: impl FnMut() -> u64,
) -> StageResult {
    let mut cases = 0u64;
    let t0 = Instant::now();
    for _ in 0..iters.max(1) {
        cases += body();
    }
    let wall_s = t0.elapsed().as_secs_f64();
    StageResult {
        name,
        wall_s,
        iters: iters.max(1),
        cases,
        note,
    }
}

/// Reference measurements: `(stage, wall_s, cases_per_s)`.
///
/// Most entries were captured with `bench_report --smoke` built at the
/// pre-PR-2 commit (serial sweep loops, full-scan Dantzig pricing, O(m²)
/// BTRAN per simplex iteration) on the reference container. Stages that
/// did not exist then are frozen at the last commit *before* the
/// optimization that targets them (noted per entry), so their speedup
/// still measures the optimization and not a grid change. `wall_s` is the
/// stage's total smoke wall-clock as captured; speedups are computed on
/// the `cases_per_s` *rate*, which stays comparable when a later PR
/// changes a stage's iteration count. Stages added without a capture have
/// no entry and get `null` in `speedup_vs_baseline`.
pub const BASELINE: &[(&str, f64, f64)] = &[
    ("dijkstra_trees_150", 0.000254, 125_880.178),
    ("ksp4_pairs_80", 0.000914, 17_512.981),
    // cases = LP solves (4 solves in 3.708 ms).
    ("simplex_lp2_10router", 0.003708, 1_078.75),
    // cases = LP solves (one 110-second solve, 15_633 Dantzig pivots).
    ("simplex_lp2_15router", 110.040943, 0.009088),
    // The 20/25-router LP2 stages were added together with the sparse-LU
    // simplex core (PR 5); their baselines are one-shot measurements of
    // the dense-inverse core at the PR-4 head (commit beb919a) on the
    // same container, frozen here so the sparse core's scaling claim
    // stays checkable (87.9 s and 807.7 s per solve, respectively).
    ("simplex_lp2_20router", 87.912, 0.011375),
    ("simplex_lp2_25router", 807.698, 0.001238),
    // Frozen at its introduction (PR 6, numerical-robustness pipeline):
    // the stage solves a hostile exact power-of-two rescaling of the
    // 25-router LP2, which the pre-PR-6 core does not solve at all, so
    // there is no earlier measurement to anchor to. The entry exists so
    // the robustness overhead stays visible in the trajectory from here
    // on (one 6.07 s solve on the reference container).
    ("simplex_illcond_25router", 6.065802, 0.165),
    ("greedy_static_15router", 0.000281, 7_115.134),
    ("mecf_bb_15router_k80", 0.848164, 1.179),
    // Scaling-ladder stages, frozen at their introduction (PR 7, enriched
    // MIP search + incremental redundancy pruning): the 50/100-router
    // presets did not exist before, so the entry anchors the trajectory
    // from here on. Both stages run a fixed node budget (25k / 15k), so
    // the rate is a deterministic node-throughput measurement.
    ("exact_scale_50", 2.401, 0.417),
    ("exact_scale_100", 3.033, 0.330),
    // Frozen at its introduction (PR 10, anytime work budgets): the stage
    // did not exist before budgeted solves did, so the entry anchors the
    // trajectory from here on — one 2k-unit degraded solve on the
    // 100-router instance took 0.272 s (3.681 solves/s over the 2-iter
    // smoke run) on the reference container. The rate is deterministic in
    // work units, which is why this stage is gate-stable while the full
    // `exact_scale_100` search (incumbent-luck node counts) is not.
    ("degraded_solve_scale_100", 0.543381, 3.681),
    ("fig7_sweep", 0.814868, 14.726),
    // The three stages below ran with `speedup_vs_baseline: null` from
    // PR 2/3 through PR 4; frozen at their committed PR-4-head
    // BENCH_popmon.json rates so the trajectory is complete from PR 5 on.
    ("fig7_sweep_par4", 0.129509, 92.658),
    ("family_generate_80", 0.014380, 16_689.929),
    ("family_placement_30", 0.282065, 21.272),
    ("fig8_point_k75", 0.370821, 2.697),
    // Captured at the PR-3 head (cold per-point MIP solves, engine grid,
    // memoized per-seed base) just before the warm-start layer landed.
    ("xp_incremental_sweep", 0.382488, 20.916),
    // Frozen at its introduction (PR 8, the popmond resident service):
    // the same 12-request what-if script answered statelessly — per
    // query, rebuild the paper_15/seed-1 instance from its spec, replay
    // the session's mutations, then build and solve a fresh exact model
    // at k = 0.3 — i.e. a batch process per query, which is what the
    // resident warm DeltaInstance chain replaces (60.0 s for one script
    // pass on the reference container; the failed-link states dominate,
    // where a cold solve has no warm vertex to prune from).
    ("popmond_whatif_chain", 60.025598, 0.200),
    // Frozen at its introduction (PR 9, Monte-Carlo resilience
    // campaigns): the same 1000-scenario SRLG ensemble on paper_15
    // scored through `score_ensemble_cold` — an independent PpmInstance
    // rebuilt per scenario — which is what the warm DeltaInstance chain
    // (incremental fail/scale/score/restore, integer hit counters)
    // replaces. One cold pass over the ensemble took 0.154 s on the
    // reference container; the stage's warm rate is gated against this.
    ("resilience_ensemble_1k", 0.153618, 6_509.667),
];

/// A full benchmark run, ready to serialize.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `"smoke"` (CI-sized grid) or `"full"`.
    pub mode: &'static str,
    /// Worker threads the engine-backed stages were allowed to use.
    pub threads: usize,
    /// Seconds since the Unix epoch when the run finished.
    pub generated_unix: u64,
    pub stages: Vec<StageResult>,
}

impl BenchReport {
    /// Total wall-clock seconds across stages.
    pub fn total_wall_s(&self) -> f64 {
        self.stages.iter().map(|s| s.wall_s).sum()
    }

    /// Serializes the report to the `BENCH_popmon.json` schema
    /// (documented in DESIGN.md). Stage names are static identifiers, so
    /// no JSON string escaping is required.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"popmon-bench/1\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"generated_unix\": {},\n", self.generated_unix));
        out.push_str(&format!(
            "  \"total_wall_s\": {:.6},\n",
            self.total_wall_s()
        ));
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_s\": {:.6}, \"iters\": {}, \"cases\": {}, \
                 \"cases_per_s\": {:.3}, \"note\": \"{}\"}}{}\n",
                s.name,
                s.wall_s,
                s.iters,
                s.cases,
                s.cases_per_s(),
                s.note,
                if i + 1 < self.stages.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"baseline\": {\n");
        out.push_str(
            "    \"captured_at\": \"pre-PR2 commit ffa26e6 (serial sweeps, full-scan Dantzig \
             pricing); stages added later frozen pre-optimization (see perf::BASELINE)\",\n",
        );
        out.push_str("    \"stages\": {\n");
        for (i, (name, wall_s, cps)) in BASELINE.iter().enumerate() {
            out.push_str(&format!(
                "      \"{name}\": {{\"wall_s\": {wall_s:.6}, \"cases_per_s\": {cps:.3}}}{}\n",
                if i + 1 < BASELINE.len() { "," } else { "" },
            ));
        }
        out.push_str("    }\n");
        out.push_str("  },\n");
        out.push_str("  \"speedup_vs_baseline\": {\n");
        for (i, s) in self.stages.iter().enumerate() {
            // Rate-based: cases/s is invariant to iteration-count changes
            // (the baseline and today's grid process identical case units).
            let speedup = BASELINE
                .iter()
                .find(|(n, _, _)| *n == s.name)
                .filter(|(_, _, cps)| *cps > 0.0)
                .map(|(_, _, cps)| s.cases_per_s() / cps);
            match speedup {
                Some(x) => out.push_str(&format!("    \"{}\": {:.3}", s.name, x)),
                None => out.push_str(&format!("    \"{}\": null", s.name)),
            }
            out.push_str(if i + 1 < self.stages.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_rates() {
        let s = StageResult {
            name: "x",
            wall_s: 2.0,
            iters: 4,
            cases: 10,
            note: "",
        };
        assert!((s.cases_per_s() - 5.0).abs() < 1e-12);
        let z = StageResult {
            name: "x",
            wall_s: 0.0,
            iters: 1,
            cases: 10,
            note: "",
        };
        assert_eq!(z.cases_per_s(), 0.0);
    }

    #[test]
    fn run_stage_accumulates_cases() {
        let s = run_stage("s", "n", 3, || 7);
        assert_eq!(s.iters, 3);
        assert_eq!(s.cases, 21);
        assert!(s.wall_s >= 0.0);
    }

    #[test]
    fn json_is_wellformed_enough() {
        let r = BenchReport {
            mode: "smoke",
            threads: 2,
            generated_unix: 1_753_000_000,
            stages: vec![
                StageResult {
                    name: "a",
                    wall_s: 1.0,
                    iters: 1,
                    cases: 5,
                    note: "cases",
                },
                StageResult {
                    name: "b",
                    wall_s: 0.5,
                    iters: 2,
                    cases: 4,
                    note: "cases",
                },
            ],
        };
        let j = r.to_json();
        // Structural smoke checks: balanced braces/brackets, key fields.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"schema\": \"popmon-bench/1\""));
        assert!(j.contains("\"total_wall_s\": 1.500000"));
        assert!(j.contains("\"name\": \"a\""));
        assert!(j.contains("\"speedup_vs_baseline\""));
    }
}
