//! Parity regression: the engine-backed experiment sweeps must produce
//! **byte-identical** reports whether they run serially or across a worker
//! pool. This is the determinism contract every future perf PR has to
//! keep.

use engine::Engine;
use popgen::PopSpec;
use popmon_bench::scenarios;

#[test]
fn campaign_sweep_parallel_matches_serial() {
    // The small preset keeps the exact campaign MIP cheap; the 10-router
    // sweep is the binary's job, not the regression suite's.
    let pop = PopSpec::small().build();
    let budgets = [0u32, 50, 100];
    let serial = scenarios::campaign_report(&Engine::serial(), &pop, &budgets, 2);
    let parallel = scenarios::campaign_report(&Engine::with_threads(4), &pop, &budgets, 2);
    assert!(Engine::with_threads(4).threads() >= 2);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    // Sanity: one row per budget point, header intact.
    assert_eq!(serial.rows.len(), budgets.len());
    assert!(serial.header.starts_with("budget_percent,"));
}

#[test]
fn dynamic_traffic_parallel_matches_serial() {
    let pop = PopSpec::paper_10().build();
    let (serial, s_out) = scenarios::dynamic_traffic_report(&Engine::serial(), &pop, 3, 8);
    let (parallel, p_out) = scenarios::dynamic_traffic_report(&Engine::with_threads(3), &pop, 3, 8);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.rows.len(), 3 * 8, "3 seeds x 8 steps, seed-major");
    for (a, b) in s_out.iter().zip(&p_out) {
        assert_eq!(a.devices, b.devices);
        assert_eq!(a.reoptimizations, b.reoptimizations);
    }
}

#[test]
fn active_sweep_parallel_matches_serial() {
    let pop = PopSpec::small().build();
    let (graph, _) = pop.router_subgraph();
    let sizes: Vec<usize> = (2..=graph.node_count()).collect();
    let serial = scenarios::active_report(&Engine::serial(), &graph, &sizes, 2);
    let parallel = scenarios::active_report(&Engine::with_threads(4), &graph, &sizes, 2);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(
        serial.rows.len(),
        graph.node_count() - 1,
        "|V_B| sweeps 2..=n"
    );
}

/// Strips the wall-clock column (see `popmon_bench::strip_last_column`).
fn strip_last_column(csv: String) -> Vec<String> {
    popmon_bench::strip_last_column(csv.lines())
}

#[test]
fn fig7_sweep_parallel_matches_serial() {
    let pop = PopSpec::paper_10().build();
    let serial = scenarios::fig7_report(&Engine::serial(), &pop, &[80, 90], 2);
    let parallel = scenarios::fig7_report(&Engine::with_threads(4), &pop, &[80, 90], 2);
    assert_eq!(
        strip_last_column(serial.to_csv()),
        strip_last_column(parallel.to_csv()),
        "fig7 must be thread-count invariant (modulo the wall-clock column)"
    );
    assert_eq!(serial.rows.len(), 2);
}

#[test]
fn fig8_sweep_parallel_matches_serial() {
    let pop = PopSpec::paper_15().build();
    // k = 75% closes in well under a second; the heavier points belong to
    // the binary.
    let opts = placement::passive::ExactOptions {
        max_nodes: 50_000,
        time_limit: Some(std::time::Duration::from_secs(120)),
        ..Default::default()
    };
    let serial = scenarios::fig8_report(&Engine::serial(), &pop, &[75], 1, &opts);
    let parallel = scenarios::fig8_report(&Engine::with_threads(4), &pop, &[75], 1, &opts);
    assert_eq!(
        strip_last_column(serial.to_csv()),
        strip_last_column(parallel.to_csv()),
        "fig8 must be thread-count invariant (modulo the wall-clock column)"
    );
}

#[test]
fn mecf_ablation_parallel_matches_serial() {
    let pop = PopSpec::paper_10().build();
    let serial = scenarios::mecf_ablation_report(&Engine::serial(), &pop, &[75, 90], 2);
    let parallel = scenarios::mecf_ablation_report(&Engine::with_threads(4), &pop, &[75, 90], 2);
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

#[test]
fn cascade_parallel_matches_serial() {
    let pop = PopSpec::small().build();
    let serial = scenarios::cascade_report(&Engine::serial(), &pop, &[50, 80], 2);
    let parallel = scenarios::cascade_report(&Engine::with_threads(4), &pop, &[50, 80], 2);
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

#[test]
fn sampling_cost_parallel_matches_serial() {
    let pop = PopSpec::small().build();
    let points = [(0u32, 50u32), (20, 60)];
    let opts = placement::sampling::PpmeOptions {
        rel_gap: 0.02,
        time_limit: Some(std::time::Duration::from_secs(60)),
        ..Default::default()
    };
    let serial = scenarios::sampling_cost_report(&Engine::serial(), &pop, &points, 2, &opts);
    let parallel =
        scenarios::sampling_cost_report(&Engine::with_threads(4), &pop, &points, 2, &opts);
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

#[test]
fn incremental_sweeps_parallel_match_serial() {
    let pop = PopSpec::paper_10().build();
    let serial = scenarios::incremental_report(&Engine::serial(), &pop, &[90, 100], 2);
    let parallel = scenarios::incremental_report(&Engine::with_threads(4), &pop, &[90, 100], 2);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    let serial = scenarios::budget_gain_report(&Engine::serial(), &pop, &[1, 3], 2);
    let parallel = scenarios::budget_gain_report(&Engine::with_threads(4), &pop, &[1, 3], 2);
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

/// `engine::Memo` under contention: many threads racing the same key must
/// all observe the *same* stored value (first insert wins), no matter how
/// many builders actually ran.
#[test]
fn memo_racing_threads_observe_one_value() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};

    for round in 0..8u64 {
        let memo = engine::Memo::new();
        let builds = AtomicUsize::new(0);
        let n = 16;
        let barrier = Barrier::new(n);
        let observed: Vec<Arc<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|tid| {
                    let (memo, builds, barrier) = (&memo, &builds, &barrier);
                    scope.spawn(move || {
                        // Line every thread up so the builders genuinely race.
                        barrier.wait();
                        memo.get_or_compute("raced", round, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            // Thread-dependent candidate values: if any
                            // loser's value ever leaked, the assertion
                            // below would catch it.
                            round * 1000 + tid as u64
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .collect()
        });

        let first = &observed[0];
        for v in &observed {
            assert_eq!(**v, **first, "all racers must observe the stored value");
            assert!(Arc::ptr_eq(v, first), "all racers must share one Arc");
        }
        assert!(builds.load(Ordering::Relaxed) >= 1);
        assert_eq!(
            memo.len(),
            1,
            "one entry regardless of how many builders raced"
        );
    }
}

#[test]
fn topology_families_parallel_matches_serial() {
    use popmon_bench::scenarios::FamilyPoint;
    // One point per family plus a second density so cross-point memo/RNG
    // interference would surface; every column is deterministic (the
    // exact solver is node-bounded, never wall-clock-bounded).
    let mut points = Vec::new();
    for family in ["waxman", "ba", "hier"] {
        for density_pct in [60u32, 100] {
            points.push(FamilyPoint {
                family,
                routers: 10,
                density_pct,
            });
        }
    }
    let opts = scenarios::family_exact_options();
    let serial = scenarios::topology_families_report(&Engine::serial(), &points, 2, 0.9, &opts);
    let parallel =
        scenarios::topology_families_report(&Engine::with_threads(4), &points, 2, 0.9, &opts);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.rows.len(), points.len());
    assert!(serial.header.starts_with("family,"));
}

#[test]
fn resilience_parallel_matches_serial() {
    use popmon_bench::scenarios::ResiliencePoint;
    // Two families x two intensities: per-seed chains walk a family's
    // whole intensity group through one warm DeltaInstance, so a
    // thread-count-dependent chain split would surface here.
    let mut points = Vec::new();
    for family in ["waxman", "ba"] {
        for rate_pct in [5u32, 30] {
            points.push(ResiliencePoint {
                family,
                routers: 10,
                rate_pct,
            });
        }
    }
    let serial = scenarios::resilience_report(&Engine::serial(), &points, 2, 24);
    let parallel = scenarios::resilience_report(&Engine::with_threads(4), &points, 2, 24);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.rows.len(), points.len());
    assert!(serial.header.starts_with("family,"));
}

#[test]
fn pipeline_stages_parallel_match_serial_values() {
    use popgen::TrafficSpec;
    let pop = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop, 0);
    let opts = placement::passive::ExactOptions::default();
    let serial =
        scenarios::pipeline_stage_report(&Engine::serial(), &pop, &ts, 0.9, &opts).to_csv();
    let parallel =
        scenarios::pipeline_stage_report(&Engine::with_threads(4), &pop, &ts, 0.9, &opts).to_csv();
    // Timing columns legitimately differ run to run; compare the
    // metric/value columns only.
    assert_eq!(strip_last_column(serial), strip_last_column(parallel));
}
