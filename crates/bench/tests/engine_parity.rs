//! Parity regression: the engine-backed experiment sweeps must produce
//! **byte-identical** reports whether they run serially or across a worker
//! pool. This is the determinism contract every future perf PR has to
//! keep.

use engine::Engine;
use popgen::PopSpec;
use popmon_bench::scenarios;

#[test]
fn campaign_sweep_parallel_matches_serial() {
    // The small preset keeps the exact campaign MIP cheap; the 10-router
    // sweep is the binary's job, not the regression suite's.
    let pop = PopSpec::small().build();
    let budgets = [0u32, 50, 100];
    let serial = scenarios::campaign_report(&Engine::serial(), &pop, &budgets, 2);
    let parallel = scenarios::campaign_report(&Engine::with_threads(4), &pop, &budgets, 2);
    assert!(Engine::with_threads(4).threads() >= 2);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    // Sanity: one row per budget point, header intact.
    assert_eq!(serial.rows.len(), budgets.len());
    assert!(serial.header.starts_with("budget_percent,"));
}

#[test]
fn dynamic_traffic_parallel_matches_serial() {
    let pop = PopSpec::paper_10().build();
    let (serial, s_out) = scenarios::dynamic_traffic_report(&Engine::serial(), &pop, 3, 8);
    let (parallel, p_out) =
        scenarios::dynamic_traffic_report(&Engine::with_threads(3), &pop, 3, 8);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.rows.len(), 3 * 8, "3 seeds x 8 steps, seed-major");
    for (a, b) in s_out.iter().zip(&p_out) {
        assert_eq!(a.devices, b.devices);
        assert_eq!(a.reoptimizations, b.reoptimizations);
    }
}

#[test]
fn active_sweep_parallel_matches_serial() {
    let pop = PopSpec::small().build();
    let (graph, _) = pop.router_subgraph();
    let serial = scenarios::active_report(&Engine::serial(), &graph, 2);
    let parallel = scenarios::active_report(&Engine::with_threads(4), &graph, 2);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.rows.len(), graph.node_count() - 1, "|V_B| sweeps 2..=n");
}

#[test]
fn pipeline_stages_parallel_match_serial_values() {
    use popgen::TrafficSpec;
    let pop = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop, 0);
    let opts = placement::passive::ExactOptions::default();
    let strip_seconds = |csv: String| -> Vec<String> {
        // Timing columns legitimately differ run to run; compare the
        // metric/value columns only.
        csv.lines()
            .map(|l| l.rsplit_once(',').map(|(head, _)| head.to_string()).unwrap_or_default())
            .collect()
    };
    let serial =
        scenarios::pipeline_stage_report(&Engine::serial(), &pop, &ts, 0.9, &opts).to_csv();
    let parallel =
        scenarios::pipeline_stage_report(&Engine::with_threads(4), &pop, &ts, 0.9, &opts).to_csv();
    assert_eq!(strip_seconds(serial), strip_seconds(parallel));
}
