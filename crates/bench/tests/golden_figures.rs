//! Golden regression tests pinning the deterministic seed-0 outputs of the
//! passive placement figures (the `fig7_passive_10` / `fig8_passive_15`
//! logic), so future solver refactors cannot silently change the paper's
//! reproduced results.
//!
//! The pinned integers were produced by the frozen seed-0 pipeline:
//! `TrafficSpec::default().generate(&pop, 0)` through the in-tree `rand`
//! shim (xoshiro256** / SplitMix64 — platform-independent), then the
//! greedy and exact passive solvers. If a change moves any of these
//! numbers, either it introduced a bug or it deliberately changed solver /
//! generator semantics — in the latter case re-derive the constants with
//! `cargo run --release -p popmon-bench --bin fig7_passive_10 -- --seeds 1`
//! (and fig8), and say so in the changelog.

use placement::instance::PpmInstance;
use placement::passive::{greedy_static, solve_ppm_exact, solve_ppm_mecf_bb, ExactOptions};
use popgen::{PopSpec, TrafficSpec};

/// Figure 7 (10-router POP, 27 links, 132 traffics), seed 0: greedy and
/// exact ILP device counts over the paper's k sweep.
#[test]
fn fig7_passive_10_golden_seed0() {
    let pop = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop, 0);
    assert_eq!(pop.graph.edge_count(), 27, "paper_10 POP has 27 links");
    assert_eq!(ts.len(), 132, "paper_10 traffic matrix has 132 traffics");

    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    let golden = [(75, 8, 4), (80, 8, 5), (85, 10, 5), (90, 13, 6), (95, 15, 7), (100, 18, 11)];
    for (k_pct, greedy_want, ilp_want) in golden {
        let k = k_pct as f64 / 100.0;
        let g = greedy_static(&inst, k).expect("coverable");
        assert_eq!(
            g.device_count(),
            greedy_want,
            "fig7 greedy device count moved at k = {k_pct}%"
        );
        assert!(inst.is_feasible(&g.edges, k));
        let ilp = solve_ppm_exact(&inst, k, &ExactOptions::default()).expect("feasible");
        assert_eq!(
            ilp.device_count(),
            ilp_want,
            "fig7 exact device count moved at k = {k_pct}%"
        );
        assert!(inst.is_feasible(&ilp.edges, k));
        assert!(ilp.proven_optimal, "fig7 exact solve must close at k = {k_pct}%");
    }
}

/// Figure 8 (15-router POP, 71 links, 1980 traffics), seed 0: the greedy
/// sweep plus one proven exact point (k = 75%, where the MECF
/// branch-and-bound closes quickly; the slower unproven points belong to
/// the binary, not the regression suite).
#[test]
fn fig8_passive_15_golden_seed0() {
    let pop = PopSpec::paper_15().build();
    let ts = TrafficSpec::default().generate(&pop, 0);
    assert_eq!(pop.graph.edge_count(), 71, "paper_15 POP has 71 links");
    assert_eq!(ts.len(), 1980, "paper_15 traffic matrix has 1980 traffics");

    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    let golden_greedy = [(75, 13), (80, 14), (85, 15), (90, 18), (95, 32), (100, 57)];
    for (k_pct, want) in golden_greedy {
        let k = k_pct as f64 / 100.0;
        let g = greedy_static(&inst, k).expect("coverable");
        assert_eq!(g.device_count(), want, "fig8 greedy device count moved at k = {k_pct}%");
        assert!(inst.is_feasible(&g.edges, k));
    }

    let opts = ExactOptions {
        max_nodes: 50_000,
        time_limit: Some(std::time::Duration::from_secs(120)),
        ..Default::default()
    };
    let s = solve_ppm_mecf_bb(&inst, 0.75, &opts).expect("feasible");
    assert_eq!(s.device_count(), 9, "fig8 exact device count moved at k = 75%");
    assert!(s.proven_optimal, "fig8 exact k = 75% must close within the node budget");
    assert!(inst.is_feasible(&s.edges, 0.75));
}

/// The traffic generator itself is part of the figures' determinism
/// contract: same seed, same matrix; different seeds, different matrices.
#[test]
fn traffic_generation_is_deterministic() {
    let pop = PopSpec::paper_10().build();
    let a = TrafficSpec::default().generate(&pop, 7);
    let b = TrafficSpec::default().generate(&pop, 7);
    let c = TrafficSpec::default().generate(&pop, 8);
    let volumes = |ts: &popgen::TrafficSet| -> Vec<u64> {
        ts.traffics.iter().map(|t| t.volume.to_bits()).collect()
    };
    assert_eq!(volumes(&a), volumes(&b), "same seed must reproduce the same matrix");
    assert_ne!(volumes(&a), volumes(&c), "different seeds must differ");
}
