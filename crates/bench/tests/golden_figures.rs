//! Golden regression tests pinning the deterministic seed-0 outputs of the
//! passive placement figures (the `fig7_passive_10` / `fig8_passive_15`
//! logic), so future solver refactors cannot silently change the paper's
//! reproduced results.
//!
//! The pinned integers were produced by the frozen seed-0 pipeline:
//! `TrafficSpec::default().generate(&pop, 0)` through the in-tree `rand`
//! shim (xoshiro256** / SplitMix64 — platform-independent), then the
//! greedy and exact passive solvers. If a change moves any of these
//! numbers, either it introduced a bug or it deliberately changed solver /
//! generator semantics — in the latter case re-derive the constants with
//! `cargo run --release -p popmon-bench --bin fig7_passive_10 -- --seeds 1`
//! (and fig8), and say so in the changelog.

use engine::Engine;
use placement::instance::PpmInstance;
use placement::passive::{greedy_static, solve_ppm_exact, solve_ppm_mecf_bb, ExactOptions};
use placement::sampling::PpmeOptions;
use popgen::{PopSpec, TrafficSpec};
use popmon_bench::scenarios;

/// Strips the wall-clock column (see `popmon_bench::strip_last_column`).
fn strip_last_column(rows: &[String]) -> Vec<String> {
    popmon_bench::strip_last_column(rows.iter().map(|r| r.as_str()))
}

/// Figure 7 (10-router POP, 27 links, 132 traffics), seed 0: greedy and
/// exact ILP device counts over the paper's k sweep.
#[test]
fn fig7_passive_10_golden_seed0() {
    let pop = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop, 0);
    assert_eq!(pop.graph.edge_count(), 27, "paper_10 POP has 27 links");
    assert_eq!(ts.len(), 132, "paper_10 traffic matrix has 132 traffics");

    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    let golden = [
        (75, 8, 4),
        (80, 8, 5),
        (85, 10, 5),
        (90, 13, 6),
        (95, 15, 7),
        (100, 18, 11),
    ];
    for (k_pct, greedy_want, ilp_want) in golden {
        let k = k_pct as f64 / 100.0;
        let g = greedy_static(&inst, k).expect("coverable");
        assert_eq!(
            g.device_count(),
            greedy_want,
            "fig7 greedy device count moved at k = {k_pct}%"
        );
        assert!(inst.is_feasible(&g.edges, k));
        let ilp = solve_ppm_exact(&inst, k, &ExactOptions::default()).expect("feasible");
        assert_eq!(
            ilp.device_count(),
            ilp_want,
            "fig7 exact device count moved at k = {k_pct}%"
        );
        assert!(inst.is_feasible(&ilp.edges, k));
        assert!(
            ilp.proven_optimal,
            "fig7 exact solve must close at k = {k_pct}%"
        );
    }
}

/// Figure 8 (15-router POP, 71 links, 1980 traffics), seed 0: the greedy
/// sweep plus one proven exact point (k = 75%, where the MECF
/// branch-and-bound closes quickly; the slower unproven points belong to
/// the binary, not the regression suite).
#[test]
fn fig8_passive_15_golden_seed0() {
    let pop = PopSpec::paper_15().build();
    let ts = TrafficSpec::default().generate(&pop, 0);
    assert_eq!(pop.graph.edge_count(), 71, "paper_15 POP has 71 links");
    assert_eq!(ts.len(), 1980, "paper_15 traffic matrix has 1980 traffics");

    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    let golden_greedy = [(75, 13), (80, 14), (85, 15), (90, 18), (95, 32), (100, 57)];
    for (k_pct, want) in golden_greedy {
        let k = k_pct as f64 / 100.0;
        let g = greedy_static(&inst, k).expect("coverable");
        assert_eq!(
            g.device_count(),
            want,
            "fig8 greedy device count moved at k = {k_pct}%"
        );
        assert!(inst.is_feasible(&g.edges, k));
    }

    let opts = ExactOptions {
        max_nodes: 50_000,
        time_limit: Some(std::time::Duration::from_secs(120)),
        ..Default::default()
    };
    let s = solve_ppm_mecf_bb(&inst, 0.75, &opts).expect("feasible");
    assert_eq!(
        s.device_count(),
        9,
        "fig8 exact device count moved at k = 75%"
    );
    assert!(
        s.proven_optimal,
        "fig8 exact k = 75% must close within the node budget"
    );
    assert!(inst.is_feasible(&s.edges, 0.75));
}

/// Figure 7 at the report level: the full engine-backed sweep, seed 0,
/// every column except the trailing wall-clock. Complements the
/// solver-level pins above by also freezing the CSV rendering.
#[test]
fn fig7_report_golden_seed0() {
    let pop = PopSpec::paper_10().build();
    let r = scenarios::fig7_report(&Engine::serial(), &pop, &[75, 80, 85, 90, 95, 100], 1);
    assert_eq!(
        strip_last_column(&r.rows),
        [
            "75,8.00,4.00,0.00,0.00",
            "80,8.00,5.00,0.00,0.00",
            "85,10.00,5.00,0.00,0.00",
            "90,13.00,6.00,0.00,0.00",
            "95,15.00,7.00,0.00,0.00",
            "100,18.00,11.00,0.00,0.00",
        ],
        "fig7 seed-0 report rows moved"
    );
}

/// Figure 8 at the report level, seed 0, on the two k-points the MECF
/// branch-and-bound closes quickly (the slower unproven points belong to
/// the binary, not the regression suite).
#[test]
fn fig8_report_golden_seed0() {
    let pop = PopSpec::paper_15().build();
    let opts = ExactOptions {
        max_nodes: 50_000,
        time_limit: Some(std::time::Duration::from_secs(120)),
        ..Default::default()
    };
    let r = scenarios::fig8_report(&Engine::serial(), &pop, &[75, 80], 1, &opts);
    assert_eq!(
        strip_last_column(&r.rows),
        ["75,13.00,9.00,1.00", "80,14.00,10.00,1.00"],
        "fig8 seed-0 report rows moved"
    );
}

/// Figure 9 (15-router POP), seed 0: the full `|V_B|` sweep — Thiran,
/// greedy, and ILP beacon counts plus the probe-set size per point.
#[test]
fn fig9_active_15_golden_seed0() {
    let pop = PopSpec::paper_15().build();
    let (graph, _) = pop.router_subgraph();
    let sizes: Vec<usize> = (2..=graph.node_count()).collect();
    let r = scenarios::active_report(&Engine::serial(), &graph, &sizes, 1);
    assert_eq!(
        r.rows,
        [
            "2,1.00,1.00,1.00,1.0",
            "3,2.00,2.00,2.00,3.0",
            "4,2.00,2.00,2.00,2.0",
            "5,4.00,2.00,2.00,4.0",
            "6,4.00,3.00,3.00,6.0",
            "7,4.00,3.00,3.00,6.0",
            "8,4.00,3.00,3.00,7.0",
            "9,6.00,5.00,4.00,8.0",
            "10,6.00,4.00,4.00,9.0",
            "11,6.00,5.00,5.00,10.0",
            "12,7.00,6.00,6.00,11.0",
            "13,10.00,6.00,6.00,13.0",
            "14,10.00,7.00,7.00,12.0",
            "15,10.00,8.00,7.00,13.0",
        ],
        "fig9 seed-0 beacon counts moved"
    );
}

/// Figures 10 and 11 (29- and 80-router POPs), seed 0: representative
/// `|V_B|` points of each sweep (a case depends only on its own
/// `(size, seed)`, so these rows are byte-identical to the full sweep's).
#[test]
fn fig10_fig11_active_golden_seed0() {
    let (g29, _) = PopSpec::paper_29().build().router_subgraph();
    let r29 = scenarios::active_report(&Engine::serial(), &g29, &[10, 20, 29], 1);
    assert_eq!(
        r29.rows,
        [
            "10,6.00,5.00,5.00,11.0",
            "20,10.00,8.00,7.00,13.0",
            "29,16.00,11.00,11.00,19.0"
        ],
        "fig10 seed-0 beacon counts moved"
    );

    let (g80, _) = PopSpec::paper_80().build().router_subgraph();
    let r80 = scenarios::active_report(&Engine::serial(), &g80, &[10, 40, 80], 1);
    assert_eq!(
        r80.rows,
        [
            "10,4.00,4.00,4.00,10.0",
            "40,19.00,18.00,16.00,26.0",
            "80,39.00,33.00,33.00,53.0"
        ],
        "fig11 seed-0 beacon counts moved"
    );
}

/// The MECF ablation (section 4.3), seed 0: all five solvers across the
/// full k sweep on the 10-router POP.
#[test]
fn mecf_ablation_golden_seed0() {
    let pop = PopSpec::paper_10().build();
    let r = scenarios::mecf_ablation_report(
        &Engine::serial(),
        &pop,
        &[60, 70, 75, 80, 85, 90, 95, 100],
        1,
    );
    assert_eq!(
        r.rows,
        [
            "60,4.00,3.00,4.00,3.00,3.00",
            "70,7.00,4.00,7.00,4.00,4.00",
            "75,8.00,4.00,8.00,4.00,4.00",
            "80,8.00,5.00,8.00,5.00,5.00",
            "85,10.00,5.00,9.00,5.00,5.00",
            "90,13.00,6.00,10.00,6.00,6.00",
            "95,15.00,7.00,12.00,7.00,7.00",
            "100,18.00,11.00,14.00,11.00,11.00",
        ],
        "mecf ablation seed-0 device counts moved"
    );
}

/// The cascade experiment (section 7 extension), seed 0: additive vs.
/// independent-sampling costs across k on the small POP.
#[test]
fn cascade_golden_seed0() {
    let pop = PopSpec::small().build();
    let r = scenarios::cascade_report(&Engine::serial(), &pop, &[40, 50, 60, 70, 80, 90], 1);
    assert_eq!(
        r.rows,
        [
            "40,1.21,1.21,0.0,40.0",
            "50,1.27,1.27,0.0,50.0",
            "60,1.32,1.32,0.0,60.0",
            "70,1.37,1.37,0.0,70.0",
            "80,1.42,1.42,0.0,80.0",
            "90,1.48,1.48,0.0,90.0",
        ],
        "cascade seed-0 costs moved"
    );
}

/// The PPME(h,k) cost sweep (section 5 extension), seed 0: device counts
/// and the setup/exploit cost split over the (h, k) grid.
#[test]
fn sampling_cost_golden_seed0() {
    let pop = PopSpec::small().build();
    let points: Vec<(u32, u32)> =
        [(0u32, 40u32), (0, 60), (0, 80), (0, 95), (20, 40), (20, 80)].to_vec();
    let opts = PpmeOptions {
        rel_gap: 0.02,
        time_limit: Some(std::time::Duration::from_secs(60)),
        ..Default::default()
    };
    let r = scenarios::sampling_cost_report(&Engine::serial(), &pop, &points, 1, &opts);
    assert_eq!(
        r.rows,
        [
            "40,0,1.00,1.00,0.21,1.21",
            "60,0,1.00,1.00,0.32,1.32",
            "80,0,1.00,1.00,0.42,1.42",
            "95,0,2.00,2.00,0.63,2.63",
            "40,20,5.00,5.00,0.50,5.50",
            "80,20,5.00,5.00,0.71,5.71",
        ],
        "sampling-cost seed-0 rows moved"
    );
}

/// The incremental-deployment experiment, seed 0: frozen-device upgrade
/// totals and the buy-devices coverage gains.
#[test]
fn incremental_golden_seed0() {
    let pop = PopSpec::paper_10().build();
    let up = scenarios::incremental_report(&Engine::serial(), &pop, &[85, 90, 95, 100], 1);
    assert_eq!(
        up.rows,
        [
            "upgrade_to_k,85,5.00,5.00,0.00",
            "upgrade_to_k,90,6.00,6.00,0.00",
            "upgrade_to_k,95,7.00,7.00,0.00",
            "upgrade_to_k,100,11.00,11.00,0.00",
        ],
        "incremental seed-0 upgrade rows moved"
    );
    let gain = scenarios::budget_gain_report(&Engine::serial(), &pop, &[1, 3, 5], 1);
    assert_eq!(
        gain.rows,
        [
            "buy_devices,1,39.07,91.60,0",
            "buy_devices,3,75.33,97.13,0",
            "buy_devices,5,89.45,99.28,0",
        ],
        "incremental seed-0 gain rows moved"
    );
}

/// The instance-space sweep (`xp_topology_families`), seed 0: one small
/// instance per family. These rows freeze the *generators* (Waxman /
/// Barabási–Albert / hierarchical ISP edge sampling and the gravity
/// traffic model) on top of the solvers: a moved row means family
/// generation or solver semantics changed and must be re-derived
/// deliberately (`cargo run --release -p popmon-bench --bin
/// xp_topology_families -- --seeds 1`).
#[test]
fn topology_families_golden_seed0() {
    use popmon_bench::scenarios::FamilyPoint;
    let points = [
        FamilyPoint {
            family: "waxman",
            routers: 10,
            density_pct: 60,
        },
        FamilyPoint {
            family: "ba",
            routers: 10,
            density_pct: 60,
        },
        FamilyPoint {
            family: "hier",
            routers: 10,
            density_pct: 60,
        },
    ];
    let opts = scenarios::family_exact_options();
    let r = scenarios::topology_families_report(&Engine::serial(), &points, 1, 0.9, &opts);
    assert_eq!(
        r.rows,
        [
            "waxman,10,60,19.0,3.00,3.00,4.00",
            "ba,10,60,20.0,3.00,3.00,5.00",
            "hier,10,60,22.0,3.00,3.00,6.00",
        ],
        "family sweep seed-0 rows moved"
    );
}

/// The resilience campaign sweep (`xp_resilience`), seed 0: the shipped
/// binary's full default grid. These rows freeze the SRLG failure
/// sampler, the diurnal demand perturbation, the warm-chain ensemble
/// scorer, and both rival placements (the deterministic exact `PPM(0.9)`
/// optimum and the ensemble-aware `greedy_expected`) on top of the
/// family generators. They also pin the sweep's headline claim: the
/// stochastic-aware greedy beats the failure-blind optimum on expected
/// coverage wherever failures actually bite (e.g. every family at
/// `rate_pct = 15`). Re-derive deliberately with `cargo run --release
/// -p popmon-bench --bin xp_resilience -- --seeds 1`.
#[test]
fn resilience_golden_seed0() {
    use popmon_bench::scenarios::ResiliencePoint;
    let mut points = Vec::new();
    for family in ["waxman", "ba", "hier"] {
        for rate_pct in [0u32, 5, 15, 30] {
            points.push(ResiliencePoint {
                family,
                routers: 12,
                rate_pct,
            });
        }
    }
    let r = scenarios::resilience_report(&Engine::serial(), &points, 1, 64);
    assert_eq!(
        r.rows,
        [
            "waxman,12,0,3.00,0.9050,0.6119,0.6119,0.9050,0.6119,0.6119",
            "waxman,12,5,3.00,0.8778,0.3093,0.3093,0.8778,0.3093,0.3093",
            "waxman,12,15,3.00,0.7962,0.0000,0.0000,0.8031,0.3235,0.3235",
            "waxman,12,30,3.00,0.5979,0.0000,0.0000,0.6171,0.0000,0.0000",
            "ba,12,0,3.00,0.9020,0.7778,0.7778,0.9020,0.7778,0.7778",
            "ba,12,5,3.00,0.8358,0.0000,0.0000,0.8543,0.3896,0.3896",
            "ba,12,15,3.00,0.6679,0.0000,0.0000,0.7475,0.0000,0.0000",
            "ba,12,30,3.00,0.6060,0.0000,0.0000,0.6692,0.0000,0.0000",
            "hier,12,0,3.00,0.9043,0.6090,0.6090,0.9043,0.6090,0.6090",
            "hier,12,5,3.00,0.8812,0.3948,0.3948,0.8907,0.3948,0.3948",
            "hier,12,15,3.00,0.8037,0.2015,0.2015,0.8134,0.3390,0.3390",
            "hier,12,30,3.00,0.6432,0.0000,0.0000,0.6509,0.0000,0.0000",
        ],
        "resilience sweep seed-0 rows moved"
    );
    // The acceptance claim, asserted structurally rather than by eye:
    // at every 15%-intensity point the ensemble-aware greedy's expected
    // coverage strictly beats the deterministic optimum's.
    for row in r.rows.iter().filter(|row| row.contains(",15,")) {
        let cols: Vec<&str> = row.split(',').collect();
        let det: f64 = cols[4].parse().expect("det_expected parses");
        let sto: f64 = cols[7].parse().expect("sto_expected parses");
        assert!(
            sto > det,
            "stochastic greedy must beat the deterministic optimum at 15%: {row}"
        );
    }
}

/// The traffic generator itself is part of the figures' determinism
/// contract: same seed, same matrix; different seeds, different matrices.
#[test]
fn traffic_generation_is_deterministic() {
    let pop = PopSpec::paper_10().build();
    let a = TrafficSpec::default().generate(&pop, 7);
    let b = TrafficSpec::default().generate(&pop, 7);
    let c = TrafficSpec::default().generate(&pop, 8);
    let volumes = |ts: &popgen::TrafficSet| -> Vec<u64> {
        ts.traffics.iter().map(|t| t.volume.to_bits()).collect()
    };
    assert_eq!(
        volumes(&a),
        volumes(&b),
        "same seed must reproduce the same matrix"
    );
    assert_ne!(volumes(&a), volumes(&c), "different seeds must differ");
}
