//! Property tests for the flow crate: max-flow equals min-cut on random
//! networks (checked against a brute-force cut enumeration), min-cost flow
//! is never cheaper than any feasible integral routing, and conservation
//! always holds.

use mcmf::maxflow::max_flow;
use mcmf::mincost::min_cost_flow;
use mcmf::{FlowNetwork, NodeRef};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomNet {
    nodes: usize,
    arcs: Vec<(usize, usize, f64, f64)>, // (from, to, cap, cost)
}

fn networks() -> impl Strategy<Value = RandomNet> {
    (3usize..=7).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0.5f64..8.0, 0.0f64..5.0), 2..=14)
            .prop_map(move |arcs| RandomNet { nodes: n, arcs })
    })
}

fn build(rn: &RandomNet) -> FlowNetwork {
    let mut net = FlowNetwork::new(rn.nodes);
    for &(u, v, cap, cost) in &rn.arcs {
        if u != v {
            net.add_arc(NodeRef(u as u32), NodeRef(v as u32), cap, cost);
        }
    }
    net
}

/// Brute-force min s-t cut over all node bipartitions.
fn brute_min_cut(rn: &RandomNet, s: usize, t: usize) -> f64 {
    let n = rn.nodes;
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << n) {
        if mask >> s & 1 == 0 || mask >> t & 1 == 1 {
            continue; // s must be on the source side, t on the sink side
        }
        let mut cut = 0.0;
        for &(u, v, cap, _) in &rn.arcs {
            if u != v && mask >> u & 1 == 1 && mask >> v & 1 == 0 {
                cut += cap;
            }
        }
        best = best.min(cut);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn maxflow_equals_brute_min_cut(rn in networks()) {
        let s = 0;
        let t = rn.nodes - 1;
        let mut net = build(&rn);
        let flow = max_flow(&mut net, NodeRef(s as u32), NodeRef(t as u32));
        let cut = brute_min_cut(&rn, s, t);
        prop_assert!((flow - cut).abs() < 1e-6, "flow {flow} vs cut {cut}");
        net.check_conservation(NodeRef(s as u32), NodeRef(t as u32)).unwrap();
    }

    #[test]
    fn mincost_flow_conserves_and_prices_consistently(rn in networks(), demand in 0.1f64..6.0) {
        let s = NodeRef(0);
        let t = NodeRef(rn.nodes as u32 - 1);
        let mut net = build(&rn);
        let r = min_cost_flow(&mut net, s, t, demand);
        prop_assert!(r.flow <= demand + 1e-9);
        let net_flow = net.check_conservation(s, t).unwrap();
        prop_assert!((net_flow - r.flow).abs() < 1e-6);
        prop_assert!((net.flow_cost() - r.cost).abs() < 1e-6);
        // Cost must be non-negative with non-negative arc costs.
        prop_assert!(r.cost >= -1e-9);
    }

    #[test]
    fn mincost_never_exceeds_maxflow(rn in networks()) {
        let s = NodeRef(0);
        let t = NodeRef(rn.nodes as u32 - 1);
        let mut net1 = build(&rn);
        let mf = max_flow(&mut net1, s, t);
        let mut net2 = build(&rn);
        let r = min_cost_flow(&mut net2, s, t, f64::MAX);
        prop_assert!((r.flow - mf).abs() < 1e-6, "min-cost max-flow routes the max flow");
    }

    #[test]
    fn more_demand_never_cheaper(rn in networks()) {
        let s = NodeRef(0);
        let t = NodeRef(rn.nodes as u32 - 1);
        let mut net1 = build(&rn);
        let r1 = min_cost_flow(&mut net1, s, t, 1.0);
        let mut net2 = build(&rn);
        let r2 = min_cost_flow(&mut net2, s, t, 3.0);
        if (r2.flow - 3.0).abs() < 1e-9 && (r1.flow - 1.0).abs() < 1e-9 {
            prop_assert!(r2.cost >= r1.cost - 1e-9, "cost is monotone in routed volume");
        }
    }
}
