//! Property tests for min-cost flow against a brute-force oracle.
//!
//! Networks are kept tiny with *integer* capacities and costs so the
//! oracle can enumerate every integral flow vector exactly: min-cost flow
//! on integral data has an integral optimum, so the enumeration is a true
//! optimum, not a bound. Checked invariants:
//!
//! * **routed amount** — the solver routes `min(demand, max-flow)`, where
//!   max-flow is the oracle's best feasible value;
//! * **cost optimality** — when the demand is met, the solver's cost
//!   equals the enumerated minimum over all feasible integral flows of
//!   that value;
//! * **flow conservation** — every intermediate node balances, and the
//!   network's own accounting (`flow_cost`) agrees with the reported cost.

use mcmf::mincost::min_cost_flow;
use mcmf::{FlowNetwork, NodeRef};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct IntNet {
    nodes: usize,
    /// `(from, to, cap, cost)` with `cap ∈ 1..=2`, `cost ∈ 0..=4`.
    arcs: Vec<(usize, usize, u32, u32)>,
}

fn int_networks() -> impl Strategy<Value = IntNet> {
    (3usize..=5).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 1u32..=2, 0u32..=4), 2..=8).prop_map(move |arcs| {
            IntNet {
                nodes: n,
                arcs: arcs.into_iter().filter(|&(u, v, _, _)| u != v).collect(),
            }
        })
    })
}

fn build(rn: &IntNet) -> FlowNetwork {
    let mut net = FlowNetwork::new(rn.nodes);
    for &(u, v, cap, cost) in &rn.arcs {
        net.add_arc(
            NodeRef(u as u32),
            NodeRef(v as u32),
            cap as f64,
            cost as f64,
        );
    }
    net
}

/// Exhaustive oracle: enumerates every integral flow vector
/// (`f[a] ∈ 0..=cap(a)`), keeping, per feasible flow value, the minimum
/// cost. Returns `(max_value, min_cost_at_value)` where the map is indexed
/// by value (`0..=max_value`).
fn brute_force(rn: &IntNet, s: usize, t: usize) -> (u32, Vec<u32>) {
    let arcs = &rn.arcs;
    let mut best: Vec<Option<u32>> = vec![None; 1];
    let mut f = vec![0u32; arcs.len()];
    loop {
        // Evaluate the current vector.
        let mut net_out = vec![0i64; rn.nodes];
        let mut cost = 0u64;
        for (i, &(u, v, _, c)) in arcs.iter().enumerate() {
            net_out[u] += f[i] as i64;
            net_out[v] -= f[i] as i64;
            cost += (f[i] * c) as u64;
        }
        let conserved = (0..rn.nodes).all(|n| n == s || n == t || net_out[n] == 0);
        if conserved && net_out[s] >= 0 && net_out[s] == -net_out[t] {
            let value = net_out[s] as usize;
            if best.len() <= value {
                best.resize(value + 1, None);
            }
            let cost = cost as u32;
            if best[value].is_none_or(|c| cost < c) {
                best[value] = Some(cost);
            }
        }
        // Odometer increment over 0..=cap per arc.
        let mut i = 0;
        loop {
            if i == arcs.len() {
                let max_value = best.len() as u32 - 1;
                let costs = best
                    .iter()
                    .map(|c| c.expect("every value below max is feasible"))
                    .collect();
                return (max_value, costs);
            }
            if f[i] < arcs[i].2 {
                f[i] += 1;
                break;
            }
            f[i] = 0;
            i += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn mincost_matches_brute_force_oracle(rn in int_networks(), demand in 1u32..=3) {
        let s = 0usize;
        let t = rn.nodes - 1;
        let (max_value, min_costs) = brute_force(&rn, s, t);
        let mut net = build(&rn);
        let r = min_cost_flow(&mut net, NodeRef(s as u32), NodeRef(t as u32), demand as f64);

        // Routed amount: min(demand, max-flow), and integral on this data.
        let want_flow = demand.min(max_value);
        prop_assert!(
            (r.flow - want_flow as f64).abs() < 1e-6,
            "routed {} but oracle says min(demand {demand}, max {max_value})",
            r.flow
        );

        // Cost optimality at the routed value.
        let want_cost = min_costs[want_flow as usize];
        prop_assert!(
            (r.cost - want_cost as f64).abs() < 1e-6,
            "cost {} vs oracle optimum {want_cost} at value {want_flow}",
            r.cost
        );
    }

    #[test]
    fn mincost_conserves_flow_and_accounting(rn in int_networks(), demand in 1u32..=3) {
        let s = NodeRef(0);
        let t = NodeRef(rn.nodes as u32 - 1);
        let mut net = build(&rn);
        let r = min_cost_flow(&mut net, s, t, demand as f64);
        // Conservation at every intermediate node; source/sink balance.
        let net_flow = net.check_conservation(s, t).unwrap();
        prop_assert!((net_flow - r.flow).abs() < 1e-6);
        // The network's arc-level accounting agrees with the result.
        prop_assert!((net.flow_cost() - r.cost).abs() < 1e-6);
        // No arc exceeds its capacity.
        for i in 0..net.arc_count() {
            let a = mcmf::ArcId(i as u32);
            prop_assert!(net.flow(a) <= net.arc_capacity(a) + 1e-9);
            prop_assert!(net.flow(a) >= -1e-9);
        }
    }

    #[test]
    fn mincost_cost_is_monotone_in_value(rn in int_networks()) {
        // Successively larger demands can never get cheaper (costs are
        // non-negative), and the oracle's per-value optima agree.
        let s = NodeRef(0);
        let t = NodeRef(rn.nodes as u32 - 1);
        let (max_value, min_costs) = brute_force(&rn, 0, rn.nodes - 1);
        let mut prev_cost = 0.0f64;
        for d in 1..=max_value.min(3) {
            let mut net = build(&rn);
            let r = min_cost_flow(&mut net, s, t, d as f64);
            prop_assert!((r.flow - d as f64).abs() < 1e-6);
            prop_assert!((r.cost - min_costs[d as usize] as f64).abs() < 1e-6);
            prop_assert!(r.cost >= prev_cost - 1e-9, "cost must be monotone in routed value");
            prev_cost = r.cost;
        }
    }
}
