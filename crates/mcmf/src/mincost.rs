//! Minimum-cost flow by successive shortest paths with node potentials.
//!
//! The first potential vector comes from a Bellman–Ford pass (costs may be
//! negative in general networks); afterwards every augmentation uses
//! Dijkstra on reduced costs, which are non-negative by induction. This is
//! the polynomial workhorse behind the paper's Section 5.4: *"it is worthy
//! to note that this problem can be expressed as a minimum cost flow problem
//! for which efficient polynomial time algorithms are available without the
//! need of linear programming anymore."*

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::network::FlowNetwork;
use crate::{NodeRef, FLOW_EPS};

/// Outcome of a min-cost flow computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowResult {
    /// Units actually routed (≤ the request when the network saturates).
    pub flow: f64,
    /// Total cost `Σ flow(a) · cost(a)` of the routed flow.
    pub cost: f64,
}

/// Routes up to `demand` units from `source` to `sink` at minimum cost,
/// in place. Returns the routed amount and its cost.
///
/// The routed amount is `min(demand, max-flow)`; callers needing an exact
/// demand should compare [`FlowResult::flow`] against it.
///
/// # Panics
///
/// Panics when `demand` is negative or NaN, or on out-of-range nodes.
pub fn min_cost_flow(
    net: &mut FlowNetwork,
    source: NodeRef,
    sink: NodeRef,
    demand: f64,
) -> FlowResult {
    assert!(
        !demand.is_nan() && demand >= 0.0,
        "demand must be non-negative"
    );
    assert!(source.index() < net.node_count(), "source out of range");
    assert!(sink.index() < net.node_count(), "sink out of range");
    let n = net.node_count();
    let mut routed = 0.0f64;
    let mut cost = 0.0f64;
    if demand <= FLOW_EPS || source == sink {
        return FlowResult {
            flow: 0.0,
            cost: 0.0,
        };
    }

    // Initial potentials via Bellman–Ford over residual arcs (handles
    // negative arc costs; all-zero when costs are non-negative would also
    // work but this is uniform).
    let mut pot = vec![0.0f64; n];
    for _ in 0..n {
        let mut any = false;
        for u in 0..n {
            for &ai in &net.adj[u] {
                let a = &net.arcs[ai as usize];
                if a.cap > FLOW_EPS && pot[u] + a.cost < pot[a.to as usize] - 1e-12 {
                    pot[a.to as usize] = pot[u] + a.cost;
                    any = true;
                }
            }
        }
        if !any {
            break;
        }
    }

    #[derive(PartialEq)]
    struct Entry {
        d: f64,
        u: u32,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, o: &Self) -> Ordering {
            o.d.partial_cmp(&self.d)
                .unwrap_or(Ordering::Equal)
                .then_with(|| o.u.cmp(&self.u))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
            Some(self.cmp(o))
        }
    }

    while routed < demand - FLOW_EPS {
        // Dijkstra with reduced costs.
        let mut dist = vec![f64::INFINITY; n];
        let mut pred: Vec<Option<u32>> = vec![None; n]; // arc used to reach
        let mut done = vec![false; n];
        dist[source.index()] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(Entry {
            d: 0.0,
            u: source.0,
        });
        while let Some(Entry { d, u }) = heap.pop() {
            if done[u as usize] {
                continue;
            }
            done[u as usize] = true;
            for &ai in &net.adj[u as usize] {
                let a = &net.arcs[ai as usize];
                if a.cap <= FLOW_EPS || done[a.to as usize] {
                    continue;
                }
                let rc = a.cost + pot[u as usize] - pot[a.to as usize];
                let nd = d + rc.max(0.0); // clamp tiny negatives from fp noise
                if nd < dist[a.to as usize] - 1e-12 {
                    dist[a.to as usize] = nd;
                    pred[a.to as usize] = Some(ai);
                    heap.push(Entry { d: nd, u: a.to });
                }
            }
        }

        if !dist[sink.index()].is_finite() {
            break; // saturated
        }

        // Update potentials.
        for u in 0..n {
            if dist[u].is_finite() {
                pot[u] += dist[u];
            }
        }

        // Bottleneck along the augmenting path.
        let mut push = demand - routed;
        let mut v = sink.0;
        while v != source.0 {
            let ai = pred[v as usize].expect("path exists");
            push = push.min(net.arcs[ai as usize].cap);
            v = net.arcs[(ai ^ 1) as usize].to;
        }
        debug_assert!(push > FLOW_EPS);

        // Apply.
        let mut v = sink.0;
        while v != source.0 {
            let ai = pred[v as usize].expect("path exists");
            if net.arcs[ai as usize].cap.is_finite() {
                net.arcs[ai as usize].cap -= push;
            }
            net.arcs[(ai ^ 1) as usize].cap += push;
            cost += push * net.arcs[ai as usize].cost;
            v = net.arcs[(ai ^ 1) as usize].to;
        }
        routed += push;
    }

    FlowResult { flow: routed, cost }
}

/// Routes as much flow as possible at minimum cost (min-cost max-flow).
pub fn min_cost_max_flow(net: &mut FlowNetwork, source: NodeRef, sink: NodeRef) -> FlowResult {
    min_cost_flow(net, source, sink, f64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowNetwork;

    fn n(i: u32) -> NodeRef {
        NodeRef(i)
    }

    #[test]
    fn prefers_cheap_path() {
        // Two parallel routes: cost 1 with cap 3, cost 5 with cap 10.
        let mut net = FlowNetwork::new(2);
        net.add_arc(n(0), n(1), 3.0, 1.0);
        net.add_arc(n(0), n(1), 10.0, 5.0);
        let r = min_cost_flow(&mut net, n(0), n(1), 5.0);
        assert_eq!(r.flow, 5.0);
        assert_eq!(r.cost, 3.0 * 1.0 + 2.0 * 5.0);
    }

    #[test]
    fn partial_when_saturated() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(n(0), n(1), 2.0, 1.0);
        let r = min_cost_flow(&mut net, n(0), n(1), 10.0);
        assert_eq!(r.flow, 2.0);
        assert_eq!(r.cost, 2.0);
    }

    #[test]
    fn zero_demand() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(n(0), n(1), 2.0, 1.0);
        let r = min_cost_flow(&mut net, n(0), n(1), 0.0);
        assert_eq!(
            r,
            FlowResult {
                flow: 0.0,
                cost: 0.0
            }
        );
    }

    #[test]
    fn classic_mcmf() {
        // s->1 cap 2 cost 1; s->2 cap 2 cost 2; 1->t cap 2 cost 2;
        // 2->t cap 2 cost 1; 1->2 cap 1 cost 0.
        // Best 3 units: s->1->t (2 @3)? Let's check: unit costs:
        // s1t = 3, s2t = 3, s1->2->t = 2. Route 1 via s1-12-2t = 2,
        // then s1t has cap 1 left (s->1 cap 2, one used) cost 3,
        // and s2t cost 3 cap 2.
        // For 3 units: 1 @2 + 2 @3 = 8.
        let mut net = FlowNetwork::new(4);
        let (s, a, b, t) = (n(0), n(1), n(2), n(3));
        net.add_arc(s, a, 2.0, 1.0);
        net.add_arc(s, b, 2.0, 2.0);
        net.add_arc(a, t, 2.0, 2.0);
        net.add_arc(b, t, 2.0, 1.0);
        net.add_arc(a, b, 1.0, 0.0);
        let r = min_cost_flow(&mut net, s, t, 3.0);
        assert_eq!(r.flow, 3.0);
        assert!((r.cost - 8.0).abs() < 1e-9, "cost = {}", r.cost);
        net.check_conservation(s, t).unwrap();
    }

    #[test]
    fn min_cost_max_flow_saturates() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(n(0), n(1), 4.0, 1.0);
        net.add_arc(n(1), n(2), 3.0, 1.0);
        let r = min_cost_max_flow(&mut net, n(0), n(2));
        assert_eq!(r.flow, 3.0);
        assert_eq!(r.cost, 6.0);
    }

    #[test]
    fn negative_costs_handled() {
        // A negative-cost arc must be preferred.
        let mut net = FlowNetwork::new(3);
        net.add_arc(n(0), n(1), 1.0, -2.0);
        net.add_arc(n(1), n(2), 1.0, 1.0);
        net.add_arc(n(0), n(2), 1.0, 0.5);
        let r = min_cost_flow(&mut net, n(0), n(2), 2.0);
        assert_eq!(r.flow, 2.0);
        assert!((r.cost - (-1.0 + 0.5)).abs() < 1e-9);
    }

    #[test]
    fn infinite_capacity_arcs() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(n(0), n(1), f64::INFINITY, 1.0);
        net.add_arc(n(1), n(2), 5.0, 0.0);
        let r = min_cost_flow(&mut net, n(0), n(2), 4.0);
        assert_eq!(r.flow, 4.0);
        assert_eq!(r.cost, 4.0);
    }

    #[test]
    fn flow_matches_network_accounting() {
        let mut net = FlowNetwork::new(4);
        let (s, a, b, t) = (n(0), n(1), n(2), n(3));
        net.add_arc(s, a, 5.0, 1.0);
        net.add_arc(a, b, 5.0, 1.0);
        net.add_arc(b, t, 5.0, 1.0);
        let r = min_cost_flow(&mut net, s, t, 2.5);
        assert_eq!(r.flow, 2.5);
        assert!((net.flow_cost() - r.cost).abs() < 1e-9);
        assert!((net.check_conservation(s, t).unwrap() - 2.5).abs() < 1e-9);
    }
}
