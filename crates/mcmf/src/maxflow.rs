//! Dinic's maximum-flow algorithm over [`FlowNetwork`].

use std::collections::VecDeque;

use crate::network::FlowNetwork;
use crate::{NodeRef, FLOW_EPS};

/// Computes a maximum `source → sink` flow in place and returns its value.
///
/// Capacities may be infinite; the algorithm still terminates because every
/// augmentation saturates at least one finite-capacity arc, and a path of
/// only-infinite arcs would make the max flow infinite — in that case the
/// function returns `f64::INFINITY` after detecting such a path.
pub fn max_flow(net: &mut FlowNetwork, source: NodeRef, sink: NodeRef) -> f64 {
    assert!(source.index() < net.node_count(), "source out of range");
    assert!(sink.index() < net.node_count(), "sink out of range");
    if source == sink {
        return 0.0;
    }
    let n = net.node_count();
    let mut total = 0.0f64;

    loop {
        // BFS level graph on residual arcs.
        let mut level = vec![u32::MAX; n];
        level[source.index()] = 0;
        let mut q = VecDeque::new();
        q.push_back(source.0);
        while let Some(u) = q.pop_front() {
            for &ai in &net.adj[u as usize] {
                let arc = &net.arcs[ai as usize];
                if arc.cap > FLOW_EPS && level[arc.to as usize] == u32::MAX {
                    level[arc.to as usize] = level[u as usize] + 1;
                    q.push_back(arc.to);
                }
            }
        }
        if level[sink.index()] == u32::MAX {
            break;
        }

        // DFS blocking flow with the usual per-node arc cursor.
        let mut iter = vec![0usize; n];
        loop {
            let pushed = dfs(net, source.0, sink.0, f64::INFINITY, &level, &mut iter);
            if pushed <= FLOW_EPS {
                break;
            }
            if pushed.is_infinite() {
                return f64::INFINITY;
            }
            total += pushed;
        }
    }
    total
}

fn dfs(
    net: &mut FlowNetwork,
    u: u32,
    sink: u32,
    limit: f64,
    level: &[u32],
    iter: &mut [usize],
) -> f64 {
    if u == sink {
        return limit;
    }
    while iter[u as usize] < net.adj[u as usize].len() {
        let ai = net.adj[u as usize][iter[u as usize]];
        let (to, cap) = {
            let a = &net.arcs[ai as usize];
            (a.to, a.cap)
        };
        if cap > FLOW_EPS && level[to as usize] == level[u as usize] + 1 {
            let pushed = dfs(net, to, sink, limit.min(cap), level, iter);
            if pushed > FLOW_EPS {
                if pushed.is_finite() {
                    net.arcs[ai as usize].cap -= pushed;
                    net.arcs[(ai ^ 1) as usize].cap += pushed;
                }
                return pushed;
            }
        }
        iter[u as usize] += 1;
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowNetwork;

    fn n(i: u32) -> NodeRef {
        NodeRef(i)
    }

    #[test]
    fn single_arc() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_arc(n(0), n(1), 7.5, 0.0);
        assert_eq!(max_flow(&mut net, n(0), n(1)), 7.5);
        assert_eq!(net.flow(a), 7.5);
    }

    #[test]
    fn classic_diamond() {
        // s -> a (3), s -> b (2), a -> t (2), b -> t (3), a -> b (5).
        let mut net = FlowNetwork::new(4);
        let (s, a, b, t) = (n(0), n(1), n(2), n(3));
        net.add_arc(s, a, 3.0, 0.0);
        net.add_arc(s, b, 2.0, 0.0);
        net.add_arc(a, t, 2.0, 0.0);
        net.add_arc(b, t, 3.0, 0.0);
        net.add_arc(a, b, 5.0, 0.0);
        assert_eq!(max_flow(&mut net, s, t), 5.0);
        net.check_conservation(s, t).unwrap();
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(n(0), n(1), 4.0, 0.0);
        assert_eq!(max_flow(&mut net, n(0), n(2)), 0.0);
    }

    #[test]
    fn bottleneck_respected() {
        // Chain with a 1.0 bottleneck in the middle.
        let mut net = FlowNetwork::new(4);
        net.add_arc(n(0), n(1), 10.0, 0.0);
        net.add_arc(n(1), n(2), 1.0, 0.0);
        net.add_arc(n(2), n(3), 10.0, 0.0);
        assert_eq!(max_flow(&mut net, n(0), n(3)), 1.0);
    }

    #[test]
    fn infinite_path_detected() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(n(0), n(1), f64::INFINITY, 0.0);
        net.add_arc(n(1), n(2), f64::INFINITY, 0.0);
        assert!(max_flow(&mut net, n(0), n(2)).is_infinite());
    }

    #[test]
    fn infinite_arcs_with_finite_cut() {
        // Infinite first hop, finite second: max flow equals the cut.
        let mut net = FlowNetwork::new(3);
        net.add_arc(n(0), n(1), f64::INFINITY, 0.0);
        net.add_arc(n(1), n(2), 4.0, 0.0);
        assert_eq!(max_flow(&mut net, n(0), n(2)), 4.0);
    }

    #[test]
    fn source_equals_sink() {
        let mut net = FlowNetwork::new(1);
        assert_eq!(max_flow(&mut net, n(0), n(0)), 0.0);
    }

    #[test]
    fn undo_via_residual() {
        // Requires sending flow "back" along a residual arc:
        // s->a (1), s->b (1), a->t (1) ... and a->b so a naive greedy path
        // s->a->b->t blocks the optimum until the residual is used.
        let mut net = FlowNetwork::new(4);
        let (s, a, b, t) = (n(0), n(1), n(2), n(3));
        net.add_arc(s, a, 1.0, 0.0);
        net.add_arc(s, b, 1.0, 0.0);
        net.add_arc(a, b, 1.0, 0.0);
        net.add_arc(a, t, 1.0, 0.0);
        net.add_arc(b, t, 1.0, 0.0);
        assert_eq!(max_flow(&mut net, s, t), 2.0);
    }
}
