//! The Minimum Edge Cost Flow (MECF) auxiliary graph of the paper's
//! Section 4.3 (Figure 5), and the flow-based greedy heuristic.
//!
//! Construction (Theorem 2): given a monitoring instance with edge set `E`
//! and weighted traffics `D`,
//!
//! 1. one node `w_e` per edge `e ∈ E`, one node `w_t` per traffic `t ∈ D`,
//!    plus a source `S` and sink `T`;
//! 2. arcs `(S, w_e)` of unbounded capacity — these are the *fixed-charge*
//!    arcs whose binary cost encodes installing a device on `e`;
//! 3. arcs `(w_e, w_t)` of unbounded capacity and zero cost whenever the
//!    path of traffic `t` uses edge `e`;
//! 4. arcs `(w_t, T)` of capacity `v_t` (the traffic volume) and zero cost.
//!
//! Routing `k · Σ v_t` units from `S` to `T` while paying for each used
//! `(S, w_e)` arc solves `PPM(k)`. The *fixed-charge* objective itself is
//! solved by the MIP in the `placement` crate; this module provides the
//! **linear relaxation** in which the `(S, w_e)` arc costs `1/load(e)` per
//! unit — the paper's formalization of the classical "most loaded link
//! first" greedy ("Such a link cost configuration models the greedy
//! behavior of previously defined heuristics").

use crate::mincost::min_cost_flow;
use crate::network::FlowNetwork;
use crate::{ArcId, NodeRef, FLOW_EPS};

/// An abstract monitoring instance: edges are `0..num_edges`, and each
/// traffic is a volume plus the set of edges its path traverses.
///
/// This index-based form keeps `mcmf` independent of the graph and traffic
/// crates; `placement` adapts its typed instances into it.
#[derive(Debug, Clone)]
pub struct MonitoringInstance {
    /// Number of network links (candidate monitor locations).
    pub num_edges: usize,
    /// `(volume, edges traversed)` per traffic. Edge lists must be
    /// duplicate-free.
    pub traffics: Vec<(f64, Vec<usize>)>,
}

impl MonitoringInstance {
    /// Total bandwidth `V = Σ v_t` carried by the network.
    pub fn total_volume(&self) -> f64 {
        self.traffics.iter().map(|&(v, _)| v).sum()
    }

    /// Load of every edge: sum of the volumes of the traffics crossing it.
    pub fn edge_loads(&self) -> Vec<f64> {
        let mut load = vec![0.0; self.num_edges];
        for (v, edges) in &self.traffics {
            for &e in edges {
                load[e] += v;
            }
        }
        load
    }

    /// Total volume of the traffics covered by the edge set `selected`
    /// (a boolean mask over edges).
    pub fn coverage_of(&self, selected: &[bool]) -> f64 {
        self.traffics
            .iter()
            .filter(|(_, edges)| edges.iter().any(|&e| selected[e]))
            .map(|&(v, _)| v)
            .sum()
    }
}

/// The built auxiliary graph with handles onto its structured arcs.
#[derive(Debug, Clone)]
pub struct MecfGraph {
    /// The underlying flow network.
    pub net: FlowNetwork,
    /// Source `S`.
    pub source: NodeRef,
    /// Sink `T`.
    pub sink: NodeRef,
    /// `(S, w_e)` arc per edge — flow here means "monitored on e".
    pub edge_arcs: Vec<ArcId>,
    /// `(w_t, T)` arc per traffic — flow here means "volume of t monitored".
    pub traffic_arcs: Vec<ArcId>,
}

/// Builds the auxiliary graph with the given per-unit cost on each
/// `(S, w_e)` arc (zero cost everywhere else, per the paper).
pub fn build_mecf(inst: &MonitoringInstance, edge_cost: &[f64]) -> MecfGraph {
    assert_eq!(
        edge_cost.len(),
        inst.num_edges,
        "one cost per edge required"
    );
    let ne = inst.num_edges;
    let nt = inst.traffics.len();
    // Layout: 0 = S, 1 = T, 2..2+ne = w_e, 2+ne.. = w_t.
    let mut net = FlowNetwork::new(2 + ne + nt);
    let source = NodeRef(0);
    let sink = NodeRef(1);
    let we = |e: usize| NodeRef((2 + e) as u32);
    let wt = |t: usize| NodeRef((2 + ne + t) as u32);

    let edge_arcs: Vec<ArcId> = (0..ne)
        .map(|e| net.add_arc(source, we(e), f64::INFINITY, edge_cost[e]))
        .collect();
    let mut traffic_arcs = Vec::with_capacity(nt);
    for (t, (v, edges)) in inst.traffics.iter().enumerate() {
        for &e in edges {
            assert!(e < ne, "traffic {t} references edge {e} out of range");
            net.add_arc(we(e), wt(t), f64::INFINITY, 0.0);
        }
        traffic_arcs.push(net.add_arc(wt(t), sink, *v, 0.0));
    }

    MecfGraph {
        net,
        source,
        sink,
        edge_arcs,
        traffic_arcs,
    }
}

/// Result of the flow-based greedy heuristic.
#[derive(Debug, Clone)]
pub struct FlowGreedyResult {
    /// Selected edges (mask over `0..num_edges`).
    pub selected: Vec<bool>,
    /// Volume routed through the auxiliary graph (≥ `k·V` when feasible).
    pub routed: f64,
    /// Coverage of the selected set in the original instance.
    pub coverage: f64,
}

/// The paper's flow-greedy heuristic for `PPM(k)`: a min-cost flow on the
/// auxiliary graph with `(S, w_e)` cost `1/load(e)`, selecting every edge
/// whose arc carries flow.
///
/// Returns `None` when even monitoring *all* edges cannot reach the target
/// (i.e. `k > 1` after rounding, or zero-volume instances).
pub fn flow_greedy(inst: &MonitoringInstance, k: f64) -> Option<FlowGreedyResult> {
    assert!(
        (0.0..=1.0 + 1e-12).contains(&k),
        "k must lie in (0, 1], got {k}"
    );
    let total = inst.total_volume();
    let demand = k * total;
    if demand <= FLOW_EPS {
        return Some(FlowGreedyResult {
            selected: vec![false; inst.num_edges],
            routed: 0.0,
            coverage: 0.0,
        });
    }

    let loads = inst.edge_loads();
    // Cost 1/load: heavily loaded links are cheap per monitored unit.
    // Unused links get an effectively prohibitive (but finite) cost.
    let costs: Vec<f64> = loads
        .iter()
        .map(|&l| if l > FLOW_EPS { 1.0 / l } else { 1e12 })
        .collect();
    let mut g = build_mecf(inst, &costs);
    let res = min_cost_flow(&mut g.net, g.source, g.sink, demand);
    if res.flow + FLOW_EPS < demand {
        return None; // target unreachable even with all devices
    }

    let selected: Vec<bool> = g
        .edge_arcs
        .iter()
        .map(|&a| g.net.flow(a) > FLOW_EPS)
        .collect();
    let coverage = inst.coverage_of(&selected);
    Some(FlowGreedyResult {
        selected,
        routed: res.flow,
        coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 3 counter-example: four traffics, two of weight 2
    /// sharing a heavy link of load 4, and two side links of load 3 that
    /// together cover everything.
    ///
    /// Edges: 0 = heavy (t0, t1), 1 = left (t0, t2), 2 = right (t1, t3),
    /// 3, 4 = light tails (t2), (t3).
    fn figure3_like() -> MonitoringInstance {
        MonitoringInstance {
            num_edges: 5,
            traffics: vec![
                (2.0, vec![0, 1]),
                (2.0, vec![0, 2]),
                (1.0, vec![1, 3]),
                (1.0, vec![2, 4]),
            ],
        }
    }

    #[test]
    fn volumes_and_loads() {
        let inst = figure3_like();
        assert_eq!(inst.total_volume(), 6.0);
        assert_eq!(inst.edge_loads(), vec![4.0, 3.0, 3.0, 1.0, 1.0]);
    }

    #[test]
    fn coverage_mask() {
        let inst = figure3_like();
        assert_eq!(inst.coverage_of(&[true, false, false, false, false]), 4.0);
        assert_eq!(inst.coverage_of(&[false, true, true, false, false]), 6.0);
        assert_eq!(inst.coverage_of(&[false; 5]), 0.0);
    }

    #[test]
    fn mecf_graph_shape() {
        let inst = figure3_like();
        let g = build_mecf(&inst, &[1.0; 5]);
        assert_eq!(g.net.node_count(), 2 + 5 + 4);
        // 5 edge arcs + 8 incidence arcs + 4 traffic arcs.
        assert_eq!(g.net.arc_count(), 5 + 8 + 4);
        assert_eq!(g.edge_arcs.len(), 5);
        assert_eq!(g.traffic_arcs.len(), 4);
        // (w_t, T) capacities carry the volumes.
        assert_eq!(g.net.arc_capacity(g.traffic_arcs[0]), 2.0);
        assert_eq!(g.net.arc_capacity(g.traffic_arcs[2]), 1.0);
    }

    #[test]
    fn full_monitoring_routes_everything() {
        let inst = figure3_like();
        let r = flow_greedy(&inst, 1.0).expect("feasible");
        assert!((r.routed - 6.0).abs() < 1e-9);
        assert!((r.coverage - 6.0).abs() < 1e-9);
        // Whatever was selected must cover all traffics.
        assert!(inst.coverage_of(&r.selected) >= 6.0 - 1e-9);
    }

    #[test]
    fn greedy_behavior_prefers_loaded_link() {
        // At k ~ 4/6 the heavy link alone suffices and is the cheapest per
        // unit, so the flow greedy must select exactly edge 0.
        let inst = figure3_like();
        let r = flow_greedy(&inst, 4.0 / 6.0).unwrap();
        assert!(r.selected[0]);
        assert_eq!(r.selected.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn zero_k_selects_nothing() {
        let inst = figure3_like();
        let r = flow_greedy(&inst, 0.0).unwrap();
        assert!(r.selected.iter().all(|&b| !b));
    }

    #[test]
    fn empty_instance() {
        let inst = MonitoringInstance {
            num_edges: 3,
            traffics: vec![],
        };
        let r = flow_greedy(&inst, 1.0).unwrap();
        assert_eq!(r.routed, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_edge_reference() {
        let inst = MonitoringInstance {
            num_edges: 1,
            traffics: vec![(1.0, vec![3])],
        };
        build_mecf(&inst, &[1.0]);
    }
}
