use crate::FLOW_EPS;

/// Index of a node in a [`FlowNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeRef(pub u32);

/// Index of a *forward* arc in a [`FlowNetwork`] (as returned by
/// [`FlowNetwork::add_arc`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArcId(pub u32);

impl NodeRef {
    /// Dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ArcId {
    /// Dense index of this arc among forward arcs.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Internal arc storage. Arcs come in (forward, reverse) pairs at positions
/// `2i` and `2i + 1`; `arc ^ 1` is the residual twin.
#[derive(Debug, Clone)]
pub(crate) struct RawArc {
    pub to: u32,
    /// Remaining residual capacity.
    pub cap: f64,
    /// Per-unit cost (negated on the reverse arc).
    pub cost: f64,
}

/// A directed flow network with real-valued capacities and linear costs.
///
/// Capacities may be [`f64::INFINITY`] (the paper's auxiliary graph uses
/// unbounded arcs everywhere except the `(w_t, T)` volume caps).
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    pub(crate) arcs: Vec<RawArc>,
    /// Out-arc indices (into `arcs`) per node — includes reverse arcs.
    pub(crate) adj: Vec<Vec<u32>>,
    /// Original capacity of each forward arc (for flow reconstruction).
    pub(crate) orig_cap: Vec<f64>,
}

impl FlowNetwork {
    /// Creates a network with `nodes` isolated nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            arcs: Vec::new(),
            adj: vec![Vec::new(); nodes],
            orig_cap: Vec::new(),
        }
    }

    /// Adds one more node, returning its reference.
    pub fn add_node(&mut self) -> NodeRef {
        self.adj.push(Vec::new());
        NodeRef(self.adj.len() as u32 - 1)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of forward arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len() / 2
    }

    /// Adds a directed arc `from → to` with the given capacity (may be
    /// `f64::INFINITY`) and per-unit cost, returning its id.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range nodes, negative/NaN capacity, or non-finite
    /// cost.
    pub fn add_arc(&mut self, from: NodeRef, to: NodeRef, cap: f64, cost: f64) -> ArcId {
        assert!(from.index() < self.adj.len(), "from node out of range");
        assert!(to.index() < self.adj.len(), "to node out of range");
        assert!(
            !cap.is_nan() && cap >= 0.0,
            "capacity must be non-negative, got {cap}"
        );
        assert!(cost.is_finite(), "cost must be finite, got {cost}");
        let fwd = self.arcs.len() as u32;
        self.arcs.push(RawArc {
            to: to.0,
            cap,
            cost,
        });
        self.arcs.push(RawArc {
            to: from.0,
            cap: 0.0,
            cost: -cost,
        });
        self.adj[from.index()].push(fwd);
        self.adj[to.index()].push(fwd + 1);
        self.orig_cap.push(cap);
        ArcId(fwd / 2)
    }

    /// Flow currently on forward arc `arc` (original capacity minus residual).
    ///
    /// Infinite-capacity arcs report the reverse arc's residual, which
    /// equals the pushed flow.
    pub fn flow(&self, arc: ArcId) -> f64 {
        let fwd = arc.index() * 2;
        let pushed = self.arcs[fwd + 1].cap;
        if pushed.abs() < FLOW_EPS {
            0.0
        } else {
            pushed
        }
    }

    /// Endpoints `(from, to)` of forward arc `arc`.
    pub fn arc_endpoints(&self, arc: ArcId) -> (NodeRef, NodeRef) {
        let fwd = arc.index() * 2;
        (NodeRef(self.arcs[fwd + 1].to), NodeRef(self.arcs[fwd].to))
    }

    /// Per-unit cost of forward arc `arc`.
    pub fn arc_cost(&self, arc: ArcId) -> f64 {
        self.arcs[arc.index() * 2].cost
    }

    /// Original capacity of forward arc `arc`.
    pub fn arc_capacity(&self, arc: ArcId) -> f64 {
        self.orig_cap[arc.index()]
    }

    /// Removes all flow, restoring original capacities.
    pub fn reset_flow(&mut self) {
        for i in 0..self.orig_cap.len() {
            self.arcs[2 * i].cap = self.orig_cap[i];
            self.arcs[2 * i + 1].cap = 0.0;
        }
    }

    /// Total cost of the current flow: `Σ flow(a) · cost(a)`.
    pub fn flow_cost(&self) -> f64 {
        (0..self.arc_count())
            .map(|i| self.flow(ArcId(i as u32)) * self.arcs[2 * i].cost)
            .sum()
    }

    /// Checks flow conservation at every node except `source` and `sink`;
    /// returns the net outflow at `source` (= net inflow at `sink`).
    pub fn check_conservation(&self, source: NodeRef, sink: NodeRef) -> Result<f64, String> {
        let n = self.node_count();
        let mut net = vec![0.0f64; n];
        for i in 0..self.arc_count() {
            let f = self.flow(ArcId(i as u32));
            let (u, v) = self.arc_endpoints(ArcId(i as u32));
            net[u.index()] -= f;
            net[v.index()] += f;
        }
        for (i, &b) in net.iter().enumerate() {
            if i != source.index() && i != sink.index() && b.abs() > 1e-6 {
                return Err(format!("conservation violated at node {i}: net {b}"));
            }
        }
        if (net[source.index()] + net[sink.index()]).abs() > 1e-6 {
            return Err(format!(
                "source/sink imbalance: {} vs {}",
                net[source.index()],
                net[sink.index()]
            ));
        }
        Ok(-net[source.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_bookkeeping() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_arc(NodeRef(0), NodeRef(1), 5.0, 2.0);
        assert_eq!(net.arc_count(), 1);
        assert_eq!(net.arc_endpoints(a), (NodeRef(0), NodeRef(1)));
        assert_eq!(net.arc_cost(a), 2.0);
        assert_eq!(net.arc_capacity(a), 5.0);
        assert_eq!(net.flow(a), 0.0);
    }

    #[test]
    fn add_node_extends() {
        let mut net = FlowNetwork::new(1);
        let n = net.add_node();
        assert_eq!(n, NodeRef(1));
        assert_eq!(net.node_count(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-negative")]
    fn rejects_negative_capacity() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(NodeRef(0), NodeRef(1), -1.0, 0.0);
    }

    #[test]
    fn infinite_capacity_allowed() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_arc(NodeRef(0), NodeRef(1), f64::INFINITY, 1.0);
        assert_eq!(net.arc_capacity(a), f64::INFINITY);
    }

    #[test]
    fn reset_restores_capacity() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_arc(NodeRef(0), NodeRef(1), 3.0, 1.0);
        // Push flow manually through the raw arcs.
        net.arcs[0].cap -= 2.0;
        net.arcs[1].cap += 2.0;
        assert_eq!(net.flow(a), 2.0);
        net.reset_flow();
        assert_eq!(net.flow(a), 0.0);
        assert_eq!(net.arcs[0].cap, 3.0);
    }
}
