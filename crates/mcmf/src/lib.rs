//! Flow algorithms for the CoNEXT 2005 reproduction.
//!
//! Section 4.3 of the paper models `PPM(k)` as a **Minimum Edge Cost Flow**
//! (MECF) on an auxiliary graph `S → w_e → w_t → T`, and observes that the
//! classical greedy heuristics are exactly minimum-cost-flow computations on
//! a linear relaxation of that graph; Section 5.4 solves the dynamic
//! re-optimization `PPME*(x, h, k)` as a plain min-cost flow. This crate
//! provides the machinery:
//!
//! * [`FlowNetwork`] — a directed flow network with `f64` capacities and
//!   per-unit costs, stored in the usual paired-residual-arc form;
//! * [`maxflow`] — Dinic's algorithm (used for feasibility checks and as a
//!   building block);
//! * [`mincost`] — successive shortest paths with node potentials
//!   (Bellman–Ford bootstrap, Dijkstra with reduced costs afterwards);
//! * [`mecf`] — construction of the paper's auxiliary graph from an
//!   abstract monitoring instance, the **flow greedy** heuristic (min-cost
//!   flow with `1/load(e)` costs, the paper's formalization of "pick the
//!   most loaded link first"), and helpers shared by the placement crate.
//!
//! All capacities/costs are `f64` with explicit tolerances ([`FLOW_EPS`])
//! because traffic volumes in the paper are real-valued bandwidths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod maxflow;
pub mod mecf;
pub mod mincost;
mod network;

pub use network::{ArcId, FlowNetwork, NodeRef};

/// Flows below this magnitude are treated as zero.
pub const FLOW_EPS: f64 = 1e-9;
