//! Two-level POP topology generation (paper Section 2, Figure 2).

use netgraph::{bfs, Graph, GraphBuilder, NodeId};

/// Role of a node inside a generated POP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Core router attached to inter-POP links.
    Backbone,
    /// Intermediate router between customers and the backbone.
    Access,
    /// Virtual node standing for a customer network attached below an
    /// access router. Sources/sinks traffic; not a router of the POP.
    Customer,
    /// Virtual node standing for a peering link / another ISP, attached to
    /// a backbone router. Sources/sinks traffic; not a router of the POP.
    Peer,
}

/// Parameters of the POP generator.
///
/// The construction is deterministic given the spec (randomness only enters
/// through the traffic generator): backbone routers form a ring plus
/// `chords` shortcut links; the first `dual_homed` access routers connect
/// to two consecutive backbone routers and the rest to one; customer
/// endpoints are spread round-robin below the access routers and peer
/// endpoints round-robin on the backbone.
#[derive(Debug, Clone)]
pub struct PopSpec {
    /// Number of backbone routers (≥ 1).
    pub backbone: usize,
    /// Number of access routers.
    pub access: usize,
    /// Number of shortcut links added across the backbone ring
    /// (`bb_i — bb_{i + ⌊B/2⌋}` for `i = 0..chords`).
    pub chords: usize,
    /// How many access routers get two backbone uplinks (the rest get one).
    pub dual_homed: usize,
    /// Total number of virtual customer endpoints (below access routers).
    pub customers: usize,
    /// Total number of virtual peer endpoints (on backbone routers).
    pub peers: usize,
}

impl PopSpec {
    /// A deliberately small POP (5 routers, 12 links, 30 traffics) for
    /// tests and for the fixed-charge `PPME` MILP, whose loose LP bound
    /// makes 27-binary instances expensive to *prove* optimal.
    pub fn small() -> Self {
        Self {
            backbone: 2,
            access: 3,
            chords: 0,
            dual_homed: 2,
            customers: 5,
            peers: 1,
        }
    }

    /// The paper's 10-router POP: 10 routers, 27 links, 12 traffic
    /// endpoints hence `12 × 11 = 132` traffics (Figure 7).
    pub fn paper_10() -> Self {
        Self {
            backbone: 3,
            access: 7,
            chords: 0,
            dual_homed: 5,
            customers: 10,
            peers: 2,
        }
    }

    /// The paper's 15-router POP: 15 routers, 71 links, 45 traffic
    /// endpoints hence `45 × 44 = 1980` traffics (Figure 8).
    pub fn paper_15() -> Self {
        Self {
            backbone: 5,
            access: 10,
            chords: 1,
            dual_homed: 10,
            customers: 40,
            peers: 5,
        }
    }

    /// A 29-router POP for the active-monitoring experiment of Figure 10
    /// (the paper does not report its link count).
    pub fn paper_29() -> Self {
        Self {
            backbone: 7,
            access: 22,
            chords: 3,
            dual_homed: 15,
            customers: 30,
            peers: 5,
        }
    }

    /// An 80-router POP for the active-monitoring experiment of Figure 11.
    pub fn paper_80() -> Self {
        Self {
            backbone: 16,
            access: 64,
            chords: 8,
            dual_homed: 40,
            customers: 60,
            peers: 10,
        }
    }

    /// A 20-router POP between the paper's Figure 8 instance and the
    /// 29-router active-monitoring POP: the first rung of the ROADMAP's
    /// 20–25+ router ladder for the exact passive solvers (the
    /// `simplex_lp2_20router` bench stage runs its LP2 relaxation).
    pub fn scale_20() -> Self {
        Self {
            backbone: 6,
            access: 14,
            chords: 2,
            dual_homed: 10,
            customers: 44,
            peers: 6,
        }
    }

    /// A 25-router POP — the second rung of the 20–25+ router ladder
    /// (`simplex_lp2_25router`); 56 traffic endpoints hence `56 × 55 =
    /// 3080` traffics, half again past the Figure 8 scale.
    pub fn scale_25() -> Self {
        Self {
            backbone: 7,
            access: 18,
            chords: 3,
            dual_homed: 12,
            customers: 50,
            peers: 6,
        }
    }

    /// A 50-router POP — the third rung of the scaling ladder, double the
    /// `scale_25` rung: 66 traffic endpoints hence `66 × 65 = 4290`
    /// traffics. Backs the gated `simplex_lp2_50router` /
    /// `exact_scale_50` bench stages that price the enriched MIP search
    /// (cuts + reliability branching + parallel node pool) past the
    /// paper's own instances.
    pub fn scale_50() -> Self {
        Self {
            backbone: 12,
            access: 38,
            chords: 5,
            dual_homed: 24,
            customers: 58,
            peers: 8,
        }
    }

    /// A 100-router POP — the fourth rung, between `scale_50` and the
    /// paper's closing 150-router claim. Exercised ungated (the exact
    /// solve is minutes-scale); `PopSpec::large_150` remains the
    /// generation-only end point.
    pub fn scale_100() -> Self {
        Self {
            backbone: 18,
            access: 82,
            chords: 9,
            dual_homed: 52,
            customers: 72,
            peers: 12,
        }
    }

    /// A 150-router POP — the paper's Section 7 closes with "we are also
    /// currently testing our solution on larger POPs, with at least 150
    /// routers"; this preset backs the `xp_scale_150` experiment.
    pub fn large_150() -> Self {
        Self {
            backbone: 25,
            access: 125,
            chords: 12,
            dual_homed: 80,
            customers: 90,
            peers: 15,
        }
    }

    /// Total number of routers (backbone + access).
    pub fn router_count(&self) -> usize {
        self.backbone + self.access
    }

    /// Total number of virtual endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.customers + self.peers
    }

    /// Builds the topology.
    ///
    /// # Panics
    ///
    /// Panics when `backbone == 0`, or when `dual_homed > access`, or when
    /// `access > 0` is required (customers need access routers).
    pub fn build(&self) -> Pop {
        assert!(self.backbone >= 1, "need at least one backbone router");
        assert!(
            self.dual_homed <= self.access,
            "dual_homed exceeds access count"
        );
        assert!(
            self.customers == 0 || self.access > 0,
            "customers need access routers"
        );

        let mut b = GraphBuilder::new();
        let mut roles = Vec::new();

        let bb: Vec<NodeId> = (0..self.backbone)
            .map(|i| {
                roles.push(NodeRole::Backbone);
                b.add_node(format!("bb{i}"))
            })
            .collect();
        let ac: Vec<NodeId> = (0..self.access)
            .map(|i| {
                roles.push(NodeRole::Access);
                b.add_node(format!("ac{i}"))
            })
            .collect();

        // Backbone ring (degenerates gracefully for 1 or 2 routers).
        match self.backbone {
            0 | 1 => {}
            2 => {
                b.add_edge(bb[0], bb[1], 1.0);
            }
            n => {
                for i in 0..n {
                    b.add_edge(bb[i], bb[(i + 1) % n], 1.0);
                }
            }
        }
        // Chords across the ring.
        if self.backbone >= 4 {
            let half = self.backbone / 2;
            for i in 0..self.chords.min(self.backbone) {
                let u = bb[i % self.backbone];
                let v = bb[(i + half) % self.backbone];
                if u != v {
                    b.add_edge(u, v, 1.0);
                }
            }
        }

        // Access uplinks: primary is round-robin; dual-homed routers also
        // connect to the next backbone router.
        for (i, &a) in ac.iter().enumerate() {
            let primary = bb[i % self.backbone];
            b.add_edge(a, primary, 1.0);
            if i < self.dual_homed && self.backbone >= 2 {
                let secondary = bb[(i + 1) % self.backbone];
                b.add_edge(a, secondary, 1.0);
            }
        }

        // Virtual endpoints.
        let mut endpoints = Vec::new();
        for i in 0..self.customers {
            roles.push(NodeRole::Customer);
            let c = b.add_node(format!("cust{i}"));
            b.add_edge(c, ac[i % self.access], 1.0);
            endpoints.push(c);
        }
        for i in 0..self.peers {
            roles.push(NodeRole::Peer);
            let p = b.add_node(format!("peer{i}"));
            b.add_edge(p, bb[i % self.backbone], 1.0);
            endpoints.push(p);
        }

        let graph = b.build();
        debug_assert!(bfs::is_connected(&graph), "generated POP must be connected");
        Pop {
            graph,
            roles,
            backbone: bb,
            access: ac,
            endpoints,
        }
    }
}

/// A generated POP: the graph plus role annotations and structured node
/// lists.
#[derive(Debug, Clone)]
pub struct Pop {
    /// The underlying undirected graph (routers + virtual endpoints).
    pub graph: Graph,
    /// Role per node, indexed by [`NodeId::index`].
    pub roles: Vec<NodeRole>,
    /// Backbone routers.
    pub backbone: Vec<NodeId>,
    /// Access routers.
    pub access: Vec<NodeId>,
    /// Virtual traffic endpoints (customers then peers).
    pub endpoints: Vec<NodeId>,
}

impl Pop {
    /// All routers (backbone + access) — the candidate beacon locations of
    /// the active-monitoring problem.
    pub fn routers(&self) -> Vec<NodeId> {
        self.backbone
            .iter()
            .chain(self.access.iter())
            .copied()
            .collect()
    }

    /// Role of a node.
    pub fn role(&self, node: NodeId) -> NodeRole {
        self.roles[node.index()]
    }

    /// `true` when the node is a router (not a virtual endpoint).
    pub fn is_router(&self, node: NodeId) -> bool {
        matches!(self.role(node), NodeRole::Backbone | NodeRole::Access)
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.backbone.len() + self.access.len()
    }

    /// The router-only subgraph (virtual endpoints stripped), used by the
    /// active-monitoring experiments where probes travel between routers.
    ///
    /// Returns the subgraph plus the mapping `new node → old node`.
    pub fn router_subgraph(&self) -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let mut old_of_new = Vec::new();
        let mut new_of_old = vec![None; self.graph.node_count()];
        for v in self.graph.nodes() {
            if self.is_router(v) {
                let nv = b.add_node(self.graph.label(v));
                new_of_old[v.index()] = Some(nv);
                old_of_new.push(v);
            }
        }
        for e in self.graph.edges() {
            let (u, v) = self.graph.endpoints(e);
            if let (Some(nu), Some(nv)) = (new_of_old[u.index()], new_of_old[v.index()]) {
                b.add_edge(nu, nv, self.graph.weight(e));
            }
        }
        (b.build(), old_of_new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_10_matches_figure_7_instance() {
        let spec = PopSpec::paper_10();
        let pop = spec.build();
        assert_eq!(pop.router_count(), 10, "10 routers");
        assert_eq!(pop.graph.edge_count(), 27, "27 links");
        let eps = pop.endpoints.len();
        assert_eq!(eps * (eps - 1), 132, "132 traffics");
    }

    #[test]
    fn paper_15_matches_figure_8_instance() {
        let spec = PopSpec::paper_15();
        let pop = spec.build();
        assert_eq!(pop.router_count(), 15, "15 routers");
        assert_eq!(pop.graph.edge_count(), 71, "71 links");
        let eps = pop.endpoints.len();
        assert_eq!(eps * (eps - 1), 1980, "1980 traffics");
    }

    #[test]
    fn paper_29_and_80_have_right_router_counts() {
        assert_eq!(PopSpec::paper_29().build().router_count(), 29);
        assert_eq!(PopSpec::paper_80().build().router_count(), 80);
    }

    #[test]
    fn scale_ladder_router_counts_and_traffic_growth() {
        assert_eq!(PopSpec::scale_20().build().router_count(), 20);
        assert_eq!(PopSpec::scale_25().build().router_count(), 25);
        let p50 = PopSpec::scale_50().build();
        assert_eq!(p50.router_count(), 50);
        let eps50 = p50.endpoints.len();
        assert_eq!(eps50 * (eps50 - 1), 4290, "4290 traffics at rung 50");
        let p100 = PopSpec::scale_100().build();
        assert_eq!(p100.router_count(), 100);
        // Strictly growing endpoint counts keep the ladder meaningful.
        assert!(p100.endpoints.len() > eps50);
    }

    #[test]
    fn generated_pops_are_connected() {
        for spec in [
            PopSpec::paper_10(),
            PopSpec::paper_15(),
            PopSpec::paper_29(),
            PopSpec::paper_80(),
            PopSpec::scale_50(),
            PopSpec::scale_100(),
        ] {
            assert!(netgraph::bfs::is_connected(&spec.build().graph));
        }
    }

    #[test]
    fn roles_are_consistent() {
        let pop = PopSpec::paper_10().build();
        for v in pop.graph.nodes() {
            match pop.role(v) {
                NodeRole::Backbone => assert!(pop.backbone.contains(&v)),
                NodeRole::Access => assert!(pop.access.contains(&v)),
                NodeRole::Customer | NodeRole::Peer => assert!(pop.endpoints.contains(&v)),
            }
        }
    }

    #[test]
    fn endpoints_have_degree_one() {
        let pop = PopSpec::paper_15().build();
        for &e in &pop.endpoints {
            assert_eq!(
                pop.graph.degree(e),
                1,
                "virtual endpoints hang off one link"
            );
        }
    }

    #[test]
    fn router_subgraph_strips_endpoints() {
        let pop = PopSpec::paper_10().build();
        let (sub, map) = pop.router_subgraph();
        assert_eq!(sub.node_count(), 10);
        assert_eq!(map.len(), 10);
        // 27 total - 12 endpoint links = 15 router links.
        assert_eq!(sub.edge_count(), 15);
        assert!(netgraph::bfs::is_connected(&sub));
        for (new_idx, &old) in map.iter().enumerate() {
            assert_eq!(
                sub.label(netgraph::NodeId(new_idx as u32)),
                pop.graph.label(old)
            );
        }
    }

    #[test]
    fn tiny_pop_edge_cases() {
        let spec = PopSpec {
            backbone: 1,
            access: 1,
            chords: 0,
            dual_homed: 0,
            customers: 2,
            peers: 1,
        };
        let pop = spec.build();
        assert_eq!(pop.router_count(), 2);
        assert!(netgraph::bfs::is_connected(&pop.graph));

        let two_bb = PopSpec {
            backbone: 2,
            access: 0,
            chords: 0,
            dual_homed: 0,
            customers: 0,
            peers: 2,
        };
        let pop2 = two_bb.build();
        assert_eq!(pop2.graph.edge_count(), 3); // bb link + 2 peer links
    }

    #[test]
    #[should_panic(expected = "dual_homed exceeds access")]
    fn invalid_spec_panics() {
        PopSpec {
            backbone: 2,
            access: 1,
            chords: 0,
            dual_homed: 3,
            customers: 0,
            peers: 0,
        }
        .build();
    }
}
