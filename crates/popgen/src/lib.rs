//! POP topology and traffic generation for the CoNEXT 2005 reproduction.
//!
//! The paper evaluates on POP topologies "inferred by the Rocketfuel tool"
//! with randomly generated, deliberately non-uniform traffic matrices
//! (Section 4.4). Rocketfuel data is not available offline, so this crate
//! provides the documented substitution (see `DESIGN.md`): a parametric
//! generator reproducing the two-level POP structure of the paper's
//! Section 2 — backbone routers in a ring with chords, access routers
//! single- or dual-homed onto the backbone, and virtual customer/peer
//! endpoint nodes that source and sink the traffic ("the generated network
//! includes some virtual nodes that represent sources and targets of the
//! traffic and that are not considered as routers in the POP").
//!
//! * [`PopSpec`] / [`Pop`] — topology generation, with presets matching the
//!   paper's instances: [`PopSpec::paper_10`] (10 routers, 27 links, 132
//!   traffics), [`PopSpec::paper_15`] (15 routers, 71 links, 1980
//!   traffics), [`PopSpec::paper_29`] and [`PopSpec::paper_80`] for the
//!   active-monitoring figures;
//! * [`families`] — the open instance space: seeded, parameterized random
//!   topology families (Waxman geometric, Barabási–Albert preferential
//!   attachment, hierarchical backbone/access ISP) behind a validated
//!   [`FamilySpec`], for differential testing and sweeps far beyond the
//!   paper's five presets;
//! * [`traffic`] — single-path traffic matrices with preferred high-volume
//!   pairs, the gravity-model generator for random families
//!   ([`GravitySpec`]), and the multi-routed traffics of Section 5;
//! * [`dynamic`] — the evolving-traffic process driving the Section 5.4
//!   threshold controller experiments;
//! * [`failure`] — seeded failure ensembles: SRLG shared-risk link groups,
//!   independent link faults, node churn, and diurnal demand perturbation
//!   riding [`DynamicSpec`], for the resilience campaigns;
//! * [`fileio`] — a small text format so externally measured topologies
//!   (e.g. real Rocketfuel maps) can be substituted for the generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod failure;
pub mod families;
pub mod fileio;
pub mod topology;
pub mod traffic;

pub use dynamic::DynamicSpec;
pub use failure::{FailureModel, FailureSpec, Scenario};
pub use families::{FamilyKind, FamilySpec, SpecError};
pub use topology::{NodeRole, Pop, PopSpec};
pub use traffic::{GravitySpec, MultiTraffic, Traffic, TrafficSet, TrafficSpec};
