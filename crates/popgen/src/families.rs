//! Parameterized random topology families — the open instance space.
//!
//! The paper evaluates on five hand-built POP presets ([`crate::PopSpec`]);
//! this module opens the instance space with seeded, parameterized random
//! families so every solver can be exercised (and differentially tested)
//! on an unbounded set of topologies:
//!
//! * [`FamilyKind::Waxman`] — the classic Waxman random geometric graph:
//!   routers at seeded uniform positions in the unit square, link
//!   probability `density · α · exp(−d / (β·L))` decaying with distance,
//!   plus a seeded random spanning tree so instances are always connected;
//! * [`FamilyKind::BarabasiAlbert`] — preferential attachment: each new
//!   router links to `attach` existing routers picked proportionally to
//!   degree, producing the heavy-tailed degree structure of measured ISP
//!   maps (the Rocketfuel shape the paper points at);
//! * [`FamilyKind::HierIsp`] — a randomized two-level ISP: a backbone ring
//!   with seeded chords, access routers uplinked (possibly dual-homed) to
//!   random backbone routers — the stochastic counterpart of the
//!   deterministic [`crate::PopSpec`] construction, reusing the same
//!   [`NodeRole`] tiers.
//!
//! Every family produces a [`Pop`] — roles, backbone/access lists, virtual
//! customer/peer endpoints — so the whole placement stack (passive taps,
//! PPME sampling, active beacons) runs on generated instances unchanged,
//! and [`crate::fileio`] round-trips them through the text format.
//!
//! **Seeding contract:** generation is a pure function of
//! `(FamilySpec, seed)`. The RNG stream is consumed in a fixed documented
//! order (positions → spanning tree → extra links → endpoint attachment),
//! so adding parameters must never reorder existing draws; golden tests in
//! `crates/bench` pin seed-0 instances of each family.

use std::fmt;
use std::str::FromStr;

use netgraph::{bfs, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::topology::{NodeRole, Pop};

/// Typed validation error for generator specifications ([`FamilySpec`],
/// [`crate::dynamic::DynamicSpec`], [`crate::traffic::GravitySpec`]):
/// NaN, out-of-range, or structurally impossible parameters are rejected
/// before they can silently produce degenerate instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The offending parameter.
    pub field: &'static str,
    /// Why the value was rejected.
    pub message: String,
}

impl SpecError {
    pub(crate) fn new(field: &'static str, message: impl Into<String>) -> Self {
        SpecError {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.field, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Checks that `v` is finite and inside `[lo, hi]` (both bounds are
/// rendered in the message, so callers pass human-readable bounds —
/// use [`check_positive`] / [`check_min`] for open or unbounded ranges).
pub(crate) fn check_range(field: &'static str, v: f64, lo: f64, hi: f64) -> Result<(), SpecError> {
    if !v.is_finite() {
        return Err(SpecError::new(field, format!("must be finite, got {v}")));
    }
    if v < lo || v > hi {
        return Err(SpecError::new(
            field,
            format!("must be in [{lo}, {hi}], got {v}"),
        ));
    }
    Ok(())
}

/// Checks that `v` is finite and inside `(0, hi]` (`hi` is rendered in
/// the message, so callers pass a human-readable bound).
pub(crate) fn check_positive(field: &'static str, v: f64, hi: f64) -> Result<(), SpecError> {
    if !v.is_finite() {
        return Err(SpecError::new(field, format!("must be finite, got {v}")));
    }
    if v <= 0.0 || v > hi {
        return Err(SpecError::new(
            field,
            format!("must be in (0, {hi}], got {v}"),
        ));
    }
    Ok(())
}

/// Checks that `v` is finite and strictly positive (no upper bound).
pub(crate) fn check_positive_finite(field: &'static str, v: f64) -> Result<(), SpecError> {
    if !v.is_finite() || v <= 0.0 {
        return Err(SpecError::new(
            field,
            format!("must be positive and finite, got {v}"),
        ));
    }
    Ok(())
}

/// Checks that `v` is finite and at least `lo` (no upper bound).
pub(crate) fn check_min(field: &'static str, v: f64, lo: f64) -> Result<(), SpecError> {
    if !v.is_finite() {
        return Err(SpecError::new(field, format!("must be finite, got {v}")));
    }
    if v < lo {
        return Err(SpecError::new(
            field,
            format!("must be at least {lo}, got {v}"),
        ));
    }
    Ok(())
}

/// The family-specific shape parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum FamilyKind {
    /// Waxman random geometric graph.
    Waxman {
        /// Overall link probability scale `α ∈ (0, 1]`.
        alpha: f64,
        /// Distance decay scale `β ∈ (0, 1]` (larger = longer links).
        beta: f64,
    },
    /// Barabási–Albert preferential attachment.
    BarabasiAlbert {
        /// Links each new router creates (≥ 1; scaled by `density`).
        attach: usize,
    },
    /// Randomized two-level backbone/access ISP hierarchy.
    HierIsp {
        /// Fraction of routers in the backbone tier, `∈ (0, 1)`.
        backbone_fraction: f64,
        /// Probability an access router gets a second backbone uplink,
        /// `∈ [0, 1]`.
        dual_home_probability: f64,
    },
}

impl FamilyKind {
    /// Short stable name used in CSV rows and the [`FromStr`] format.
    pub fn name(&self) -> &'static str {
        match self {
            FamilyKind::Waxman { .. } => "waxman",
            FamilyKind::BarabasiAlbert { .. } => "ba",
            FamilyKind::HierIsp { .. } => "hier",
        }
    }
}

/// A parameterized, seeded topology family: the generator counterpart of
/// the hand-built [`crate::PopSpec`] presets.
///
/// Serializes to/from a one-line text form (see [`fmt::Display`] /
/// [`FromStr`]) that the `popmon_cli family` subcommand accepts, and the
/// generated instances round-trip through [`crate::fileio`]:
///
/// ```text
/// waxman routers=30 endpoints=15 density=0.6 alpha=0.9 beta=0.35
/// ba     routers=30 endpoints=15 density=0.6 attach=2
/// hier   routers=30 endpoints=15 density=0.6 backbone=0.2 dualhome=0.5
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySpec {
    /// The family and its shape parameters.
    pub kind: FamilyKind,
    /// Number of routers (≥ 2).
    pub routers: usize,
    /// Number of virtual traffic endpoints (≥ 2; split ~5:1 between
    /// customers below access routers and peers on the backbone).
    pub endpoints: usize,
    /// Density knob `∈ (0, 1]`, the sweep axis shared by all families:
    /// scales the Waxman link probability, interpolates the fractional
    /// Barabási–Albert attachment count between 1 and `attach`, and
    /// scales the hierarchical chord and extra-access-link budgets. The
    /// expected link count is strictly increasing in density at every
    /// size (for `ba` this requires `attach ≥ 2`; `attach = 1` is the
    /// preferential tree at every density).
    pub density: f64,
}

impl FamilySpec {
    /// A Waxman family with the canonical shape (`α = 0.9`, `β = 0.35`,
    /// density `0.6`).
    pub fn waxman(routers: usize, endpoints: usize) -> Self {
        FamilySpec {
            kind: FamilyKind::Waxman {
                alpha: 0.9,
                beta: 0.35,
            },
            routers,
            endpoints,
            density: 0.6,
        }
    }

    /// A Barabási–Albert family with the canonical shape (`attach = 2`,
    /// density `0.6`).
    pub fn barabasi_albert(routers: usize, endpoints: usize) -> Self {
        FamilySpec {
            kind: FamilyKind::BarabasiAlbert { attach: 2 },
            routers,
            endpoints,
            density: 0.6,
        }
    }

    /// A hierarchical ISP family with the canonical shape (20% backbone,
    /// 50% dual-homing, density `0.6`).
    pub fn hier_isp(routers: usize, endpoints: usize) -> Self {
        FamilySpec {
            kind: FamilyKind::HierIsp {
                backbone_fraction: 0.2,
                dual_home_probability: 0.5,
            },
            routers,
            endpoints,
            density: 0.6,
        }
    }

    /// The canonical spec for a family name (`"waxman"`, `"ba"`,
    /// `"hier"`), or `None` for an unknown name.
    pub fn canonical(family: &str, routers: usize, endpoints: usize) -> Option<Self> {
        match family {
            "waxman" => Some(Self::waxman(routers, endpoints)),
            "ba" => Some(Self::barabasi_albert(routers, endpoints)),
            "hier" => Some(Self::hier_isp(routers, endpoints)),
            _ => None,
        }
    }

    /// Validates every parameter, rejecting NaN / out-of-range values with
    /// a typed [`SpecError`].
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.routers < 2 {
            return Err(SpecError::new(
                "routers",
                format!("need at least 2 routers, got {}", self.routers),
            ));
        }
        if self.endpoints < 2 {
            return Err(SpecError::new(
                "endpoints",
                format!("need at least 2 traffic endpoints, got {}", self.endpoints),
            ));
        }
        check_positive("density", self.density, 1.0)?;
        match self.kind {
            FamilyKind::Waxman { alpha, beta } => {
                check_positive("alpha", alpha, 1.0)?;
                check_positive("beta", beta, 1.0)?;
            }
            FamilyKind::BarabasiAlbert { attach } => {
                if attach == 0 {
                    return Err(SpecError::new("attach", "must be at least 1".to_string()));
                }
                if attach >= self.routers {
                    return Err(SpecError::new(
                        "attach",
                        format!("attach {attach} must be below routers {}", self.routers),
                    ));
                }
            }
            FamilyKind::HierIsp {
                backbone_fraction,
                dual_home_probability,
            } => {
                if !backbone_fraction.is_finite()
                    || backbone_fraction <= 0.0
                    || backbone_fraction >= 1.0
                {
                    return Err(SpecError::new(
                        "backbone",
                        format!("must be in (0, 1), got {backbone_fraction}"),
                    ));
                }
                check_range("dualhome", dual_home_probability, 0.0, 1.0)?;
            }
        }
        Ok(())
    }

    /// Generates the seeded instance. Pure in `(self, seed)`; see the
    /// module docs for the seeding contract.
    pub fn build(&self, seed: u64) -> Result<Pop, SpecError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.routers;

        // Phase 1: the router-level edge list (family-specific).
        let edges: Vec<(usize, usize)> = match self.kind {
            FamilyKind::Waxman { alpha, beta } => {
                waxman_edges(n, alpha, beta, self.density, &mut rng)
            }
            FamilyKind::BarabasiAlbert { attach } => ba_edges(n, attach, self.density, &mut rng),
            FamilyKind::HierIsp {
                backbone_fraction,
                dual_home_probability,
            } => hier_edges(
                n,
                backbone_fraction,
                dual_home_probability,
                self.density,
                &mut rng,
            ),
        };

        // Phase 2: role assignment. The hierarchy is structural for
        // HierIsp (indices below the backbone cut); for the flat families
        // the top fifth by (degree, index) becomes the backbone — in
        // Barabási–Albert graphs that is exactly the hub set.
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut is_backbone = vec![false; n];
        match self.kind {
            FamilyKind::HierIsp {
                backbone_fraction, ..
            } => {
                let nb = hier_backbone_count(n, backbone_fraction);
                for flag in is_backbone.iter_mut().take(nb) {
                    *flag = true;
                }
            }
            _ => {
                let nb = (n / 5).max(1);
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&i| (std::cmp::Reverse(degree[i]), i));
                for &i in order.iter().take(nb) {
                    is_backbone[i] = true;
                }
            }
        }

        // Phase 3: materialize the graph and attach virtual endpoints
        // (customers below access routers, peers on the backbone).
        let mut b = GraphBuilder::new();
        let mut roles = Vec::with_capacity(n + self.endpoints);
        let ids: Vec<NodeId> = (0..n)
            .map(|i| {
                roles.push(if is_backbone[i] {
                    NodeRole::Backbone
                } else {
                    NodeRole::Access
                });
                b.add_node(format!("r{i}"))
            })
            .collect();
        for &(u, v) in &edges {
            b.add_edge(ids[u], ids[v], 1.0);
        }
        let backbone: Vec<NodeId> = (0..n).filter(|&i| is_backbone[i]).map(|i| ids[i]).collect();
        let access: Vec<NodeId> = (0..n)
            .filter(|&i| !is_backbone[i])
            .map(|i| ids[i])
            .collect();

        let peers = (self.endpoints / 6).max(1);
        let customers = self.endpoints - peers;
        let customer_hosts: &[NodeId] = if access.is_empty() {
            &backbone
        } else {
            &access
        };
        let mut endpoints = Vec::with_capacity(self.endpoints);
        for i in 0..customers {
            roles.push(NodeRole::Customer);
            let c = b.add_node(format!("c{i}"));
            let host = customer_hosts[rng.gen_range(0..customer_hosts.len())];
            b.add_edge(c, host, 1.0);
            endpoints.push(c);
        }
        for i in 0..peers {
            roles.push(NodeRole::Peer);
            let p = b.add_node(format!("p{i}"));
            let host = backbone[rng.gen_range(0..backbone.len())];
            b.add_edge(p, host, 1.0);
            endpoints.push(p);
        }

        let graph = b.build();
        debug_assert!(
            bfs::is_connected(&graph),
            "family instances must be connected"
        );
        Ok(Pop {
            graph,
            roles,
            backbone,
            access,
            endpoints,
        })
    }
}

/// Backbone tier size of the hierarchical family (shared by edge
/// generation and role assignment so the two can never disagree).
fn hier_backbone_count(n: usize, backbone_fraction: f64) -> usize {
    (((n as f64) * backbone_fraction).round() as usize).clamp(1, n - 1)
}

/// Undirected simple-edge accumulator shared by the family generators:
/// keeps the edge list and an adjacency matrix in lockstep so duplicate
/// detection is O(1) and the push/mark invariant lives in one place.
struct EdgeAccum {
    adj: Vec<Vec<bool>>,
    edges: Vec<(usize, usize)>,
}

impl EdgeAccum {
    fn new(n: usize) -> Self {
        EdgeAccum {
            adj: vec![vec![false; n]; n],
            edges: Vec::new(),
        }
    }

    fn contains(&self, u: usize, v: usize) -> bool {
        self.adj[u][v]
    }

    fn add(&mut self, u: usize, v: usize) {
        debug_assert!(
            u != v && !self.adj[u][v],
            "generators never add duplicate links"
        );
        self.adj[u][v] = true;
        self.adj[v][u] = true;
        self.edges.push((u, v));
    }
}

/// Waxman edges: seeded positions, a random spanning tree for guaranteed
/// connectivity, then distance-decayed extra links in fixed `i < j` order.
fn waxman_edges(
    n: usize,
    alpha: f64,
    beta: f64,
    density: f64,
    rng: &mut StdRng,
) -> Vec<(usize, usize)> {
    let mut xy = Vec::with_capacity(n);
    for _ in 0..n {
        xy.push((rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)));
    }
    let mut acc = EdgeAccum::new(n);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        acc.add(i, j);
    }
    let scale = std::f64::consts::SQRT_2; // max distance in the unit square
    for i in 0..n {
        for j in (i + 1)..n {
            if acc.contains(i, j) {
                continue;
            }
            let (dx, dy) = (xy[i].0 - xy[j].0, xy[i].1 - xy[j].1);
            let d = (dx * dx + dy * dy).sqrt();
            let p = density * alpha * (-d / (beta * scale)).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                acc.add(i, j);
            }
        }
    }
    acc.edges
}

/// Barabási–Albert edges: a seed clique, then each new router attaches to
/// `m_v` distinct earlier routers drawn proportionally to degree (stub
/// sampling). The density knob interpolates the attachment count
/// *fractionally* between 1 (a pure preferential tree, the connectivity
/// floor) and `attach`: `x = 1 + (attach − 1) · density` and each router
/// draws `m_v = ⌊x⌋ + Bernoulli(x − ⌊x⌋)`, so the expected link count is
/// strictly increasing in density whenever `attach ≥ 2` (for `attach = 1`
/// the family is the tree at every density). A plain `round()` or a
/// `max(1, attach · density)` clamp would collapse whole density ranges
/// onto identical instances.
fn ba_edges(n: usize, attach: usize, density: f64, rng: &mut StdRng) -> Vec<(usize, usize)> {
    let x = (1.0 + ((attach - 1) as f64) * density).min((n - 1) as f64);
    let core = ((x.ceil() as usize) + 1).min(n);
    let mut edges = Vec::new();
    let mut stubs: Vec<usize> = Vec::new();
    for i in 0..core {
        for j in (i + 1)..core {
            edges.push((i, j));
            stubs.push(i);
            stubs.push(j);
        }
    }
    for v in core..n {
        let m = ((x.floor() as usize) + usize::from(rng.gen_bool(x.fract()))).clamp(1, v);
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        let mut guard = 0usize;
        while chosen.len() < m && guard < 50 * m + 50 {
            guard += 1;
            let t = stubs[rng.gen_range(0..stubs.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        // Degenerate stub streaks: fill deterministically so the router
        // still gets its m links (connectivity never depends on luck).
        let mut fill = 0usize;
        while chosen.len() < m && fill < v {
            if !chosen.contains(&fill) {
                chosen.push(fill);
            }
            fill += 1;
        }
        for &u in &chosen {
            edges.push((u, v));
            stubs.push(u);
            stubs.push(v);
        }
    }
    edges
}

/// Hierarchical ISP edges: backbone ring, seeded chords (budget scaled by
/// `density`), one or two random backbone uplinks per access router, and
/// a density-scaled budget of extra access-side links. Chords only exist
/// for backbones of 4+ (smaller rings are already complete), so the extra
/// access links keep `density` effective at every instance size.
fn hier_edges(
    n: usize,
    backbone_fraction: f64,
    dual_home_probability: f64,
    density: f64,
    rng: &mut StdRng,
) -> Vec<(usize, usize)> {
    let nb = hier_backbone_count(n, backbone_fraction);
    let mut acc = EdgeAccum::new(n);
    match nb {
        0 | 1 => {}
        2 => acc.add(0, 1),
        _ => {
            for i in 0..nb {
                acc.add(i, (i + 1) % nb);
            }
        }
    }
    let chords = (density * nb as f64 / 2.0).round() as usize;
    let mut placed = 0usize;
    let mut guard = 0usize;
    while nb >= 4 && placed < chords && guard < 20 * chords + 20 {
        guard += 1;
        let u = rng.gen_range(0..nb);
        let v = rng.gen_range(0..nb);
        if u != v && !acc.contains(u, v) {
            acc.add(u, v);
            placed += 1;
        }
    }
    for a in nb..n {
        let primary = rng.gen_range(0..nb);
        acc.add(a, primary);
        if nb >= 2 && rng.gen_bool(dual_home_probability) {
            let mut secondary = rng.gen_range(0..nb - 1);
            if secondary >= primary {
                secondary += 1;
            }
            acc.add(a, secondary);
        }
    }
    let na = n - nb;
    let extra = (density * na as f64 / 2.0).round() as usize;
    let mut placed = 0usize;
    let mut guard = 0usize;
    while na >= 1 && n >= 3 && placed < extra && guard < 20 * extra + 20 {
        guard += 1;
        let u = nb + rng.gen_range(0..na);
        let v = rng.gen_range(0..n);
        if u != v && !acc.contains(u, v) {
            acc.add(u, v);
            placed += 1;
        }
    }
    acc.edges
}

impl fmt::Display for FamilySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} routers={} endpoints={} density={}",
            self.kind.name(),
            self.routers,
            self.endpoints,
            self.density
        )?;
        match self.kind {
            FamilyKind::Waxman { alpha, beta } => write!(f, " alpha={alpha} beta={beta}"),
            FamilyKind::BarabasiAlbert { attach } => write!(f, " attach={attach}"),
            FamilyKind::HierIsp {
                backbone_fraction,
                dual_home_probability,
            } => {
                write!(
                    f,
                    " backbone={backbone_fraction} dualhome={dual_home_probability}"
                )
            }
        }
    }
}

impl FromStr for FamilySpec {
    type Err = SpecError;

    /// Parses the one-line form emitted by [`fmt::Display`]: a family name
    /// (`waxman` / `ba` / `hier`) followed by `key=value` fields. Missing
    /// fields keep the family's canonical defaults; unknown keys and
    /// malformed values are rejected with a typed error, and the result is
    /// [`FamilySpec::validate`]d before it is returned.
    fn from_str(s: &str) -> Result<Self, SpecError> {
        let mut tokens = s.split_whitespace();
        let family = tokens
            .next()
            .ok_or_else(|| SpecError::new("family", "empty spec".to_string()))?;
        let mut spec = FamilySpec::canonical(family, 10, 6).ok_or_else(|| {
            SpecError::new(
                "family",
                format!("unknown family {family:?} (waxman|ba|hier)"),
            )
        })?;
        let mut seen: Vec<String> = Vec::new();
        for tok in tokens {
            let (key, raw) = tok.split_once('=').ok_or_else(|| {
                SpecError::new("spec", format!("expected key=value, got {tok:?}"))
            })?;
            if seen.iter().any(|k| k == key) {
                return Err(SpecError::new("spec", format!("duplicate key {key:?}")));
            }
            seen.push(key.to_string());
            let f64_of = |field: &'static str| -> Result<f64, SpecError> {
                raw.parse::<f64>()
                    .map_err(|_| SpecError::new(field, format!("bad number {raw:?}")))
            };
            let usize_of = |field: &'static str| -> Result<usize, SpecError> {
                raw.parse::<usize>()
                    .map_err(|_| SpecError::new(field, format!("bad count {raw:?}")))
            };
            match (key, &mut spec.kind) {
                ("routers", _) => spec.routers = usize_of("routers")?,
                ("endpoints", _) => spec.endpoints = usize_of("endpoints")?,
                ("density", _) => spec.density = f64_of("density")?,
                ("alpha", FamilyKind::Waxman { alpha, .. }) => *alpha = f64_of("alpha")?,
                ("beta", FamilyKind::Waxman { beta, .. }) => *beta = f64_of("beta")?,
                ("attach", FamilyKind::BarabasiAlbert { attach }) => *attach = usize_of("attach")?,
                (
                    "backbone",
                    FamilyKind::HierIsp {
                        backbone_fraction, ..
                    },
                ) => *backbone_fraction = f64_of("backbone")?,
                (
                    "dualhome",
                    FamilyKind::HierIsp {
                        dual_home_probability,
                        ..
                    },
                ) => *dual_home_probability = f64_of("dualhome")?,
                _ => {
                    return Err(SpecError::new(
                        "spec",
                        format!("unknown key {key:?} for family {family:?}"),
                    ))
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

/// Generates the instance and its gravity traffic, serialized to the
/// [`crate::fileio`] text format with the spec recorded as a header
/// comment — what `popmon_cli family` emits, and the inverse of
/// [`crate::fileio::parse`].
pub fn emit_document(spec: &FamilySpec, seed: u64) -> Result<String, SpecError> {
    let pop = spec.build(seed)?;
    let ts = crate::traffic::GravitySpec::default().generate(&pop, seed);
    Ok(format!(
        "# family: {spec}\n# seed: {seed}\n{}",
        crate::fileio::serialize(&pop, &ts)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_canonical(routers: usize, endpoints: usize) -> Vec<FamilySpec> {
        vec![
            FamilySpec::waxman(routers, endpoints),
            FamilySpec::barabasi_albert(routers, endpoints),
            FamilySpec::hier_isp(routers, endpoints),
        ]
    }

    #[test]
    fn instances_are_connected_and_shaped() {
        for spec in all_canonical(20, 10) {
            for seed in 0..5 {
                let pop = spec.build(seed).expect("valid spec");
                assert!(bfs::is_connected(&pop.graph), "{spec} seed {seed}");
                assert_eq!(pop.router_count(), 20);
                assert_eq!(pop.endpoints.len(), 10);
                assert!(!pop.backbone.is_empty());
                for &e in &pop.endpoints {
                    assert_eq!(pop.graph.degree(e), 1, "endpoints hang off one link");
                }
                // Role lists and the role vector must agree.
                for v in pop.graph.nodes() {
                    match pop.role(v) {
                        NodeRole::Backbone => assert!(pop.backbone.contains(&v)),
                        NodeRole::Access => assert!(pop.access.contains(&v)),
                        _ => assert!(pop.endpoints.contains(&v)),
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        for spec in all_canonical(15, 8) {
            let a = spec.build(7).unwrap();
            let b = spec.build(7).unwrap();
            assert_eq!(a.graph.node_count(), b.graph.node_count());
            assert_eq!(a.graph.edge_count(), b.graph.edge_count());
            let ends = |p: &Pop| -> Vec<(usize, usize)> {
                p.graph
                    .edges()
                    .map(|e| {
                        let (u, v) = p.graph.endpoints(e);
                        (u.index(), v.index())
                    })
                    .collect()
            };
            assert_eq!(
                ends(&a),
                ends(&b),
                "{spec}: same seed must rebuild the same graph"
            );
            let c = spec.build(8).unwrap();
            assert!(
                ends(&a) != ends(&c) || a.graph.edge_count() != c.graph.edge_count(),
                "{spec}: different seeds should differ"
            );
        }
    }

    #[test]
    fn density_scales_link_count() {
        for family in ["waxman", "ba", "hier"] {
            let mut sparse = FamilySpec::canonical(family, 30, 10).unwrap();
            let mut dense = sparse.clone();
            sparse.density = 0.15;
            dense.density = 1.0;
            let lo = sparse.build(3).unwrap().graph.edge_count();
            let hi = dense.build(3).unwrap().graph.edge_count();
            assert!(
                hi > lo,
                "{family}: density 1.0 ({hi}) must out-link 0.15 ({lo})"
            );
        }
    }

    /// Density must never be a silent no-op anywhere on the sweep grid:
    /// neighboring grid densities produce distinct instances for every
    /// family even at the smallest sweep size (regression: `round()`-based
    /// BA attachment collapsed 0.4 and 0.7, and the hierarchy had no
    /// density-sensitive draw below a 4-router backbone).
    #[test]
    fn neighboring_grid_densities_differ() {
        let link_count = |family: &str, routers: usize, density: f64, seed: u64| {
            let mut spec = FamilySpec::canonical(family, routers, 6).unwrap();
            spec.density = density;
            spec.build(seed).unwrap().graph.edge_count()
        };
        for family in ["waxman", "ba", "hier"] {
            for routers in [12usize, 20] {
                for (lo, hi) in [(0.25, 0.5), (0.4, 0.7), (0.7, 1.0)] {
                    // A fractional-attachment draw can tie on one seed;
                    // distinctness must show across a small seed set.
                    assert!(
                        (0..8).any(|seed| {
                            link_count(family, routers, lo, seed)
                                != link_count(family, routers, hi, seed)
                        }),
                        "{family}/{routers}: densities {lo} and {hi} always coincide"
                    );
                }
            }
        }
    }

    #[test]
    fn ba_hubs_become_backbone() {
        let pop = FamilySpec::barabasi_albert(40, 10).build(1).unwrap();
        // Role assignment ranks *router-level* degree (endpoint links are
        // attached afterwards), so compare router-only neighbor counts:
        // every backbone router must out-rank every access router.
        let router_degree = |v: netgraph::NodeId| {
            pop.graph
                .neighbors(v)
                .iter()
                .filter(|&&(_, u)| pop.is_router(u))
                .count()
        };
        let min_bb = pop
            .backbone
            .iter()
            .map(|&v| router_degree(v))
            .min()
            .unwrap();
        let max_ac = pop.access.iter().map(|&v| router_degree(v)).max().unwrap();
        assert!(
            min_bb >= max_ac,
            "backbone must be the hub set ({min_bb} vs {max_ac})"
        );
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut s = FamilySpec::waxman(10, 6);
        s.density = f64::NAN;
        assert_eq!(s.validate().unwrap_err().field, "density");
        s.density = 0.0;
        assert_eq!(s.validate().unwrap_err().field, "density");
        s.density = 1.5;
        assert_eq!(s.validate().unwrap_err().field, "density");

        let mut s = FamilySpec::waxman(1, 6);
        assert_eq!(s.validate().unwrap_err().field, "routers");
        s.routers = 10;
        s.endpoints = 1;
        assert_eq!(s.validate().unwrap_err().field, "endpoints");

        let mut s = FamilySpec::waxman(10, 6);
        s.kind = FamilyKind::Waxman {
            alpha: f64::INFINITY,
            beta: 0.3,
        };
        assert_eq!(s.validate().unwrap_err().field, "alpha");
        s.kind = FamilyKind::Waxman {
            alpha: 0.9,
            beta: -0.1,
        };
        assert_eq!(s.validate().unwrap_err().field, "beta");

        let mut s = FamilySpec::barabasi_albert(10, 6);
        s.kind = FamilyKind::BarabasiAlbert { attach: 0 };
        assert_eq!(s.validate().unwrap_err().field, "attach");
        s.kind = FamilyKind::BarabasiAlbert { attach: 10 };
        assert_eq!(s.validate().unwrap_err().field, "attach");

        let mut s = FamilySpec::hier_isp(10, 6);
        s.kind = FamilyKind::HierIsp {
            backbone_fraction: 1.0,
            dual_home_probability: 0.5,
        };
        assert_eq!(s.validate().unwrap_err().field, "backbone");
        s.kind = FamilyKind::HierIsp {
            backbone_fraction: 0.2,
            dual_home_probability: 1.1,
        };
        assert_eq!(s.validate().unwrap_err().field, "dualhome");

        // build() refuses before touching the RNG.
        let mut s = FamilySpec::waxman(10, 6);
        s.density = f64::NAN;
        assert!(s.build(0).is_err());
    }

    #[test]
    fn spec_line_round_trips() {
        for spec in all_canonical(23, 11) {
            let line = spec.to_string();
            let back: FamilySpec = line.parse().expect("display form must parse");
            assert_eq!(back, spec, "{line}");
        }
        let custom: FamilySpec = "waxman routers=12 endpoints=5 density=0.4 alpha=0.7 beta=0.2"
            .parse()
            .unwrap();
        assert_eq!(custom.routers, 12);
        assert_eq!(custom.endpoints, 5);
        assert!(matches!(custom.kind, FamilyKind::Waxman { alpha, beta }
            if (alpha - 0.7).abs() < 1e-12 && (beta - 0.2).abs() < 1e-12));
    }

    #[test]
    fn spec_parse_rejects_garbage() {
        assert!("".parse::<FamilySpec>().is_err());
        assert!("erdos routers=10".parse::<FamilySpec>().is_err());
        assert!("waxman routers".parse::<FamilySpec>().is_err());
        assert!("waxman routers=ten".parse::<FamilySpec>().is_err());
        assert!(
            "waxman attach=2".parse::<FamilySpec>().is_err(),
            "wrong family's key"
        );
        assert!(
            "ba routers=4 attach=9".parse::<FamilySpec>().is_err(),
            "fails validation"
        );
        let e = "waxman density=0.2 density=0.9"
            .parse::<FamilySpec>()
            .unwrap_err();
        assert!(e.message.contains("duplicate key"), "{e}");
    }

    #[test]
    fn emitted_document_parses_back() {
        for spec in all_canonical(12, 6) {
            let doc = emit_document(&spec, 3).unwrap();
            assert!(doc.starts_with(&format!("# family: {spec}\n")));
            let (pop, ts) = crate::fileio::parse(&doc).expect("emitted document must parse");
            assert_eq!(pop.router_count(), 12);
            assert_eq!(pop.endpoints.len(), 6);
            assert_eq!(ts.len(), 6 * 5);
        }
    }
}
