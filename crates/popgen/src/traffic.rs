//! Traffic-matrix generation with the paper's non-uniform structure.
//!
//! Section 4.4: *"Since we do not have real available data of traffic
//! matrix issued from the considered POP topologies, we randomly generate
//! several traffic matrices. [...] In order not to generate uniform traffic
//! distribution between all access routers and backbone routers, we
//! randomly pick some preferred pairs of high traffic."* This module
//! reproduces that: every ordered endpoint pair carries a base volume, and
//! a seeded choice of preferred pairs is boosted by a large factor.
//!
//! Routing is shortest-path from entry to exit (following \[15\], as the
//! paper does), with deterministic tie-breaking; the reverse direction is
//! routed independently, so paths are not assumed symmetric (the paper
//! explicitly drops that assumption of \[1\]).

use netgraph::{dijkstra, ksp, Graph, NodeId, Path};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::families::{check_positive, check_positive_finite, SpecError};
use crate::topology::Pop;

/// A single-path traffic: the aggregation of the IP flows entering at
/// `src` and leaving at `dst`, routed on `path` with bandwidth `volume`.
#[derive(Debug, Clone)]
pub struct Traffic {
    /// Entry endpoint.
    pub src: NodeId,
    /// Exit endpoint.
    pub dst: NodeId,
    /// Bandwidth `v_t`.
    pub volume: f64,
    /// The routed path `p_t`.
    pub path: Path,
}

/// A multi-routed traffic (Section 5): several weighted routes between the
/// same endpoint pair, as produced by ECMP-style load balancing.
#[derive(Debug, Clone)]
pub struct MultiTraffic {
    /// Entry endpoint.
    pub src: NodeId,
    /// Exit endpoint.
    pub dst: NodeId,
    /// Total bandwidth of the traffic.
    pub volume: f64,
    /// `(route, volume share)` — shares sum to 1.
    pub routes: Vec<(Path, f64)>,
}

/// Parameters of the traffic generator.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// Base volume range (uniform).
    pub base_range: (f64, f64),
    /// Number of preferred high-traffic ordered pairs.
    pub preferred_pairs: usize,
    /// Multiplier range (uniform) applied to preferred pairs.
    pub boost_range: (f64, f64),
}

impl Default for TrafficSpec {
    fn default() -> Self {
        Self {
            base_range: (1.0, 5.0),
            preferred_pairs: 6,
            boost_range: (10.0, 30.0),
        }
    }
}

/// A set of routed traffics over a graph.
#[derive(Debug, Clone, Default)]
pub struct TrafficSet {
    /// The traffics, in deterministic (src, dst) order.
    pub traffics: Vec<Traffic>,
}

impl TrafficSet {
    /// Total bandwidth `V = Σ v_t`.
    pub fn total_volume(&self) -> f64 {
        self.traffics.iter().map(|t| t.volume).sum()
    }

    /// Load per edge: sum of the volumes of the traffics crossing it.
    pub fn edge_loads(&self, graph: &Graph) -> Vec<f64> {
        let mut load = vec![0.0; graph.edge_count()];
        for t in &self.traffics {
            for &e in t.path.edges() {
                load[e.index()] += t.volume;
            }
        }
        load
    }

    /// Number of traffics.
    pub fn len(&self) -> usize {
        self.traffics.len()
    }

    /// `true` when no traffic is present.
    pub fn is_empty(&self) -> bool {
        self.traffics.is_empty()
    }
}

impl TrafficSpec {
    /// Generates the all-ordered-pairs traffic matrix over the endpoints of
    /// `pop`, shortest-path routed, with seeded preferred-pair boosting.
    pub fn generate(&self, pop: &Pop, seed: u64) -> TrafficSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let eps = &pop.endpoints;
        let n = eps.len();

        // Volumes first (so path computation order cannot disturb the RNG
        // stream): base volumes for every ordered pair.
        let mut volume = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    volume[i][j] = rng.gen_range(self.base_range.0..=self.base_range.1);
                }
            }
        }
        // Preferred pairs: a seeded pick of ordered pairs boosted hard.
        let mut boosted = 0usize;
        let mut guard = 0usize;
        while boosted < self.preferred_pairs && n >= 2 && guard < 100 * self.preferred_pairs + 100 {
            guard += 1;
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i == j {
                continue;
            }
            let boost = rng.gen_range(self.boost_range.0..=self.boost_range.1);
            volume[i][j] *= boost;
            boosted += 1;
        }

        // Shortest-path routing, one tree per source endpoint.
        let mut traffics = Vec::with_capacity(n * n.saturating_sub(1));
        for (i, &s) in eps.iter().enumerate() {
            let tree = dijkstra::shortest_path_tree(&pop.graph, s).expect("valid source");
            for (j, &d) in eps.iter().enumerate() {
                if i == j {
                    continue;
                }
                let path = tree.path_to(&pop.graph, d).expect("connected POP");
                traffics.push(Traffic {
                    src: s,
                    dst: d,
                    volume: volume[i][j],
                    path,
                });
            }
        }
        TrafficSet { traffics }
    }

    /// Generates multi-routed traffics (Section 5): up to `max_routes`
    /// shortest loopless routes per pair, with geometrically decaying
    /// shares renormalized to 1.
    ///
    /// # Panics
    ///
    /// Panics when `max_routes` is 0; use
    /// [`TrafficSpec::try_generate_multi`] to surface the typed error.
    pub fn generate_multi(&self, pop: &Pop, seed: u64, max_routes: usize) -> Vec<MultiTraffic> {
        self.try_generate_multi(pop, seed, max_routes)
            .unwrap_or_else(|e| panic!("invalid multi-route request: {e}"))
    }

    /// Fallible variant of [`TrafficSpec::generate_multi`]: rejects a zero
    /// `max_routes` with a typed [`SpecError`] instead of panicking.
    pub fn try_generate_multi(
        &self,
        pop: &Pop,
        seed: u64,
        max_routes: usize,
    ) -> Result<Vec<MultiTraffic>, SpecError> {
        if max_routes == 0 {
            return Err(SpecError::new(
                "max_routes",
                "need at least one route per traffic".to_string(),
            ));
        }
        let single = self.generate(pop, seed);
        Ok(single
            .traffics
            .into_iter()
            .map(|t| {
                let paths = ksp::k_shortest_paths(&pop.graph, t.src, t.dst, max_routes)
                    .expect("valid endpoints");
                // Shares 1, 1/2, 1/4, ... renormalized.
                let raw: Vec<f64> = (0..paths.len()).map(|i| 0.5f64.powi(i as i32)).collect();
                let norm: f64 = raw.iter().sum();
                let routes = paths
                    .into_iter()
                    .zip(raw)
                    .map(|(p, w)| (p, w / norm))
                    .collect::<Vec<_>>();
                MultiTraffic {
                    src: t.src,
                    dst: t.dst,
                    volume: t.volume,
                    routes,
                }
            })
            .collect())
    }
}

/// Parameters of the gravity-model traffic generator used with the random
/// topology families ([`crate::families`]).
///
/// Each endpoint draws a seeded *mass* (its aggregate demand); the volume
/// of the ordered pair `(i, j)` is proportional to `m_i^skew · m_j^skew`,
/// normalized so all pairs sum to `total_volume`. This is the classic
/// gravity traffic-matrix model — structurally non-uniform like the
/// paper's preferred-pair boosting, but with the skew concentrated on
/// heavy *endpoints* rather than heavy pairs.
#[derive(Debug, Clone)]
pub struct GravitySpec {
    /// Total bandwidth `V = Σ v_t` of the generated matrix (> 0).
    pub total_volume: f64,
    /// Uniform range the per-endpoint masses are drawn from
    /// (`0 < lo ≤ hi`).
    pub mass_range: (f64, f64),
    /// Exponent applied to the masses, `∈ (0, 16]`: 1 is the plain
    /// gravity model, larger values concentrate volume on the heavy
    /// endpoints (the cap keeps `mass^skew` far from overflow).
    pub skew: f64,
}

impl Default for GravitySpec {
    fn default() -> Self {
        Self {
            total_volume: 1000.0,
            mass_range: (1.0, 10.0),
            skew: 1.0,
        }
    }
}

impl GravitySpec {
    /// Validates every parameter, rejecting NaN / out-of-range values with
    /// a typed [`SpecError`].
    pub fn validate(&self) -> Result<(), SpecError> {
        check_positive_finite("total_volume", self.total_volume)?;
        check_positive_finite("mass_range", self.mass_range.0)?;
        check_positive_finite("mass_range", self.mass_range.1)?;
        if self.mass_range.1 < self.mass_range.0 {
            return Err(SpecError {
                field: "mass_range",
                message: format!(
                    "upper bound {} below lower bound {}",
                    self.mass_range.1, self.mass_range.0
                ),
            });
        }
        check_positive("skew", self.skew, 16.0)?;
        Ok(())
    }

    /// Generates the gravity traffic matrix over the endpoints of `pop`,
    /// shortest-path routed like [`TrafficSpec::generate`]. Pure in
    /// `(self, pop, seed)`: masses are drawn in endpoint order before any
    /// path computation, so routing can never disturb the RNG stream.
    ///
    /// # Panics
    ///
    /// Panics when the spec is invalid (see [`GravitySpec::validate`]);
    /// use [`GravitySpec::try_generate`] to surface the typed error.
    pub fn generate(&self, pop: &Pop, seed: u64) -> TrafficSet {
        self.try_generate(pop, seed)
            .unwrap_or_else(|e| panic!("invalid GravitySpec: {e}"))
    }

    /// Fallible variant of [`GravitySpec::generate`]: validates the spec
    /// and returns the typed [`SpecError`] instead of panicking.
    pub fn try_generate(&self, pop: &Pop, seed: u64) -> Result<TrafficSet, SpecError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let eps = &pop.endpoints;
        let n = eps.len();

        let masses: Vec<f64> = (0..n)
            .map(|_| {
                rng.gen_range(self.mass_range.0..=self.mass_range.1)
                    .powf(self.skew)
            })
            .collect();
        // Off-diagonal mass-product normalizer, accumulated in the same
        // i-major order the emission loop uses so volumes are exactly the
        // per-pair products scaled by their sum.
        let mut norm = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    norm += masses[i] * masses[j];
                }
            }
        }

        let mut traffics = Vec::with_capacity(n * n.saturating_sub(1));
        for (i, &s) in eps.iter().enumerate() {
            let tree = dijkstra::shortest_path_tree(&pop.graph, s).expect("valid source");
            for (j, &d) in eps.iter().enumerate() {
                if i == j {
                    continue;
                }
                let path = tree.path_to(&pop.graph, d).expect("connected instance");
                let volume = if norm > 0.0 {
                    self.total_volume * (masses[i] * masses[j]) / norm
                } else {
                    0.0
                };
                traffics.push(Traffic {
                    src: s,
                    dst: d,
                    volume,
                    path,
                });
            }
        }
        Ok(TrafficSet { traffics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::PopSpec;

    #[test]
    fn all_ordered_pairs_present() {
        let pop = PopSpec::paper_10().build();
        let ts = TrafficSpec::default().generate(&pop, 7);
        assert_eq!(ts.len(), 132);
        assert!(ts.traffics.iter().all(|t| t.src != t.dst));
        assert!(ts.traffics.iter().all(|t| t.volume > 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let pop = PopSpec::paper_10().build();
        let a = TrafficSpec::default().generate(&pop, 42);
        let b = TrafficSpec::default().generate(&pop, 42);
        assert_eq!(a.total_volume(), b.total_volume());
        for (x, y) in a.traffics.iter().zip(&b.traffics) {
            assert_eq!(x.volume, y.volume);
            assert_eq!(x.path.edges(), y.path.edges());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let pop = PopSpec::paper_10().build();
        let a = TrafficSpec::default().generate(&pop, 1);
        let b = TrafficSpec::default().generate(&pop, 2);
        assert_ne!(a.total_volume(), b.total_volume());
    }

    #[test]
    fn paths_connect_their_endpoints() {
        let pop = PopSpec::paper_10().build();
        let ts = TrafficSpec::default().generate(&pop, 3);
        for t in &ts.traffics {
            assert_eq!(t.path.source(), t.src);
            assert_eq!(t.path.target(), t.dst);
            assert!(t.path.is_simple());
        }
    }

    #[test]
    fn preferred_pairs_skew_the_distribution() {
        let pop = PopSpec::paper_10().build();
        let uniform = TrafficSpec {
            preferred_pairs: 0,
            ..Default::default()
        };
        let skewed = TrafficSpec {
            preferred_pairs: 8,
            ..Default::default()
        };
        let u = uniform.generate(&pop, 5);
        let s = skewed.generate(&pop, 5);
        let max_u = u.traffics.iter().map(|t| t.volume).fold(0.0, f64::max);
        let max_s = s.traffics.iter().map(|t| t.volume).fold(0.0, f64::max);
        // A boosted pair must dominate anything the uniform draw produced.
        assert!(max_s > max_u * 2.0, "max_s = {max_s}, max_u = {max_u}");
    }

    #[test]
    fn edge_loads_sum_matches_path_lengths() {
        let pop = PopSpec::paper_10().build();
        let ts = TrafficSpec::default().generate(&pop, 11);
        let loads = ts.edge_loads(&pop.graph);
        let total_load: f64 = loads.iter().sum();
        let expected: f64 = ts
            .traffics
            .iter()
            .map(|t| t.volume * t.path.len() as f64)
            .sum();
        assert!((total_load - expected).abs() < 1e-6);
    }

    #[test]
    fn multi_routes_shares_sum_to_one() {
        let pop = PopSpec::paper_15().build();
        let multi = TrafficSpec::default().generate_multi(&pop, 9, 3);
        assert_eq!(multi.len(), 1980);
        for mt in multi.iter().take(50) {
            let sum: f64 = mt.routes.iter().map(|&(_, s)| s).sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(!mt.routes.is_empty() && mt.routes.len() <= 3);
            for (p, _) in &mt.routes {
                assert_eq!(p.source(), mt.src);
                assert_eq!(p.target(), mt.dst);
            }
        }
    }

    #[test]
    fn empty_traffic_set_basics() {
        let ts = TrafficSet::default();
        assert!(ts.is_empty());
        assert_eq!(ts.total_volume(), 0.0);
    }

    #[test]
    fn gravity_matrix_sums_to_total_and_is_deterministic() {
        let pop = PopSpec::paper_10().build();
        let spec = GravitySpec::default();
        let a = spec.generate(&pop, 5);
        assert_eq!(a.len(), 132, "all ordered endpoint pairs");
        assert!((a.total_volume() - spec.total_volume).abs() < 1e-6);
        assert!(a.traffics.iter().all(|t| t.volume > 0.0 && t.src != t.dst));
        for t in &a.traffics {
            assert_eq!(t.path.source(), t.src);
            assert_eq!(t.path.target(), t.dst);
        }
        let b = spec.generate(&pop, 5);
        let volumes = |ts: &TrafficSet| -> Vec<u64> {
            ts.traffics.iter().map(|t| t.volume.to_bits()).collect()
        };
        assert_eq!(volumes(&a), volumes(&b), "same seed, same matrix");
        assert_ne!(
            volumes(&a),
            volumes(&spec.generate(&pop, 6)),
            "seeds differ"
        );
    }

    #[test]
    fn gravity_skew_concentrates_volume() {
        let pop = PopSpec::paper_10().build();
        let flat = GravitySpec {
            skew: 1.0,
            ..Default::default()
        }
        .generate(&pop, 2);
        let skewed = GravitySpec {
            skew: 3.0,
            ..Default::default()
        }
        .generate(&pop, 2);
        let max = |ts: &TrafficSet| ts.traffics.iter().map(|t| t.volume).fold(0.0, f64::max);
        assert!(
            max(&skewed) > max(&flat),
            "higher skew must sharpen the heaviest pair"
        );
    }

    #[test]
    fn gravity_validation_rejects_bad_parameters() {
        let ok = GravitySpec::default();
        assert!(ok.validate().is_ok());
        let bad = GravitySpec {
            total_volume: f64::NAN,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "total_volume");
        let bad = GravitySpec {
            total_volume: 0.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = GravitySpec {
            mass_range: (0.0, 1.0),
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "mass_range");
        let bad = GravitySpec {
            mass_range: (5.0, 1.0),
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "mass_range");
        let bad = GravitySpec {
            skew: -1.0,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "skew");
    }
}
