//! Seeded failure ensembles: SRLG link groups, independent link faults,
//! node churn, and diurnal demand perturbation.
//!
//! The paper places monitors against one static topology and traffic
//! matrix; production fleets see *correlated* link failures (a conduit cut
//! takes down every fiber it carries) and demand churn. This module samples
//! those as i.i.d. scenarios: a [`FailureSpec`] parameterizes shared-risk
//! link groups (SRLGs) layered on any generated topology, independent
//! per-link failures and optional node churn; demand perturbation rides the
//! existing [`DynamicSpec`] process parameters. A [`FailureModel`] binds
//! the spec to one [`Pop`] and turns `(spec, seed)` into a reproducible
//! scenario ensemble that `placement::resilience` scores through a warm
//! delta chain.
//!
//! ## SRLG grouping
//!
//! [`Pop`] exposes no coordinates, so grouping is *structural*, uniform
//! across all families (presets, Waxman, Barabási–Albert, hierarchical):
//! every link is assigned to the conduit of its **site** — the router
//! endpoint with the smaller index, falling back to the smaller endpoint
//! when both or neither are routers — and sites are folded into
//! `groups` buckets (`site mod groups`). Links leaving the same site share
//! fate, which is exactly the conduit-cut failure mode SRLGs model; the
//! family generators concentrate hub sites differently, so the induced
//! group structure *is* family-specific (Barabási–Albert hubs produce a
//! few huge groups, Waxman spreads them evenly).
//!
//! ## Seeding contract
//!
//! Sampling is a pure function of `(FailureSpec, DynamicSpec?, seed)`.
//! Each scenario consumes the RNG stream in a fixed documented order —
//! SRLG pass → independent-link pass → churn pass → demand-jitter pass →
//! shift event — and every pass always draws (a zero rate draws and
//! discards), so adding parameters must never reorder existing draws.

use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dynamic::DynamicSpec;
use crate::families::{check_range, SpecError};
use crate::topology::Pop;

/// Parameters of the scenario sampler: SRLG bucket count, the three
/// failure rates, serialized to/from the one-line form
///
/// ```text
/// srlg groups=8 group_rate=0.05 link_rate=0.01 churn=0
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FailureSpec {
    /// Number of SRLG buckets sites are folded into (≥ 1).
    pub groups: usize,
    /// Per-scenario probability that a whole SRLG fails, `∈ [0, 1]`.
    pub group_rate: f64,
    /// Independent per-link failure probability, `∈ [0, 1]`.
    pub link_rate: f64,
    /// Per-node churn probability (a churned node fails every incident
    /// link), `∈ [0, 1]`.
    pub churn: f64,
}

impl Default for FailureSpec {
    fn default() -> Self {
        Self {
            groups: 8,
            group_rate: 0.05,
            link_rate: 0.01,
            churn: 0.0,
        }
    }
}

impl FailureSpec {
    /// Validates every parameter, rejecting NaN / out-of-range values with
    /// a typed [`SpecError`].
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.groups == 0 {
            return Err(SpecError::new("groups", "must be at least 1".to_string()));
        }
        check_range("group_rate", self.group_rate, 0.0, 1.0)?;
        check_range("link_rate", self.link_rate, 0.0, 1.0)?;
        check_range("churn", self.churn, 0.0, 1.0)?;
        Ok(())
    }
}

impl fmt::Display for FailureSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "srlg groups={} group_rate={} link_rate={} churn={}",
            self.groups, self.group_rate, self.link_rate, self.churn
        )
    }
}

impl FromStr for FailureSpec {
    type Err = SpecError;

    /// Parses the one-line form emitted by [`fmt::Display`]: the literal
    /// model name `srlg` followed by `key=value` fields. Missing fields
    /// keep the defaults; unknown keys and malformed values are rejected
    /// with a typed error, and the result is [`FailureSpec::validate`]d
    /// before it is returned.
    fn from_str(s: &str) -> Result<Self, SpecError> {
        let mut tokens = s.split_whitespace();
        let model = tokens
            .next()
            .ok_or_else(|| SpecError::new("failure", "empty spec".to_string()))?;
        if model != "srlg" {
            return Err(SpecError::new(
                "failure",
                format!("unknown failure model {model:?} (srlg)"),
            ));
        }
        let mut spec = FailureSpec::default();
        let mut seen: Vec<String> = Vec::new();
        for tok in tokens {
            let (key, raw) = tok.split_once('=').ok_or_else(|| {
                SpecError::new("spec", format!("expected key=value, got {tok:?}"))
            })?;
            if seen.iter().any(|k| k == key) {
                return Err(SpecError::new("spec", format!("duplicate key {key:?}")));
            }
            seen.push(key.to_string());
            let f64_of = |field: &'static str| -> Result<f64, SpecError> {
                raw.parse::<f64>()
                    .map_err(|_| SpecError::new(field, format!("bad number {raw:?}")))
            };
            match key {
                "groups" => {
                    spec.groups = raw
                        .parse::<usize>()
                        .map_err(|_| SpecError::new("groups", format!("bad count {raw:?}")))?
                }
                "group_rate" => spec.group_rate = f64_of("group_rate")?,
                "link_rate" => spec.link_rate = f64_of("link_rate")?,
                "churn" => spec.churn = f64_of("churn")?,
                _ => {
                    return Err(SpecError::new(
                        "spec",
                        format!("unknown key {key:?} for failure model \"srlg\""),
                    ))
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

/// One sampled scenario: the failed links and the (sparse) demand
/// perturbation, both in canonical order.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Failed links, sorted and duplicate-free.
    pub failed_links: Vec<usize>,
    /// `(traffic, factor)` multiplicative demand perturbations, ascending
    /// by traffic index; traffics not listed keep factor 1.
    pub demand_factors: Vec<(usize, f64)>,
}

/// A [`FailureSpec`] bound to one topology: the SRLG partition and the
/// node–link incidence the churn pass needs (see the module docs for the
/// grouping rule and the seeding contract).
#[derive(Debug, Clone)]
pub struct FailureModel {
    spec: FailureSpec,
    num_links: usize,
    num_nodes: usize,
    /// SRLG bucket → member links (ascending; buckets may be empty).
    group_links: Vec<Vec<usize>>,
    /// Node → incident links (ascending).
    incident: Vec<Vec<usize>>,
}

impl FailureModel {
    /// Binds a validated spec to a topology. The SRLG partition and the
    /// incidence lists are fixed here; all randomness lives in
    /// [`FailureModel::sample_scenarios`].
    pub fn try_new(pop: &Pop, spec: &FailureSpec) -> Result<Self, SpecError> {
        spec.validate()?;
        let graph = &pop.graph;
        let mut group_links = vec![Vec::new(); spec.groups];
        let mut incident = vec![Vec::new(); graph.node_count()];
        for edge in graph.edges() {
            let (u, v) = graph.endpoints(edge);
            let site = match (pop.is_router(u), pop.is_router(v)) {
                (true, false) => u.index(),
                (false, true) => v.index(),
                _ => u.index().min(v.index()),
            };
            group_links[site % spec.groups].push(edge.index());
            incident[u.index()].push(edge.index());
            incident[v.index()].push(edge.index());
        }
        Ok(FailureModel {
            spec: spec.clone(),
            num_links: graph.edge_count(),
            num_nodes: graph.node_count(),
            group_links,
            incident,
        })
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &FailureSpec {
        &self.spec
    }

    /// The SRLG partition: bucket → member links (buckets may be empty).
    pub fn group_links(&self) -> &[Vec<usize>] {
        &self.group_links
    }

    /// Samples `count` i.i.d. scenarios for an instance with `traffics`
    /// demands. Pure in `(self, dynamic, count, seed)`; the RNG stream
    /// order is fixed per scenario (see the module docs):
    ///
    /// 1. **SRLG pass** — one Bernoulli(`group_rate`) per bucket; a hit
    ///    fails every member link.
    /// 2. **Link pass** — one Bernoulli(`link_rate`) per link.
    /// 3. **Churn pass** — one Bernoulli(`churn`) per node; a hit fails
    ///    every incident link.
    /// 4. **Demand-jitter pass** (only with `dynamic`) — one
    ///    Bernoulli(`shift_probability`) per traffic; a hit draws
    ///    `u ∈ [-1, 1)` and applies factor `max(floor, 1 + jitter·u)`.
    /// 5. **Shift event** (only with `dynamic`, ≥ 2 traffics) — one
    ///    Bernoulli(`shift_probability`); a hit promotes one seeded
    ///    traffic by `shift_boost` and deflates another by it (floored),
    ///    mirroring [`crate::dynamic::TrafficProcess::step`] as an
    ///    i.i.d. time sample instead of a temporal walk.
    ///
    /// The `dynamic` spec is validated here, so an invalid perturbation
    /// surfaces as a typed error instead of a degenerate ensemble.
    pub fn sample_scenarios(
        &self,
        traffics: usize,
        dynamic: Option<&DynamicSpec>,
        count: usize,
        seed: u64,
    ) -> Result<Vec<Scenario>, SpecError> {
        if let Some(d) = dynamic {
            d.validate()?;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let mut failed: Vec<usize> = Vec::new();
            for links in &self.group_links {
                if rng.gen_bool(self.spec.group_rate) {
                    failed.extend_from_slice(links);
                }
            }
            for e in 0..self.num_links {
                if rng.gen_bool(self.spec.link_rate) {
                    failed.push(e);
                }
            }
            for n in 0..self.num_nodes {
                if rng.gen_bool(self.spec.churn) {
                    failed.extend_from_slice(&self.incident[n]);
                }
            }
            failed.sort_unstable();
            failed.dedup();

            let mut demand_factors: Vec<(usize, f64)> = Vec::new();
            if let Some(d) = dynamic {
                let mut factor = vec![1.0f64; traffics];
                let mut touched = vec![false; traffics];
                for (t, f) in factor.iter_mut().enumerate() {
                    if rng.gen_bool(d.shift_probability) {
                        let u: f64 = rng.gen_range(-1.0..1.0);
                        *f = (1.0 + d.jitter * u).max(d.floor);
                        touched[t] = true;
                    }
                }
                if traffics >= 2 && rng.gen_bool(d.shift_probability) {
                    let up = rng.gen_range(0..traffics);
                    let down = rng.gen_range(0..traffics);
                    factor[up] *= d.shift_boost;
                    factor[down] = (factor[down] / d.shift_boost).max(d.floor);
                    touched[up] = true;
                    touched[down] = true;
                }
                for (t, &f) in factor.iter().enumerate() {
                    if touched[t] {
                        demand_factors.push((t, f));
                    }
                }
            }
            out.push(Scenario {
                failed_links: failed,
                demand_factors,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::PopSpec;

    fn model(spec: &FailureSpec) -> FailureModel {
        let pop = PopSpec::paper_10().build();
        FailureModel::try_new(&pop, spec).expect("valid spec")
    }

    #[test]
    fn spec_round_trips_through_display() {
        for spec in [
            FailureSpec::default(),
            FailureSpec {
                groups: 3,
                group_rate: 0.25,
                link_rate: 0.0,
                churn: 0.125,
            },
        ] {
            let line = spec.to_string();
            let back: FailureSpec = line.parse().expect("round-trip");
            assert_eq!(back, spec, "{line}");
        }
    }

    #[test]
    fn parser_rejects_bad_specs() {
        for (line, field) in [
            ("", "failure"),
            ("geo groups=2", "failure"),
            ("srlg groups=0", "groups"),
            ("srlg group_rate=1.5", "group_rate"),
            ("srlg link_rate=nope", "link_rate"),
            ("srlg churn=0.1 churn=0.2", "spec"),
            ("srlg wibble=1", "spec"),
            ("srlg groups", "spec"),
        ] {
            let err = line.parse::<FailureSpec>().unwrap_err();
            assert_eq!(err.field, field, "{line:?}");
        }
    }

    #[test]
    fn srlg_partition_covers_every_link_once() {
        let spec = FailureSpec {
            groups: 5,
            ..Default::default()
        };
        let m = model(&spec);
        let mut seen: Vec<usize> = m.group_links().iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..m.num_links).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let spec = FailureSpec {
            groups: 4,
            group_rate: 0.2,
            link_rate: 0.05,
            churn: 0.02,
        };
        let m = model(&spec);
        let dynamic = DynamicSpec::default();
        let a = m
            .sample_scenarios(132, Some(&dynamic), 50, 9)
            .expect("valid");
        let b = m
            .sample_scenarios(132, Some(&dynamic), 50, 9)
            .expect("valid");
        assert_eq!(a, b, "same seed, same ensemble");
        for s in &a {
            assert!(s.failed_links.windows(2).all(|w| w[0] < w[1]), "sorted");
            assert!(s.failed_links.iter().all(|&e| e < m.num_links));
            assert!(s.demand_factors.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(s
                .demand_factors
                .iter()
                .all(|&(t, f)| t < 132 && f.is_finite() && f >= 0.0));
        }
        let c = m
            .sample_scenarios(132, Some(&dynamic), 50, 10)
            .expect("valid");
        assert_ne!(a, c, "different seed, different ensemble");
    }

    #[test]
    fn group_failures_are_correlated() {
        // With only group failures, every scenario's failure set is a
        // union of whole SRLG buckets.
        let spec = FailureSpec {
            groups: 4,
            group_rate: 0.5,
            link_rate: 0.0,
            churn: 0.0,
        };
        let m = model(&spec);
        let scenarios = m.sample_scenarios(0, None, 40, 3).expect("valid");
        assert!(scenarios.iter().all(|s| s.demand_factors.is_empty()));
        for s in &scenarios {
            for links in m.group_links() {
                let hit = links.iter().filter(|e| s.failed_links.contains(e)).count();
                assert!(
                    hit == 0 || hit == links.len(),
                    "partial SRLG failure: {hit}/{} of {links:?}",
                    links.len()
                );
            }
        }
        assert!(
            scenarios.iter().any(|s| !s.failed_links.is_empty()),
            "rate 0.5 must fail something across 40 scenarios"
        );
    }

    #[test]
    fn zero_rates_produce_empty_scenarios() {
        let spec = FailureSpec {
            groups: 2,
            group_rate: 0.0,
            link_rate: 0.0,
            churn: 0.0,
        };
        let m = model(&spec);
        let scenarios = m.sample_scenarios(10, None, 5, 0).expect("valid");
        assert!(scenarios
            .iter()
            .all(|s| s.failed_links.is_empty() && s.demand_factors.is_empty()));
    }

    #[test]
    fn invalid_dynamic_spec_is_a_typed_error() {
        let m = model(&FailureSpec::default());
        let bad = DynamicSpec {
            jitter: 2.0,
            ..Default::default()
        };
        let err = m.sample_scenarios(10, Some(&bad), 1, 0).unwrap_err();
        assert_eq!(err.field, "jitter");
    }

    #[test]
    fn try_new_rejects_invalid_spec() {
        let pop = PopSpec::small().build();
        let bad = FailureSpec {
            groups: 0,
            ..Default::default()
        };
        assert_eq!(
            FailureModel::try_new(&pop, &bad).unwrap_err().field,
            "groups"
        );
    }
}
