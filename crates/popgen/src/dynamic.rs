//! Evolving traffic (paper Section 5.4).
//!
//! *"These techniques capture static network state while the real traffic
//! inside a POP evolves. A drastic change in the traffic throughput may
//! invalidate all previous optimizations."* The process below perturbs a
//! traffic matrix step by step: every volume takes a multiplicative random
//! step (a geometric random walk, clamped to a floor), and occasionally a
//! *shift event* re-boosts a fresh pair while deflating an old one —
//! modelling the drastic changes that force the controller to re-optimize.

use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::families::{check_min, check_range, SpecError};
use crate::traffic::TrafficSet;

/// Parameters of the traffic evolution process, serialized to/from the
/// one-line form
///
/// ```text
/// dynamic jitter=0.1 shift_probability=0.15 shift_boost=20 floor=0.1
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicSpec {
    /// Per-step multiplicative jitter: volumes are scaled by a uniform
    /// factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Probability of a drastic shift event at each step.
    pub shift_probability: f64,
    /// Boost applied to the promoted traffic during a shift event.
    pub shift_boost: f64,
    /// Minimum volume floor (volumes never decay below this).
    pub floor: f64,
}

impl Default for DynamicSpec {
    fn default() -> Self {
        Self {
            jitter: 0.1,
            shift_probability: 0.15,
            shift_boost: 20.0,
            floor: 0.1,
        }
    }
}

impl DynamicSpec {
    /// Validates every parameter, rejecting NaN / out-of-range values
    /// (`shift_probability ∉ [0, 1]`, negative jitter, boost below 1, …)
    /// with a typed [`SpecError`] instead of silently producing a
    /// degenerate process.
    pub fn validate(&self) -> Result<(), SpecError> {
        if !self.jitter.is_finite() || self.jitter < 0.0 || self.jitter >= 1.0 {
            return Err(SpecError::new(
                "jitter",
                format!(
                    "must be in [0, 1) (volumes stay positive), got {}",
                    self.jitter
                ),
            ));
        }
        check_range("shift_probability", self.shift_probability, 0.0, 1.0)?;
        check_min("shift_boost", self.shift_boost, 1.0)?;
        check_min("floor", self.floor, 0.0)?;
        Ok(())
    }
}

impl fmt::Display for DynamicSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dynamic jitter={} shift_probability={} shift_boost={} floor={}",
            self.jitter, self.shift_probability, self.shift_boost, self.floor
        )
    }
}

impl FromStr for DynamicSpec {
    type Err = SpecError;

    /// Parses the one-line form emitted by [`fmt::Display`]: the literal
    /// process name `dynamic` followed by `key=value` fields. Missing
    /// fields keep the defaults; unknown keys and malformed values are
    /// rejected with a typed error, and the result is
    /// [`DynamicSpec::validate`]d before it is returned.
    fn from_str(s: &str) -> Result<Self, SpecError> {
        let mut tokens = s.split_whitespace();
        let model = tokens
            .next()
            .ok_or_else(|| SpecError::new("dynamic", "empty spec".to_string()))?;
        if model != "dynamic" {
            return Err(SpecError::new(
                "dynamic",
                format!("unknown traffic process {model:?} (dynamic)"),
            ));
        }
        let mut spec = DynamicSpec::default();
        let mut seen: Vec<String> = Vec::new();
        for tok in tokens {
            let (key, raw) = tok.split_once('=').ok_or_else(|| {
                SpecError::new("spec", format!("expected key=value, got {tok:?}"))
            })?;
            if seen.iter().any(|k| k == key) {
                return Err(SpecError::new("spec", format!("duplicate key {key:?}")));
            }
            seen.push(key.to_string());
            let f64_of = |field: &'static str| -> Result<f64, SpecError> {
                raw.parse::<f64>()
                    .map_err(|_| SpecError::new(field, format!("bad number {raw:?}")))
            };
            match key {
                "jitter" => spec.jitter = f64_of("jitter")?,
                "shift_probability" => spec.shift_probability = f64_of("shift_probability")?,
                "shift_boost" => spec.shift_boost = f64_of("shift_boost")?,
                "floor" => spec.floor = f64_of("floor")?,
                _ => {
                    return Err(SpecError::new(
                        "spec",
                        format!("unknown key {key:?} for traffic process \"dynamic\""),
                    ))
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

/// A stateful traffic process producing successive [`TrafficSet`] snapshots.
///
/// Paths are fixed (routing does not change); only volumes evolve, exactly
/// the setting of `PPME*(x, h, k)` where installed devices cannot move but
/// sampling rates adapt.
#[derive(Debug, Clone)]
pub struct TrafficProcess {
    current: TrafficSet,
    spec: DynamicSpec,
    rng: StdRng,
    steps: usize,
}

impl TrafficProcess {
    /// Starts a process from an initial matrix.
    ///
    /// # Panics
    ///
    /// Panics when the spec is invalid (see [`DynamicSpec::validate`]);
    /// use [`TrafficProcess::try_new`] to surface the typed error.
    pub fn new(initial: TrafficSet, spec: DynamicSpec, seed: u64) -> Self {
        Self::try_new(initial, spec, seed).unwrap_or_else(|e| panic!("invalid DynamicSpec: {e}"))
    }

    /// Fallible variant of [`TrafficProcess::new`]: validates the spec and
    /// returns the typed [`SpecError`] instead of panicking.
    pub fn try_new(initial: TrafficSet, spec: DynamicSpec, seed: u64) -> Result<Self, SpecError> {
        spec.validate()?;
        Ok(Self {
            current: initial,
            spec,
            rng: StdRng::seed_from_u64(seed),
            steps: 0,
        })
    }

    /// The current snapshot.
    pub fn current(&self) -> &TrafficSet {
        &self.current
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Advances the process one step and returns the new snapshot.
    pub fn step(&mut self) -> &TrafficSet {
        self.steps += 1;
        let n = self.current.traffics.len();
        for t in &mut self.current.traffics {
            let f = self
                .rng
                .gen_range(1.0 - self.spec.jitter..=1.0 + self.spec.jitter);
            t.volume = (t.volume * f).max(self.spec.floor);
        }
        if n >= 2
            && self
                .rng
                .gen_bool(self.spec.shift_probability.clamp(0.0, 1.0))
        {
            // Drastic shift: promote one traffic, deflate another.
            let up = self.rng.gen_range(0..n);
            let down = self.rng.gen_range(0..n);
            self.current.traffics[up].volume *= self.spec.shift_boost;
            self.current.traffics[down].volume =
                (self.current.traffics[down].volume / self.spec.shift_boost).max(self.spec.floor);
        }
        &self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::PopSpec;
    use crate::traffic::TrafficSpec;

    fn start() -> TrafficSet {
        let pop = PopSpec::paper_10().build();
        TrafficSpec::default().generate(&pop, 1)
    }

    #[test]
    fn volumes_stay_positive() {
        let mut p = TrafficProcess::new(start(), DynamicSpec::default(), 3);
        for _ in 0..50 {
            p.step();
        }
        assert!(p.current().traffics.iter().all(|t| t.volume >= 0.1));
        assert_eq!(p.steps(), 50);
    }

    #[test]
    fn paths_never_change() {
        let initial = start();
        let edges_before: Vec<_> = initial
            .traffics
            .iter()
            .map(|t| t.path.edges().to_vec())
            .collect();
        let mut p = TrafficProcess::new(initial, DynamicSpec::default(), 3);
        for _ in 0..20 {
            p.step();
        }
        for (t, before) in p.current().traffics.iter().zip(edges_before) {
            assert_eq!(t.path.edges(), &before[..]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = TrafficProcess::new(start(), DynamicSpec::default(), 9);
        let mut b = TrafficProcess::new(start(), DynamicSpec::default(), 9);
        for _ in 0..10 {
            a.step();
            b.step();
        }
        assert_eq!(a.current().total_volume(), b.current().total_volume());
    }

    #[test]
    fn shifts_eventually_move_mass() {
        let spec = DynamicSpec {
            shift_probability: 1.0,
            ..Default::default()
        };
        let initial = start();
        let before = initial.total_volume();
        let mut p = TrafficProcess::new(initial, spec, 5);
        for _ in 0..30 {
            p.step();
        }
        let after = p.current().total_volume();
        assert!(
            (after - before).abs() > before * 0.05,
            "mass should have shifted"
        );
    }

    #[test]
    fn spec_round_trips_through_display() {
        for spec in [
            DynamicSpec::default(),
            DynamicSpec {
                jitter: 0.25,
                shift_probability: 0.5,
                shift_boost: 4.0,
                floor: 0.0,
            },
        ] {
            let line = spec.to_string();
            let back: DynamicSpec = line.parse().expect("round-trip");
            assert_eq!(back, spec, "{line}");
        }
    }

    #[test]
    fn parser_rejects_bad_specs() {
        for (line, field) in [
            ("", "dynamic"),
            ("static jitter=0", "dynamic"),
            ("dynamic jitter=2", "jitter"),
            ("dynamic shift_boost=nope", "shift_boost"),
            ("dynamic floor=0.1 floor=0.2", "spec"),
            ("dynamic wibble=1", "spec"),
            ("dynamic jitter", "spec"),
        ] {
            let err = line.parse::<DynamicSpec>().unwrap_err();
            assert_eq!(err.field, field, "{line:?}");
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(DynamicSpec::default().validate().is_ok());
        let bad = DynamicSpec {
            shift_probability: 1.5,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "shift_probability");
        let bad = DynamicSpec {
            shift_probability: f64::NAN,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "shift_probability");
        let bad = DynamicSpec {
            jitter: -0.1,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "jitter");
        let bad = DynamicSpec {
            jitter: 1.0,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "jitter");
        let bad = DynamicSpec {
            shift_boost: 0.5,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "shift_boost");
        let bad = DynamicSpec {
            floor: f64::NEG_INFINITY,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "floor");

        assert!(TrafficProcess::try_new(
            start(),
            DynamicSpec {
                shift_probability: 2.0,
                ..Default::default()
            },
            1
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid DynamicSpec")]
    fn new_panics_on_invalid_spec() {
        TrafficProcess::new(
            start(),
            DynamicSpec {
                shift_probability: f64::NAN,
                ..Default::default()
            },
            1,
        );
    }

    #[test]
    fn zero_jitter_no_shift_is_stationary_modulo_floor() {
        let spec = DynamicSpec {
            jitter: 0.0,
            shift_probability: 0.0,
            shift_boost: 1.0,
            floor: 0.0,
        };
        let initial = start();
        let before = initial.total_volume();
        let mut p = TrafficProcess::new(initial, spec, 5);
        p.step();
        assert!((p.current().total_volume() - before).abs() < 1e-9);
    }
}
