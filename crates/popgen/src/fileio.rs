//! A small line-based text format for topologies and traffic matrices.
//!
//! This is the substitution hook for real measured data: topologies
//! inferred by Rocketfuel (or any other tool) can be converted to this
//! format and fed to the placement algorithms in place of the generator.
//!
//! ```text
//! # comments and blank lines are ignored
//! node <label> <backbone|access|customer|peer>
//! edge <label-u> <label-v> <weight>
//! traffic <label-src> <label-dst> <volume>
//! ```
//!
//! Nodes must be declared before edges referencing them; traffics are
//! routed on shortest paths at load time (the format carries demands, not
//! routes, mirroring what Rocketfuel + a traffic matrix would provide).

use std::collections::HashMap;
use std::fmt;

use netgraph::{dijkstra, GraphBuilder, NodeId};

use crate::topology::{NodeRole, Pop};
use crate::traffic::{Traffic, TrafficSet};

/// Errors from parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a document into a [`Pop`] and its [`TrafficSet`].
pub fn parse(text: &str) -> Result<(Pop, TrafficSet), ParseError> {
    let mut builder = GraphBuilder::new();
    let mut roles: Vec<NodeRole> = Vec::new();
    let mut by_label: HashMap<String, NodeId> = HashMap::new();
    let mut demands: Vec<(NodeId, NodeId, f64)> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields[0] {
            "node" => {
                if fields.len() != 3 {
                    return Err(err(lineno, "expected: node <label> <role>"));
                }
                let role = match fields[2] {
                    "backbone" => NodeRole::Backbone,
                    "access" => NodeRole::Access,
                    "customer" => NodeRole::Customer,
                    "peer" => NodeRole::Peer,
                    other => return Err(err(lineno, format!("unknown role {other:?}"))),
                };
                if by_label.contains_key(fields[1]) {
                    return Err(err(lineno, format!("duplicate node {:?}", fields[1])));
                }
                let id = builder.add_node(fields[1]);
                by_label.insert(fields[1].to_string(), id);
                roles.push(role);
            }
            "edge" => {
                if fields.len() != 4 {
                    return Err(err(lineno, "expected: edge <u> <v> <weight>"));
                }
                let u = *by_label
                    .get(fields[1])
                    .ok_or_else(|| err(lineno, format!("unknown node {:?}", fields[1])))?;
                let v = *by_label
                    .get(fields[2])
                    .ok_or_else(|| err(lineno, format!("unknown node {:?}", fields[2])))?;
                let w: f64 = fields[3]
                    .parse()
                    .map_err(|_| err(lineno, format!("bad weight {:?}", fields[3])))?;
                builder
                    .try_add_edge(u, v, w)
                    .map_err(|e| err(lineno, e.to_string()))?;
            }
            "traffic" => {
                if fields.len() != 4 {
                    return Err(err(lineno, "expected: traffic <src> <dst> <volume>"));
                }
                let s = *by_label
                    .get(fields[1])
                    .ok_or_else(|| err(lineno, format!("unknown node {:?}", fields[1])))?;
                let d = *by_label
                    .get(fields[2])
                    .ok_or_else(|| err(lineno, format!("unknown node {:?}", fields[2])))?;
                let v: f64 = fields[3]
                    .parse()
                    .map_err(|_| err(lineno, format!("bad volume {:?}", fields[3])))?;
                if !(v.is_finite() && v >= 0.0) {
                    return Err(err(
                        lineno,
                        format!("volume must be finite and >= 0, got {v}"),
                    ));
                }
                if s == d {
                    return Err(err(lineno, "traffic source equals destination"));
                }
                demands.push((s, d, v));
            }
            other => return Err(err(lineno, format!("unknown directive {other:?}"))),
        }
    }

    let graph = builder.build();
    let mut backbone = Vec::new();
    let mut access = Vec::new();
    let mut endpoints = Vec::new();
    for n in graph.nodes() {
        match roles[n.index()] {
            NodeRole::Backbone => backbone.push(n),
            NodeRole::Access => access.push(n),
            NodeRole::Customer | NodeRole::Peer => endpoints.push(n),
        }
    }
    let pop = Pop {
        graph,
        roles,
        backbone,
        access,
        endpoints,
    };

    // Route demands on shortest paths; group by source for efficiency.
    let mut traffics = Vec::with_capacity(demands.len());
    let mut trees: HashMap<NodeId, netgraph::dijkstra::ShortestPathTree> = HashMap::new();
    for (s, d, v) in demands {
        let tree = match trees.get(&s) {
            Some(t) => t,
            None => {
                let t = dijkstra::shortest_path_tree(&pop.graph, s)
                    .expect("source validated at parse time");
                trees.entry(s).or_insert(t)
            }
        };
        let path = tree
            .path_to(&pop.graph, d)
            .map_err(|e| err(0, format!("unroutable traffic: {e}")))?;
        traffics.push(Traffic {
            src: s,
            dst: d,
            volume: v,
            path,
        });
    }

    Ok((pop, TrafficSet { traffics }))
}

/// Serializes a [`Pop`] and its demands back to the text format
/// (inverse of [`parse`] up to comments and ordering).
pub fn serialize(pop: &Pop, traffic: &TrafficSet) -> String {
    let mut out = String::from("# popmon topology v1\n");
    for n in pop.graph.nodes() {
        let role = match pop.role(n) {
            NodeRole::Backbone => "backbone",
            NodeRole::Access => "access",
            NodeRole::Customer => "customer",
            NodeRole::Peer => "peer",
        };
        out.push_str(&format!("node {} {}\n", pop.graph.label(n), role));
    }
    for e in pop.graph.edges() {
        let (u, v) = pop.graph.endpoints(e);
        out.push_str(&format!(
            "edge {} {} {}\n",
            pop.graph.label(u),
            pop.graph.label(v),
            pop.graph.weight(e)
        ));
    }
    for t in &traffic.traffics {
        out.push_str(&format!(
            "traffic {} {} {}\n",
            pop.graph.label(t.src),
            pop.graph.label(t.dst),
            t.volume
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::PopSpec;
    use crate::traffic::TrafficSpec;

    const SAMPLE: &str = "\
# tiny POP
node bb0 backbone
node bb1 backbone
node ac0 access
node c0 customer
node p0 peer

edge bb0 bb1 1.0
edge ac0 bb0 1.0
edge ac0 bb1 1.0
edge c0 ac0 1.0
edge p0 bb1 1.0

traffic c0 p0 4.5
traffic p0 c0 2.0
";

    #[test]
    fn parses_sample() {
        let (pop, ts) = parse(SAMPLE).unwrap();
        assert_eq!(pop.graph.node_count(), 5);
        assert_eq!(pop.graph.edge_count(), 5);
        assert_eq!(pop.backbone.len(), 2);
        assert_eq!(pop.access.len(), 1);
        assert_eq!(pop.endpoints.len(), 2);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.total_volume(), 6.5);
        // c0 -> p0 routes c0-ac0-{bb0,bb1}-p0: 3 hops via bb1.
        assert_eq!(ts.traffics[0].path.len(), 3);
    }

    #[test]
    fn roundtrip_through_serialize() {
        let pop = PopSpec::paper_10().build();
        let ts = TrafficSpec::default().generate(&pop, 4);
        let text = serialize(&pop, &ts);
        let (pop2, ts2) = parse(&text).unwrap();
        assert_eq!(pop2.graph.node_count(), pop.graph.node_count());
        assert_eq!(pop2.graph.edge_count(), pop.graph.edge_count());
        assert_eq!(ts2.len(), ts.len());
        assert!((ts2.total_volume() - ts.total_volume()).abs() < 1e-6);
    }

    #[test]
    fn error_on_unknown_node() {
        let e = parse("edge a b 1.0").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown node"));
    }

    #[test]
    fn error_on_bad_role() {
        let e = parse("node x wizard").unwrap_err();
        assert!(e.message.contains("unknown role"));
    }

    #[test]
    fn error_on_duplicate_node() {
        let e = parse("node x access\nnode x access").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn error_on_self_traffic() {
        let text = "node a customer\nnode b access\nedge a b 1\ntraffic a a 1.0";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("source equals destination"));
    }

    #[test]
    fn error_on_bad_numbers() {
        assert!(parse("node a access\nnode b access\nedge a b nope").is_err());
        let text = "node a customer\nnode b customer\nedge a b 1\ntraffic a b -3";
        assert!(parse(text).is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let (pop, ts) = parse("# nothing\n\n   \nnode a backbone\n").unwrap();
        assert_eq!(pop.graph.node_count(), 1);
        assert!(ts.is_empty());
    }
}
