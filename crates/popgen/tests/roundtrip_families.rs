//! Round-trip property suite for the instance space: generate a random
//! family instance, write it through `fileio`, parse it back, and re-solve
//! — device counts must be identical (the text format is a faithful
//! substitution hook for measured topologies). Plus a malformed-input
//! corpus asserting the parser's typed errors.

use placement::instance::PpmInstance;
use placement::passive::{greedy_static, solve_ppm_exact, ExactOptions};
use popgen::{fileio, FamilySpec, GravitySpec};
use proptest::prelude::*;

/// Strategy: a validated random family spec (small enough that the exact
/// ILP stays cheap across 256 cases).
fn family_specs() -> impl Strategy<Value = FamilySpec> {
    (0usize..3, 6usize..=10, 3usize..=5, 0.25f64..=1.0).prop_map(
        |(fam, routers, endpoints, density)| {
            let name = ["waxman", "ba", "hier"][fam];
            let mut spec = FamilySpec::canonical(name, routers, endpoints).expect("known family");
            spec.density = density;
            spec.validate().expect("generated specs are always valid");
            spec
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// generate → serialize → parse → re-solve: the round-tripped instance
    /// yields byte-identical supports/volumes, hence identical greedy and
    /// exact device counts at every coverage level.
    #[test]
    fn roundtrip_preserves_device_counts(
        spec in family_specs(),
        seed in 0u64..1000,
        k_pct in 50u32..=100,
    ) {
        let pop = spec.build(seed).expect("valid spec");
        let ts = GravitySpec::default().generate(&pop, seed);
        let text = fileio::serialize(&pop, &ts);
        let (pop2, ts2) = fileio::parse(&text).expect("serialized instances must parse");

        prop_assert_eq!(pop2.graph.node_count(), pop.graph.node_count());
        prop_assert_eq!(pop2.graph.edge_count(), pop.graph.edge_count());
        prop_assert_eq!(ts2.len(), ts.len());

        let inst = PpmInstance::from_traffic(&pop.graph, &ts);
        let inst2 = PpmInstance::from_traffic(&pop2.graph, &ts2);
        // Volumes survive exactly (f64 Display round-trips); supports may
        // be re-derived through re-routing, so compare the solver-visible
        // quantities: per-edge loads and the solutions themselves.
        for (a, b) in inst.edge_loads().iter().zip(&inst2.edge_loads()) {
            prop_assert!((a - b).abs() < 1e-9, "edge load moved across the round-trip");
        }

        let k = k_pct as f64 / 100.0;
        let g = greedy_static(&inst, k).expect("all family traffic is coverable");
        let g2 = greedy_static(&inst2, k).expect("round-tripped instance stays coverable");
        prop_assert_eq!(
            g.device_count(), g2.device_count(),
            "greedy device count moved across the round-trip"
        );

        let opts = ExactOptions::default();
        let e = solve_ppm_exact(&inst, k, &opts).expect("feasible");
        let e2 = solve_ppm_exact(&inst2, k, &opts).expect("feasible");
        prop_assert_eq!(
            e.device_count(), e2.device_count(),
            "exact device count moved across the round-trip"
        );
    }

    /// A second serialize of the parsed instance reproduces the document
    /// byte-for-byte (serialization is canonical).
    #[test]
    fn serialize_is_canonical(spec in family_specs(), seed in 0u64..1000) {
        let pop = spec.build(seed).expect("valid spec");
        let ts = GravitySpec::default().generate(&pop, seed);
        let text = fileio::serialize(&pop, &ts);
        let (pop2, ts2) = fileio::parse(&text).expect("parses");
        prop_assert_eq!(fileio::serialize(&pop2, &ts2), text);
    }
}

// ---------------------------------------------------------------------------
// Malformed-input corpus: every class of broken document dies with a typed
// ParseError carrying the offending line, never a panic or a silent accept.
// ---------------------------------------------------------------------------

struct MalformedCase {
    name: &'static str,
    text: &'static str,
    line: usize,
    message_contains: &'static str,
}

const MALFORMED: &[MalformedCase] = &[
    MalformedCase {
        name: "dangling edge label (u)",
        text: "node a backbone\nedge ghost a 1.0",
        line: 2,
        message_contains: "unknown node",
    },
    MalformedCase {
        name: "dangling edge label (v)",
        text: "node a backbone\nedge a ghost 1.0",
        line: 2,
        message_contains: "unknown node",
    },
    MalformedCase {
        name: "dangling traffic label",
        text: "node a customer\nnode b customer\nedge a b 1\ntraffic a ghost 2.0",
        line: 4,
        message_contains: "unknown node",
    },
    MalformedCase {
        name: "duplicate node",
        text: "node a access\nnode b access\nnode a backbone",
        line: 3,
        message_contains: "duplicate node",
    },
    MalformedCase {
        name: "negative weight",
        text: "node a access\nnode b access\nedge a b -2.5",
        line: 3,
        message_contains: "weight",
    },
    MalformedCase {
        name: "NaN weight",
        text: "node a access\nnode b access\nedge a b NaN",
        line: 3,
        message_contains: "weight",
    },
    MalformedCase {
        name: "self-loop edge",
        text: "node a access\nedge a a 1.0",
        line: 2,
        message_contains: "self",
    },
    MalformedCase {
        name: "negative traffic volume",
        text: "node a customer\nnode b customer\nedge a b 1\ntraffic a b -3",
        line: 4,
        message_contains: "volume",
    },
    MalformedCase {
        name: "non-numeric traffic volume",
        text: "node a customer\nnode b customer\nedge a b 1\ntraffic a b lots",
        line: 4,
        message_contains: "volume",
    },
    MalformedCase {
        name: "self traffic",
        text: "node a customer\nnode b access\nedge a b 1\ntraffic a a 1.0",
        line: 4,
        message_contains: "source equals destination",
    },
    MalformedCase {
        name: "unknown role",
        text: "node a wizard",
        line: 1,
        message_contains: "unknown role",
    },
    MalformedCase {
        name: "unknown directive",
        text: "node a access\nlink a a 1.0",
        line: 2,
        message_contains: "unknown directive",
    },
    MalformedCase {
        name: "arity error on edge",
        text: "node a access\nnode b access\nedge a b",
        line: 3,
        message_contains: "expected: edge",
    },
];

#[test]
fn malformed_documents_fail_with_typed_errors() {
    for case in MALFORMED {
        let err = fileio::parse(case.text)
            .map(|_| ())
            .expect_err(&format!("{} must be rejected", case.name));
        assert_eq!(err.line, case.line, "{}: wrong line in {err}", case.name);
        assert!(
            err.message.to_lowercase().contains(case.message_contains),
            "{}: message {:?} should mention {:?}",
            case.name,
            err.message,
            case.message_contains
        );
    }
}

#[test]
fn family_document_with_injected_corruption_is_rejected() {
    // Start from a real generated document and corrupt one line at a time:
    // the parser must localize the damage.
    let doc = popgen::families::emit_document(&FamilySpec::waxman(8, 4), 1).unwrap();
    let lines: Vec<&str> = doc.lines().collect();
    let edge_idx = lines
        .iter()
        .position(|l| l.starts_with("edge "))
        .expect("has edges");

    let mut dangling = lines.clone();
    let owned = dangling[edge_idx].replace("edge r", "edge zz");
    dangling[edge_idx] = &owned;
    let err = fileio::parse(&dangling.join("\n")).expect_err("dangling label");
    assert_eq!(err.line, edge_idx + 1);
    assert!(err.message.contains("unknown node"), "{err}");

    let mut duped = lines.clone();
    let node_idx = duped
        .iter()
        .position(|l| l.starts_with("node "))
        .expect("has nodes");
    let dup = duped[node_idx].to_string();
    duped.insert(node_idx + 1, dup.as_str());
    let err = fileio::parse(&duped.join("\n")).expect_err("duplicate node");
    assert_eq!(err.line, node_idx + 2);
    assert!(err.message.contains("duplicate"), "{err}");
}
