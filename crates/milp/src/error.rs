use std::fmt;

/// Errors reported by model construction and the solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// A variable id did not belong to the model it was used with.
    InvalidVar {
        /// The offending variable index.
        var: usize,
        /// Number of variables in the model.
        var_count: usize,
    },
    /// A constraint id did not belong to the model it was used with.
    InvalidConstr {
        /// The offending constraint index.
        constr: usize,
        /// Number of constraints in the model.
        constr_count: usize,
    },
    /// A variable was declared with `lo > hi` or non-finite/NaN data.
    InvalidBounds {
        /// Variable name.
        name: String,
        /// Declared lower bound.
        lo: f64,
        /// Declared upper bound.
        hi: f64,
    },
    /// A coefficient or right-hand side was NaN or infinite.
    InvalidCoefficient {
        /// Human-readable location of the coefficient.
        context: String,
        /// The offending value.
        value: f64,
    },
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The simplex exceeded its iteration budget (numerical trouble or a
    /// genuinely enormous instance).
    IterationLimit {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// Branch-and-bound stopped at a limit without proving optimality and
    /// without any incumbent. (When an incumbent exists the solver returns
    /// it with [`crate::SolveStatus::Feasible`] instead.)
    NodeLimitNoSolution {
        /// Nodes explored before giving up.
        nodes: usize,
    },
    /// A cooperative work budget (see [`crate::MipOptions::work_budget`])
    /// was exhausted mid-solve. This is an *internal* control-flow signal:
    /// the anytime entry points ([`crate::Model::solve_mip_anytime`])
    /// intercept it and return [`crate::MipOutcome::Interrupted`] carrying
    /// the best incumbent and dual bound instead, so callers only observe
    /// this variant from the raw LP interfaces.
    Interrupted {
        /// Deterministic work units (simplex iterations + refactorizations
        /// + branch-and-bound nodes) spent before the budget tripped.
        work_spent: u64,
    },
    /// The accuracy monitor could not certify the final solution: the
    /// relative primal residual stayed above the certification threshold
    /// even after refactorization and Markowitz-tolerance tightening.
    /// Returned instead of a silently wrong answer.
    Numerical {
        /// The measured relative primal residual.
        residual: f64,
        /// The certification threshold it failed to meet.
        tolerance: f64,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::InvalidVar { var, var_count } => {
                write!(
                    f,
                    "variable index {var} out of range (model has {var_count} variables)"
                )
            }
            SolverError::InvalidConstr {
                constr,
                constr_count,
            } => {
                write!(
                    f,
                    "constraint index {constr} out of range (model has {constr_count} constraints)"
                )
            }
            SolverError::InvalidBounds { name, lo, hi } => {
                write!(f, "invalid bounds [{lo}, {hi}] on variable {name}")
            }
            SolverError::InvalidCoefficient { context, value } => {
                write!(f, "invalid coefficient {value} in {context}")
            }
            SolverError::Infeasible => write!(f, "problem is infeasible"),
            SolverError::Unbounded => write!(f, "objective is unbounded"),
            SolverError::IterationLimit { iterations } => {
                write!(
                    f,
                    "simplex iteration limit reached after {iterations} iterations"
                )
            }
            SolverError::NodeLimitNoSolution { nodes } => {
                write!(
                    f,
                    "node limit reached after {nodes} nodes with no feasible solution found"
                )
            }
            SolverError::Interrupted { work_spent } => {
                write!(f, "work budget exhausted after {work_spent} work units")
            }
            SolverError::Numerical {
                residual,
                tolerance,
            } => {
                write!(
                    f,
                    "solution could not be certified: relative residual {residual:.3e} \
                     exceeds tolerance {tolerance:.3e}"
                )
            }
        }
    }
}

impl std::error::Error for SolverError {}
