//! Branch-and-bound driver on top of the simplex, enforcing integrality.
//!
//! The search is best-first over a **batch-synchronous node pool**: up to
//! [`MipOptions::node_batch`] open nodes are popped per round, their LP
//! relaxations solved (in parallel over [`MipOptions::threads`] workers
//! pulling from an atomic cursor), and the results merged *sequentially in
//! pop order* — incumbent updates, pseudocost observations, cut rows, and
//! child insertion all happen in the merge, so the search tree is a pure
//! function of the options and never of the thread count. Determinism is
//! keyed to `node_batch` alone: any `threads` value (including 0 = auto)
//! replays the identical node sequence, incumbent trajectory, and final
//! solution bit-for-bit.
//!
//! The relaxation is tightened with **cutting planes** (see [`crate::cuts`]):
//! [`MipOptions::cut_rounds`] violated rounds at the root and one round at
//! nodes no deeper than [`MipOptions::node_cut_depth`]. Cut rows are
//! appended with [`Model::add_constr`] and the LP re-solved from the
//! previous basis — the warm-start row-extension path makes each re-solve
//! a short dual repair of just the violated rows instead of a cold solve.
//!
//! Branching is **reliability branching**: candidates are scored by the
//! two-sided pseudocost rule, but a direction with fewer than
//! [`MipOptions::reliability`] real observations is not trusted — the
//! candidate is strong-branched (its child LP actually solved) and the
//! measured degradation recorded, seeding the pseudocosts with truth
//! before the cheap estimates take over.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::model::{fnv_step, Cmp, Model, Sense, FNV_OFFSET};
use crate::simplex::{self, LpWarmStart};
use crate::{cuts, presolve, tol};
use crate::{Result, Solution, SolveStatus, SolverError};

/// Cut rows accepted per separation round (most violated first).
const CUTS_PER_ROUND: usize = 16;

/// Tuning knobs for [`Model::solve_mip_with`].
#[derive(Debug, Clone)]
pub struct MipOptions {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Optional wall-clock limit.
    pub time_limit: Option<Duration>,
    /// Relative optimality gap at which the search stops early.
    pub rel_gap: f64,
    /// Declares the objective integral over feasible integer solutions,
    /// allowing bounds to be rounded up (`ceil`) for stronger pruning.
    /// `None` auto-detects: true when every variable with a nonzero cost is
    /// integer with an integral cost coefficient.
    pub integral_objective: Option<bool>,
    /// Run the presolve reductions before the search (default true).
    pub presolve: bool,
    /// Reuse each node's LP basis to warm-start its children (dual simplex
    /// on the one changed bound instead of a cold two-phase solve).
    ///
    /// Off by default: basis reuse can land node LPs on *different optimal
    /// vertices* than cold solves, which changes branching order — for
    /// searches stopped early (node limits, loose `rel_gap`) the reported
    /// incumbent may then legitimately differ between the two settings.
    /// Proven-optimal runs return the same objective either way.
    pub warm_basis: bool,
    /// Rounds of cutting planes separated at the root (0 disables cuts).
    /// Each round appends the violated rows and re-solves the root LP from
    /// its previous basis.
    pub cut_rounds: usize,
    /// Additionally separate one round of cuts at interior nodes of depth
    /// at most this (0 = root only). The rows are globally valid, so they
    /// tighten every later node, not just the separating one.
    pub node_cut_depth: usize,
    /// Reliability threshold η: a pseudocost direction with fewer than η
    /// real observations is distrusted, and the candidate is
    /// strong-branched (child LP solved) instead. 0 disables strong
    /// branching and trusts the cost-seeded pseudocosts immediately.
    pub reliability: u32,
    /// Maximum branching candidates strong-branched per node.
    pub strong_cands: usize,
    /// Worker threads for the batch LP solves. 0 resolves `POPMON_THREADS`
    /// and falls back to the machine's parallelism. The value never
    /// affects results — only wall-clock.
    pub threads: usize,
    /// Nodes popped and LP-solved per batch. Results merge sequentially in
    /// pop order, so the search is a function of this value alone and is
    /// byte-identical at any thread count. 1 reproduces the classic
    /// one-node-at-a-time search.
    pub node_batch: usize,
    /// Cooperative **work budget** in deterministic work units (simplex
    /// iterations + basis refactorizations + branch-and-bound nodes).
    /// Unlike [`MipOptions::time_limit`], exhaustion is a pure function of
    /// the search trajectory — identical budgets produce bitwise-identical
    /// results at any thread count — and the anytime entry point
    /// ([`Model::solve_mip_anytime`]) returns the best incumbent and dual
    /// bound found instead of an error. `None` (the default) disables the
    /// budget entirely; the unbudgeted code path is untouched, so existing
    /// results stay byte-identical. The budget can be overshot by a
    /// bounded, deterministic amount (the simplex checks every 64th
    /// iteration, and in-flight batch members run to completion).
    pub work_budget: Option<u64>,
}

impl Default for MipOptions {
    fn default() -> Self {
        Self {
            max_nodes: 200_000,
            time_limit: None,
            rel_gap: 1e-9,
            integral_objective: None,
            presolve: true,
            warm_basis: false,
            cut_rounds: 4,
            node_cut_depth: 0,
            reliability: 4,
            strong_cands: 8,
            threads: 1,
            node_batch: 1,
            work_budget: None,
        }
    }
}

/// Result of an anytime MIP solve ([`Model::solve_mip_anytime`]).
///
/// The **anytime contract**: for a minimization model,
/// `bound ≤ optimal ≤ incumbent.objective` whenever an incumbent exists
/// (for maximization the inequalities flip — `bound` is then an upper
/// bound). Both sides tighten monotonically with larger budgets, and a
/// budget at least as large as the uninterrupted solve's
/// [`Solution::work`] reproduces that solve bitwise.
#[derive(Debug, Clone)]
pub enum MipOutcome {
    /// The search ran to its natural end under the budget: a proven
    /// optimum, or a limit-terminated feasible solution exactly as the
    /// non-anytime API would have returned it.
    Complete(Solution),
    /// The work budget tripped mid-search. The best incumbent found so
    /// far (if any) and the sharpest dual bound proven are preserved —
    /// an interrupted solve still yields an answer with a quality
    /// certificate, never just an error.
    Interrupted {
        /// Best integer-feasible solution found before interruption, with
        /// its [`Solution::gap`] measured against `bound`. `None` when
        /// the budget tripped before any incumbent landed.
        incumbent: Option<Solution>,
        /// Dual bound in the model's own sense: no integer solution can
        /// beat it (minimization: `optimal ≥ bound`). `-inf`/`+inf` when
        /// even the root relaxation was interrupted.
        bound: f64,
        /// Work units actually spent (may overshoot the budget by the
        /// documented bounded amount).
        work_spent: u64,
    },
}

impl MipOutcome {
    /// The solution carried by this outcome: the complete solution, or
    /// the interrupted incumbent when one exists.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            MipOutcome::Complete(s) => Some(s),
            MipOutcome::Interrupted { incumbent, .. } => incumbent.as_ref(),
        }
    }

    /// Whether the search ended on its own terms (no budget trip).
    pub fn is_complete(&self) -> bool {
        matches!(self, MipOutcome::Complete(_))
    }
}

/// Resolves the worker count: an explicit request wins; 0 consults
/// `POPMON_THREADS` (the workspace-wide thread knob) and falls back to the
/// machine's available parallelism.
fn resolve_threads(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::env::var("POPMON_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Cross-solve warm-start state returned by [`Model::solve_mip_warm`]: the
/// optimal basis of the root relaxation (over the *presolved* model),
/// reusable as the root start of the next solve in a perturbation chain.
/// Reuse is guarded by [`LpWarmStart`]'s shape *and* coefficient
/// fingerprint check — presolve may fix different variables (and thus
/// emit structurally different reduced models) at different chain points,
/// and such a stale basis is silently ignored in favor of a cold root
/// solve rather than trusted. The captured basis predates this solve's own
/// cut rows, so the next link's un-cut model accepts it.
#[derive(Debug, Clone)]
pub struct MipWarmStart {
    root: LpWarmStart,
}

/// One open node: a set of bound changes relative to the root model.
#[derive(Debug, Clone)]
struct Node {
    /// Lower bound (minimization) inherited from the parent LP.
    bound: f64,
    depth: usize,
    /// Insertion sequence; later insertions win ties so the up-branch
    /// (pushed last) is plunged first — in covering problems the `x = 1`
    /// side reaches feasible incumbents sooner.
    seq: usize,
    /// `(var index, lo, hi)` overrides.
    changes: Vec<(usize, f64, f64)>,
    /// Parent's LP basis (shared by both children) when basis reuse is on.
    basis: Option<Arc<LpWarmStart>>,
    /// The branching that created this node: `(variable, up branch,
    /// fractional distance moved)`, used to update that variable's
    /// pseudocost once this node's LP solves.
    branched: Option<(usize, bool, f64)>,
    /// Raw (unstrengthened) parent LP objective, the reference point for
    /// the pseudocost degradation measurement.
    parent_obj: f64,
}

/// Observed per-unit objective degradations of branching a variable up /
/// down, seeded with the variable's |objective coefficient| until a real
/// observation lands. Drives the branching score: prefer the variable
/// whose *weaker* branch direction still moves the bound the most (the
/// min rule — both children must make progress), so plunges tighten the
/// bound faster and the best-first queue prunes earlier.
#[derive(Debug, Clone, Copy)]
struct PseudoCost {
    up_sum: f64,
    up_n: u32,
    down_sum: f64,
    down_n: u32,
    prior: f64,
}

impl PseudoCost {
    fn new(prior: f64) -> Self {
        Self {
            up_sum: 0.0,
            up_n: 0,
            down_sum: 0.0,
            down_n: 0,
            prior: prior.abs().max(1e-6),
        }
    }

    fn observe(&mut self, up: bool, per_unit: f64) {
        if up {
            self.up_sum += per_unit;
            self.up_n += 1;
        } else {
            self.down_sum += per_unit;
            self.down_n += 1;
        }
    }

    fn up(&self) -> f64 {
        if self.up_n > 0 {
            self.up_sum / self.up_n as f64
        } else {
            self.prior
        }
    }

    fn down(&self) -> f64 {
        if self.down_n > 0 {
            self.down_sum / self.down_n as f64
        } else {
            self.prior
        }
    }

    /// Branching score at the given floor/ceil distances: the guaranteed
    /// two-sided bound degradation (min rule — both children must move).
    fn score(&self, down_dist: f64, up_dist: f64) -> f64 {
        (self.down() * down_dist).min(self.up() * up_dist)
    }
}

/// Best-first ordering with depth then recency tie-breaking (deeper and
/// fresher first → plunging).
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.depth == other.depth && self.seq == other.seq
    }
}
impl Eq for Node {}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest bound on top.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.depth.cmp(&other.depth))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn auto_integral_objective(model: &Model) -> bool {
    model
        .vars
        .iter()
        .all(|v| v.cost == 0.0 || (v.integer && v.cost.fract() == 0.0))
}

/// Whether a node with lower bound `bound` is closed by the incumbent:
/// either the bound cannot improve on the incumbent at the objective's own
/// scale, or the remaining gap is within the requested tolerance. The gap
/// goes through [`tol::rel_gap`] — scale-relative with a magnitude-safe
/// denominator — so `best ≈ 0`, negative objectives, and unbounded node
/// bounds all prune correctly.
fn closed_by(incumbent: &Option<(f64, Vec<f64>)>, bound: f64, rel_gap: f64) -> bool {
    incumbent.as_ref().is_some_and(|(best, _)| {
        bound >= *best - tol::obj_eps(*best) || tol::rel_gap(*best, bound) <= rel_gap
    })
}

/// Structural fingerprint of a cut row, for duplicate suppression across
/// separation sites (a node solved before a sibling's cut landed can
/// re-separate the identical row).
fn cut_fp(cut: &cuts::Cut) -> u64 {
    let mut h = FNV_OFFSET;
    for &(v, c) in &cut.terms {
        h = fnv_step(h, v.index() as u64);
        h = fnv_step(h, c.to_bits());
    }
    h = fnv_step(h, cut.rhs.to_bits());
    fnv_step(
        h,
        match cut.cmp {
            Cmp::Le => 0,
            Cmp::Eq => 1,
            Cmp::Ge => 2,
        },
    )
}

/// Appends the not-yet-seen cuts to both the root and the node model
/// (kept row-identical for the whole search); returns how many landed.
fn append_cuts(
    root_model: &mut Model,
    node_model: &mut Model,
    found: &[cuts::Cut],
    seen: &mut HashSet<u64>,
) -> usize {
    let mut added = 0;
    for cut in found {
        if !seen.insert(cut_fp(cut)) {
            continue;
        }
        root_model.add_constr(cut.terms.clone(), cut.cmp, cut.rhs);
        node_model.add_constr(cut.terms.clone(), cut.cmp, cut.rhs);
        added += 1;
    }
    added
}

/// A node's solved relaxation: the LP solution plus the basis snapshot
/// (present only when the node went through the warm-capable path).
struct NodeLp {
    sol: Solution,
    basis: Option<LpWarmStart>,
}

/// `Ok(None)` = LP infeasible (node closed); `Err` = numerical failure.
/// The `u64` is the work the LP call performed **whatever** the outcome —
/// infeasible and failed relaxations burn real pivots too, and the
/// anytime ledger must count them or a budget equal to a solve's own
/// reported [`Solution::work`] could trip inside work the report never
/// showed, breaking the reproduction guarantee.
type LpOutcome = (Result<Option<NodeLp>>, u64);

/// Solves one node's relaxation on `model` (a row-identical copy of
/// `root`), applying and then restoring the node's bound overrides. Pure
/// in (model rows, node, lp_budget) — workers call it on private clones,
/// the serial path on the shared node model, with identical results.
///
/// `lp_budget` is the work budget remaining at the owning batch's start —
/// identical for every node in the batch regardless of scheduling, which
/// is what keeps a budget trip deterministic across thread counts. A trip
/// surfaces as `Err(Interrupted)` and is handled by the merge.
fn solve_node_lp(
    model: &mut Model,
    root: &Model,
    node: &Node,
    warm_path: bool,
    lp_budget: Option<u64>,
) -> LpOutcome {
    for &(j, lo, hi) in &node.changes {
        model.vars[j].lo = lo;
        model.vars[j].hi = hi;
    }
    // The root always routes through the warm-capable path so chains can
    // seed it and its basis can seed the next chain link; interior nodes
    // reuse the parent basis only when `warm_basis` is on.
    let mut work = 0u64;
    let lp = if warm_path || node.depth == 0 {
        simplex::solve_warm_budgeted(model, node.basis.as_deref(), lp_budget, &mut work)
    } else {
        simplex::solve_budgeted(model, lp_budget, &mut work).map(|s| (s, None))
    };
    restore(model, root, &node.changes);
    let outcome = match lp {
        Ok((sol, basis)) => Ok(Some(NodeLp { sol, basis })),
        Err(SolverError::Infeasible) => Ok(None),
        Err(e) => Err(e),
    };
    (outcome, work)
}

/// Entry point used by [`Model::solve_mip`] and friends. `warm` seeds the
/// root LP basis from a previous solve of a perturbed sibling model; the
/// returned [`MipWarmStart`] carries this solve's root basis onward (or
/// `None` when the root LP never produced a reusable basis).
///
/// Flattens a budget interruption into the legacy surface: an interrupted
/// search with an incumbent reports it as a [`SolveStatus::Feasible`]
/// solution with its gap (the same shape a node-limit stop produces), and
/// one without an incumbent surfaces [`SolverError::Interrupted`]. Use
/// [`solve_outcome`] / [`Model::solve_mip_anytime`] for the typed form.
pub(crate) fn solve(
    model: &Model,
    opts: &MipOptions,
    warm: Option<&MipWarmStart>,
) -> Result<(Solution, Option<MipWarmStart>)> {
    match solve_outcome(model, opts, warm)? {
        (MipOutcome::Complete(sol), w) => Ok((sol, w)),
        (
            MipOutcome::Interrupted {
                incumbent: Some(sol),
                ..
            },
            w,
        ) => Ok((sol, w)),
        (
            MipOutcome::Interrupted {
                incumbent: None,
                work_spent,
                ..
            },
            _,
        ) => Err(SolverError::Interrupted { work_spent }),
    }
}

/// The full anytime search. See [`MipOutcome`] for the contract; with
/// [`MipOptions::work_budget`] unset this never returns
/// [`MipOutcome::Interrupted`] and is byte-identical to the pre-anytime
/// search.
pub(crate) fn solve_outcome(
    model: &Model,
    opts: &MipOptions,
    warm: Option<&MipWarmStart>,
) -> Result<(MipOutcome, Option<MipWarmStart>)> {
    // Work on a minimization copy to keep bound logic single-signed.
    let maximize = matches!(model.sense, Sense::Maximize);
    let mut work = model.clone();
    if maximize {
        work.sense = Sense::Minimize;
        for v in &mut work.vars {
            v.cost = -v.cost;
        }
    }

    // Presolve (kept optional for debugging and for the tests that compare
    // with/without reductions).
    let pre = if opts.presolve {
        presolve::presolve(&work)?
    } else {
        presolve::identity(&work)
    };
    let mut root_model = pre.model.clone();

    let int_vars: Vec<usize> = root_model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.integer)
        .map(|(i, _)| i)
        .collect();

    let integral_obj = opts
        .integral_objective
        .unwrap_or_else(|| auto_integral_objective(&root_model));
    let strengthen = |b: f64| {
        if integral_obj {
            (b - tol::int_eps(b)).ceil()
        } else {
            b
        }
    };

    let finish = |values_reduced: Vec<f64>,
                  status: SolveStatus,
                  gap: f64,
                  iterations: usize,
                  nodes: usize,
                  work: u64|
     -> Solution {
        let values = pre.expand(&values_reduced);
        let objective = model.objective_value(&values);
        Solution {
            values,
            objective,
            status,
            gap,
            iterations,
            nodes,
            work,
        }
    };

    // Initial incumbent from the user-supplied warm start, when feasible.
    let mut incumbent: Option<(f64, Vec<f64>)> = None; // (min-sense obj, reduced values)
    if let Some(init) = &model.initial {
        if model.check_feasible(init, crate::FEAS_TOL).is_ok() {
            let obj = work.objective_value(init);
            incumbent = Some((obj, pre.reduce(init)));
        }
    }

    let start = Instant::now();
    let mut iterations = 0usize;
    let mut nodes_explored = 0usize;
    // Deterministic work-unit ledger: every node charged at batch accept,
    // every LP call's true cost — successful, infeasible, tripped, or
    // failed — charged in merge order. A pure function of the search
    // trajectory, so budget trips replay bitwise at any thread count; and
    // complete (no outcome uncounted), so feeding a finished solve's own
    // `Solution::work` back as the budget reproduces it without a trip.
    let mut work_spent = 0u64;
    let mut interrupted = false;
    let mut open = BinaryHeap::new();
    let mut seq = 0usize;
    open.push(Node {
        bound: f64::NEG_INFINITY,
        depth: 0,
        seq,
        changes: Vec::new(),
        basis: warm.map(|w| Arc::new(w.root.clone())),
        branched: None,
        parent_obj: f64::NEG_INFINITY,
    });
    // Pseudocosts over the reduced model's variables, objective-seeded.
    let mut pseudo: Vec<PseudoCost> = root_model
        .vars
        .iter()
        .map(|v| PseudoCost::new(v.cost))
        .collect();

    let mut node_model = root_model.clone();
    let mut proven = true;
    let mut root_basis_out: Option<MipWarmStart> = None;
    let mut seen_cuts: HashSet<u64> = HashSet::new();
    let nthreads = resolve_threads(opts.threads).max(1);
    let node_batch = opts.node_batch.max(1);

    loop {
        // Collect the next batch (pruning against the incumbent at pop
        // time; the merge re-checks after within-batch improvements).
        let mut batch: Vec<Node> = Vec::new();
        while batch.len() < node_batch {
            let Some(node) = open.pop() else { break };
            if closed_by(&incumbent, node.bound, opts.rel_gap) {
                continue;
            }
            batch.push(node);
        }
        if batch.is_empty() {
            break;
        }
        let work_tripped = opts.work_budget.is_some_and(|b| work_spent >= b);
        if work_tripped
            || nodes_explored + batch.len() > opts.max_nodes
            || opts.time_limit.is_some_and(|l| start.elapsed() >= l)
        {
            // Return the collected nodes so the final gap sees their bounds.
            for node in batch {
                open.push(node);
            }
            proven = false;
            interrupted |= work_tripped;
            break;
        }
        nodes_explored += batch.len();
        work_spent += batch.len() as u64;
        // Per-node LP budget: the work remaining *at batch start*. Fixed
        // for the whole batch so every member sees the same number no
        // matter which worker picks it up — the thread-count invariance
        // of a trip hinges on exactly this.
        let lp_budget = opts.work_budget.map(|b| b.saturating_sub(work_spent));

        // Solve the batch relaxations — in parallel when both the batch
        // and the worker pool are larger than one. Workers pull node
        // indices from an atomic cursor and run on private model clones;
        // results are reassembled in batch order, so the merge below is
        // oblivious to how the work was scheduled.
        let lps: Vec<LpOutcome> = if nthreads > 1 && batch.len() > 1 {
            let cursor = AtomicUsize::new(0);
            let mut slots: Vec<Option<LpOutcome>> = (0..batch.len()).map(|_| None).collect();
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..nthreads.min(batch.len()))
                    .map(|_| {
                        let cursor = &cursor;
                        let batch = &batch;
                        let root = &root_model;
                        let warm_path = opts.warm_basis;
                        s.spawn(move || {
                            let mut local = root.clone();
                            let mut out: Vec<(usize, LpOutcome)> = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                                if i >= batch.len() {
                                    break;
                                }
                                out.push((
                                    i,
                                    solve_node_lp(
                                        &mut local, root, &batch[i], warm_path, lp_budget,
                                    ),
                                ));
                            }
                            out
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, r) in h.join().expect("node LP worker panicked") {
                        slots[i] = Some(r);
                    }
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("every batch slot solved"))
                .collect()
        } else {
            let mut v = Vec::with_capacity(batch.len());
            for node in &batch {
                v.push(solve_node_lp(
                    &mut node_model,
                    &root_model,
                    node,
                    opts.warm_basis,
                    lp_budget,
                ));
            }
            v
        };

        // Sequential merge in pop order: everything order-sensitive
        // (incumbent, pseudocosts, cuts, child insertion) happens here.
        for (node, (lp, lp_work)) in batch.iter().zip(lps) {
            // Charge the LP's true cost first, whatever its outcome — an
            // infeasible node's closing certificate burns pivots that the
            // ledger must see, or a rerun with this solve's own reported
            // work as its budget would trip inside the uncounted work.
            work_spent += lp_work;
            // A node LP that tripped the batch's budget goes back on the
            // queue (its bound must count in the final dual bound); the
            // rest of the batch still merges — their LPs are solved,
            // discarding them would waste the work — and the search stops
            // at the end of this merge.
            let lp = match lp {
                Err(SolverError::Interrupted { .. }) => {
                    interrupted = true;
                    open.push(node.clone());
                    continue;
                }
                other => other,
            };
            let Some(NodeLp { mut sol, mut basis }) = lp? else {
                continue; // node LP infeasible: closed
            };
            iterations += sol.iterations;

            // Pseudocost update: how much did branching this variable in
            // this direction degrade the relaxation, per unit of
            // fractional distance? (Deterministic: the merge runs in a
            // total order, so the observation sequence is reproducible.)
            if let Some((bj, up, delta)) = node.branched {
                if delta > tol::int_eps(delta) && node.parent_obj.is_finite() {
                    let per_unit = ((sol.objective - node.parent_obj) / delta).max(0.0);
                    pseudo[bj].observe(up, per_unit);
                }
            }

            // Root: capture the chain warm-start first (pre-cut, so the
            // next chain link's un-cut model accepts it), then tighten
            // the relaxation with rounds of cutting planes, re-solving
            // from the previous basis via the row-extension warm path.
            if node.depth == 0 {
                root_basis_out = basis.clone().map(|root| MipWarmStart { root });
                let mut infeasible_by_cuts = false;
                let mut tripped_in_cuts = false;
                for _ in 0..opts.cut_rounds {
                    let found = cuts::separate(&root_model, &sol.values, CUTS_PER_ROUND);
                    if append_cuts(&mut root_model, &mut node_model, &found, &mut seen_cuts) == 0 {
                        break;
                    }
                    let mut cut_work = 0u64;
                    let lp2 = simplex::solve_warm_budgeted(
                        &node_model,
                        basis.as_ref(),
                        lp_budget,
                        &mut cut_work,
                    );
                    work_spent += cut_work;
                    match lp2 {
                        Ok((s2, b2)) => {
                            iterations += s2.iterations;
                            sol = s2;
                            basis = b2;
                        }
                        // Valid cuts only exclude integer-infeasible
                        // regions: an infeasible cut relaxation proves
                        // the MIP itself has no integer point.
                        Err(SolverError::Infeasible) => {
                            infeasible_by_cuts = true;
                            break;
                        }
                        // Budget tripped inside a separation re-solve.
                        Err(SolverError::Interrupted { .. }) => {
                            tripped_in_cuts = true;
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
                if infeasible_by_cuts {
                    continue;
                }
                if tripped_in_cuts {
                    // Terminal by design: expanding this node from a
                    // partially tightened relaxation would put the search
                    // on a different trajectory than a larger budget —
                    // the anytime monotonicity guarantee (bigger budgets
                    // never worsen the incumbent) requires every trip to
                    // stop the search at a shared-prefix point. The last
                    // fully solved relaxation is still a valid bound.
                    let mut back = node.clone();
                    back.bound = strengthen(sol.objective);
                    open.push(back);
                    interrupted = true;
                    continue;
                }
            }

            let mut bound = strengthen(sol.objective);
            if closed_by(&incumbent, bound, opts.rel_gap) {
                continue;
            }

            // Shallow interior nodes: one violated round of globally valid
            // cuts, re-solved under this node's bounds.
            if node.depth > 0 && node.depth <= opts.node_cut_depth {
                let found = cuts::separate(&root_model, &sol.values, CUTS_PER_ROUND);
                if append_cuts(&mut root_model, &mut node_model, &found, &mut seen_cuts) > 0 {
                    for &(j, lo, hi) in &node.changes {
                        node_model.vars[j].lo = lo;
                        node_model.vars[j].hi = hi;
                    }
                    let mut cut_work = 0u64;
                    let lp2 = simplex::solve_warm_budgeted(
                        &node_model,
                        basis.as_ref(),
                        lp_budget,
                        &mut cut_work,
                    );
                    restore(&mut node_model, &root_model, &node.changes);
                    work_spent += cut_work;
                    match lp2 {
                        Ok((s2, b2)) => {
                            iterations += s2.iterations;
                            sol = s2;
                            basis = b2;
                        }
                        // Only this subtree is proven empty.
                        Err(SolverError::Infeasible) => continue,
                        // Budget trip mid-tightening: terminal (see the
                        // root-cut trip above) — the pre-cut relaxation
                        // is untouched and still a valid bound for the
                        // requeued node.
                        Err(SolverError::Interrupted { .. }) => {
                            let mut back = node.clone();
                            back.bound = bound;
                            open.push(back);
                            interrupted = true;
                            continue;
                        }
                        Err(e) => return Err(e),
                    }
                    bound = strengthen(sol.objective);
                    if closed_by(&incumbent, bound, opts.rel_gap) {
                        continue;
                    }
                }
            }

            // ---- expansion, under this node's bounds ----
            for &(j, lo, hi) in &node.changes {
                node_model.vars[j].lo = lo;
                node_model.vars[j].hi = hi;
            }

            // Fractional branching candidates with floor/ceil distances.
            let mut cands: Vec<(usize, f64, f64)> = Vec::new();
            for &j in &int_vars {
                let x = sol.values[j];
                if !tol::is_int(x) {
                    cands.push((j, x - x.floor(), x.ceil() - x));
                }
            }

            let lp_arc = basis.map(Arc::new);

            // Reliability branching: strong-branch the top-ranked
            // candidates whose pseudocosts are not yet trusted, feeding
            // the measured degradations back into the estimates. An
            // infeasible probe direction makes its variable the forced
            // choice — branching there closes one child instantly.
            let mut forced: Option<usize> = None;
            let mut probe_tripped = false;
            if opts.reliability > 0 && !cands.is_empty() {
                let mut order: Vec<usize> = (0..cands.len()).collect();
                order.sort_by(|&a, &b| cand_cmp(&pseudo, &cands[a], &cands[b]));
                'probing: for &ci in order.iter().take(opts.strong_cands) {
                    let (j, dd, ud) = cands[ci];
                    for up in [false, true] {
                        let (obs, dist) = if up {
                            (pseudo[j].up_n, ud)
                        } else {
                            (pseudo[j].down_n, dd)
                        };
                        if obs >= opts.reliability {
                            continue;
                        }
                        let x = sol.values[j];
                        let (plo, phi) = (node_model.vars[j].lo, node_model.vars[j].hi);
                        if up {
                            node_model.vars[j].lo = x.ceil();
                        } else {
                            node_model.vars[j].hi = x.floor();
                        }
                        let mut probe_work = 0u64;
                        let probe = if let Some(w) = lp_arc.as_deref() {
                            simplex::solve_warm_budgeted(
                                &node_model,
                                Some(w),
                                lp_budget,
                                &mut probe_work,
                            )
                            .map(|(s, _)| s)
                        } else {
                            simplex::solve_budgeted(&node_model, lp_budget, &mut probe_work)
                        };
                        node_model.vars[j].lo = plo;
                        node_model.vars[j].hi = phi;
                        work_spent += probe_work;
                        match probe {
                            Ok(ps) => {
                                iterations += ps.iterations;
                                pseudo[j]
                                    .observe(up, ((ps.objective - sol.objective) / dist).max(0.0));
                            }
                            Err(SolverError::Infeasible) => {
                                forced = Some(j);
                                break 'probing;
                            }
                            // Budget trip inside a probe: end the search
                            // at this shared-prefix point (see the
                            // root-cut trip) — branching from half-made
                            // pseudocost observations would diverge from
                            // the larger-budget trajectory.
                            Err(SolverError::Interrupted { .. }) => {
                                probe_tripped = true;
                                break 'probing;
                            }
                            // Numerical trouble in a probe is advisory
                            // only — skip the observation (its work is
                            // still on the ledger).
                            Err(_) => {}
                        }
                    }
                }
            }
            if probe_tripped {
                restore(&mut node_model, &root_model, &node.changes);
                let mut back = node.clone();
                back.bound = bound;
                open.push(back);
                interrupted = true;
                continue;
            }

            let mut branch_var: Option<usize> = forced;
            if branch_var.is_none() && !cands.is_empty() {
                let mut best = 0usize;
                for ci in 1..cands.len() {
                    if cand_cmp(&pseudo, &cands[ci], &cands[best]) == Ordering::Less {
                        best = ci;
                    }
                }
                branch_var = Some(cands[best].0);
            }

            // Tolerance-integral LP optimum: snap the integer variables to
            // exact integers and re-verify against the node's true
            // (unscaled) bounds and rows before accepting. A value
            // integral only to within the scale-relative tolerance can
            // round onto an infeasible point; such a candidate must not
            // become the incumbent.
            let mut integral_candidate: Option<Vec<f64>> = None;
            if branch_var.is_none() {
                let mut snapped = sol.values.clone();
                for &j in &int_vars {
                    let v = &node_model.vars[j];
                    snapped[j] = snapped[j].round().clamp(v.lo, v.hi);
                }
                if node_model.check_feasible(&snapped, crate::FEAS_TOL).is_ok() {
                    integral_candidate = Some(snapped);
                } else if let Some(&j) = int_vars.iter().max_by(|&&a, &&b| {
                    let fa = (sol.values[a] - sol.values[a].round()).abs();
                    let fb = (sol.values[b] - sol.values[b].round()).abs();
                    fa.partial_cmp(&fb).unwrap_or(Ordering::Equal)
                }) {
                    let x = sol.values[j];
                    if (x - x.round()).abs() > tol::FIX_REL {
                        // Rounding broke feasibility but there is real
                        // fractionality left: branch on it instead.
                        branch_var = Some(j);
                    } else {
                        // Exactly integral yet infeasible on re-check —
                        // drop the node, and stop claiming a proven
                        // optimum since its subtree goes unexplored.
                        proven = false;
                    }
                }
            }

            match branch_var {
                None => {
                    if let Some(snapped) = integral_candidate {
                        let obj = node_model.objective_value(&snapped);
                        if incumbent
                            .as_ref()
                            .is_none_or(|(best, _)| obj < *best - tol::obj_eps(*best))
                        {
                            incumbent = Some((obj, snapped));
                        }
                    }
                }
                Some(j) => {
                    // Try a cheap rounding heuristic for an incumbent.
                    if let Some(rounded) = round_heuristic(&node_model, &sol.values, &int_vars) {
                        let obj = node_model.objective_value(&rounded);
                        if incumbent
                            .as_ref()
                            .is_none_or(|(best, _)| obj < *best - tol::obj_eps(*best))
                        {
                            incumbent = Some((obj, rounded));
                        }
                    }
                    let x = sol.values[j];
                    let (lo, hi) = (node_model.vars[j].lo, node_model.vars[j].hi);
                    let mut down = node.changes.clone();
                    down.push((j, lo, x.floor()));
                    let mut up = node.changes.clone();
                    up.push((j, x.ceil(), hi));
                    let child_basis = if opts.warm_basis {
                        lp_arc.clone()
                    } else {
                        None
                    };
                    seq += 1;
                    open.push(Node {
                        bound,
                        depth: node.depth + 1,
                        seq,
                        changes: down,
                        basis: child_basis.clone(),
                        branched: Some((j, false, x - x.floor())),
                        parent_obj: sol.objective,
                    });
                    seq += 1;
                    open.push(Node {
                        bound,
                        depth: node.depth + 1,
                        seq,
                        changes: up,
                        basis: child_basis,
                        branched: Some((j, true, x.ceil() - x)),
                        parent_obj: sol.objective,
                    });
                }
            }

            restore(&mut node_model, &root_model, &node.changes);
        }

        if interrupted {
            // A node LP tripped the budget mid-batch: its node is back on
            // the queue (so the dual bound below sees it) and the search
            // ends here deterministically.
            proven = false;
            break;
        }
    }

    let best_open_bound = open.peek().map(|n| n.bound).unwrap_or(f64::INFINITY);

    if interrupted {
        // Anytime surface: best incumbent + sharpest dual bound proven.
        // The dual bound is the least open-node bound, capped by the
        // incumbent (open nodes at or above the incumbent would have been
        // pruned at pop time); the root node re-queued with its -inf
        // bound correctly reports "nothing proven yet".
        let bound_min = match &incumbent {
            Some((obj, _)) => best_open_bound.min(*obj),
            None => best_open_bound,
        };
        let bound = if maximize { -bound_min } else { bound_min };
        let incumbent_sol = incumbent.map(|(obj, values)| {
            let gap = tol::rel_gap(obj, bound_min.min(obj));
            finish(
                values,
                SolveStatus::Feasible,
                gap,
                iterations,
                nodes_explored,
                work_spent,
            )
        });
        return Ok((
            MipOutcome::Interrupted {
                incumbent: incumbent_sol,
                bound,
                work_spent,
            },
            root_basis_out,
        ));
    }

    match incumbent {
        Some((obj, values)) => {
            let gap = if proven && open.is_empty() {
                0.0
            } else {
                tol::rel_gap(obj, best_open_bound.min(obj))
            };
            let status = if gap <= opts.rel_gap || (proven && open.is_empty()) {
                SolveStatus::Optimal
            } else {
                SolveStatus::Feasible
            };
            let gap = if status == SolveStatus::Optimal {
                0.0
            } else {
                gap
            };
            Ok((
                MipOutcome::Complete(finish(
                    values,
                    status,
                    gap,
                    iterations,
                    nodes_explored,
                    work_spent,
                )),
                root_basis_out,
            ))
        }
        None => {
            if proven {
                Err(SolverError::Infeasible)
            } else {
                Err(SolverError::NodeLimitNoSolution {
                    nodes: nodes_explored,
                })
            }
        }
    }
}

/// Candidate ordering for branching: higher pseudocost score first, then
/// most fractional (distance of the fractional part to ½), then lowest
/// index — a deterministic total order.
fn cand_cmp(pseudo: &[PseudoCost], a: &(usize, f64, f64), b: &(usize, f64, f64)) -> Ordering {
    let sa = pseudo[a.0].score(a.1, a.2);
    let sb = pseudo[b.0].score(b.1, b.2);
    sb.partial_cmp(&sa)
        .unwrap_or(Ordering::Equal)
        .then_with(|| {
            let fa = (a.1 - 0.5).abs();
            let fb = (b.1 - 0.5).abs();
            fa.partial_cmp(&fb).unwrap_or(Ordering::Equal)
        })
        .then_with(|| a.0.cmp(&b.0))
}

fn restore(node_model: &mut Model, root: &Model, changes: &[(usize, f64, f64)]) {
    for &(j, _, _) in changes {
        node_model.vars[j].lo = root.vars[j].lo;
        node_model.vars[j].hi = root.vars[j].hi;
    }
}

/// Rounds the integer variables of an LP solution and accepts the result
/// when it is feasible for `model`. Tries nearest-integer rounding first,
/// then ceiling — the latter almost always lands feasible on the covering
/// programs of the placement crate (`Σ x ≥ …` rows only grow).
fn round_heuristic(model: &Model, values: &[f64], int_vars: &[usize]) -> Option<Vec<f64>> {
    let snap = |f: fn(f64) -> f64| {
        let mut rounded = values.to_vec();
        for &j in int_vars {
            let v = &model.vars[j];
            rounded[j] = f(rounded[j]).clamp(v.lo, v.hi);
        }
        model
            .check_feasible(&rounded, crate::FEAS_TOL)
            .ok()
            .map(|_| rounded)
    };
    snap(f64::round).or_else(|| snap(|x| (x - tol::int_eps(x)).ceil()))
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, MipOptions, Model, Sense, SolveStatus, SolverError, VarKind};

    /// The plain search: no cuts, no strong branching, serial single-node
    /// batches — the baseline the enriched default engine must agree with.
    fn plain() -> MipOptions {
        MipOptions {
            cut_rounds: 0,
            node_cut_depth: 0,
            reliability: 0,
            threads: 1,
            node_batch: 1,
            ..Default::default()
        }
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary -> a + c (17)
        // vs b + c (20, weight 6 ok) -> optimum 20.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", VarKind::Binary, 0.0, 1.0, 10.0);
        let b = m.add_var("b", VarKind::Binary, 0.0, 1.0, 13.0);
        let c = m.add_var("c", VarKind::Binary, 0.0, 1.0, 7.0);
        m.add_constr(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0);
        let s = m.solve_mip().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 20.0).abs() < 1e-6, "obj = {}", s.objective);
        assert!(s.is_one(b, 1e-6) && s.is_one(c, 1e-6));
    }

    #[test]
    fn set_cover_triangle_needs_two() {
        // LP relaxation gives 1.5; the MIP must find 2.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_var("a", VarKind::Binary, 0.0, 1.0, 1.0);
        let b = m.add_var("b", VarKind::Binary, 0.0, 1.0, 1.0);
        let c = m.add_var("c", VarKind::Binary, 0.0, 1.0, 1.0);
        m.add_constr(vec![(a, 1.0), (c, 1.0)], Cmp::Ge, 1.0);
        m.add_constr(vec![(a, 1.0), (b, 1.0)], Cmp::Ge, 1.0);
        m.add_constr(vec![(b, 1.0), (c, 1.0)], Cmp::Ge, 1.0);
        let s = m.solve_mip().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 2x + y, x integer in [0,10], y continuous >= 0,
        // x + y >= 3.5  -> x = 0, y = 3.5? cost 3.5. x=1,y=2.5 -> 4.5. So 3.5.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0, 2.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 3.5);
        let s = m.solve_mip().unwrap();
        assert!((s.objective - 3.5).abs() < 1e-6);
        assert!(s.value(x).abs() < 1e-6);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x, 2x <= 5, x integer -> 2 (LP gives 2.5).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0, 1.0);
        m.add_constr(vec![(x, 2.0)], Cmp::Le, 5.0);
        let s = m.solve_mip().unwrap();
        assert!((s.value(x) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_mip() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Binary, 0.0, 1.0, 1.0);
        let y = m.add_var("y", VarKind::Binary, 0.0, 1.0, 1.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0);
        assert_eq!(m.solve_mip().unwrap_err(), SolverError::Infeasible);
    }

    #[test]
    fn pure_lp_passthrough() {
        // No integer variables: solve_mip must behave like solve_lp.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0, 1.0);
        m.add_constr(vec![(x, 1.0)], Cmp::Ge, 2.5);
        let s = m.solve_mip().unwrap();
        assert!((s.objective - 2.5).abs() < 1e-9);
    }

    #[test]
    fn warm_start_is_used() {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Binary, 0.0, 1.0, 1.0))
            .collect();
        // Each consecutive pair must have one selected.
        for w in vars.windows(2) {
            m.add_constr(vec![(w[0], 1.0), (w[1], 1.0)], Cmp::Ge, 1.0);
        }
        m.set_initial_solution(vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let s = m.solve_mip().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        // Optimal vertex cover of a path of 6 nodes (5 edges) costs 2? No:
        // pairs (0,1),(1,2),(2,3),(3,4),(4,5): picking x1, x3 covers the
        // first four; (4,5) needs x4 or x5 -> 3 total.
        assert!((s.objective - 3.0).abs() < 1e-6, "obj = {}", s.objective);
    }

    #[test]
    fn node_limit_reports_feasible_with_gap() {
        // An equipartition-flavoured instance that needs some branching.
        let weights = [31.0, 27.0, 23.0, 19.0, 17.0, 13.0, 11.0, 7.0, 5.0, 3.0];
        let total: f64 = weights.iter().sum();
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| m.add_var(format!("x{i}"), VarKind::Binary, 0.0, 1.0, w))
            .collect();
        let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
        m.add_constr(terms, Cmp::Le, total / 2.0 - 0.5);
        let opts = MipOptions {
            max_nodes: 1,
            ..Default::default()
        };
        match m.solve_mip_with(&opts) {
            Ok(s) => {
                // Root produced an incumbent via rounding; gap may be positive.
                assert!(s.objective <= total / 2.0);
            }
            Err(SolverError::NodeLimitNoSolution { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
        // With a generous budget it must prove optimality.
        let s = m.solve_mip().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 77.0).abs() < 1e-6, "obj = {}", s.objective);
    }

    #[test]
    fn fixed_binaries_respected_incremental_style() {
        // Paper's incremental deployment: pre-install x0 and ask for the
        // best completion.
        let mut m = Model::new(Sense::Minimize);
        let x0 = m.add_var("x0", VarKind::Binary, 0.0, 1.0, 1.0);
        let x1 = m.add_var("x1", VarKind::Binary, 0.0, 1.0, 1.0);
        let x2 = m.add_var("x2", VarKind::Binary, 0.0, 1.0, 1.0);
        m.add_constr(vec![(x1, 1.0), (x2, 1.0)], Cmp::Ge, 1.0);
        m.fix_var(x0, 1.0);
        let s = m.solve_mip().unwrap();
        assert!(s.is_one(x0, 1e-9));
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn equality_with_integers() {
        // x + y = 7, x - y = 1 over integers -> x=4, y=3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 100.0, 1.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 100.0, 1.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 7.0);
        m.add_constr(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0);
        let s = m.solve_mip().unwrap();
        assert!((s.value(x) - 4.0).abs() < 1e-6);
        assert!((s.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn presolve_toggle_agrees() {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Binary, 0.0, 1.0, 1.0))
            .collect();
        for i in 0..8usize {
            let terms = vec![
                (vars[i], 1.0),
                (vars[(i + 2) % 8], 1.0),
                (vars[(i + 5) % 8], 1.0),
            ];
            m.add_constr(terms, Cmp::Ge, 1.0);
        }
        let with = m
            .solve_mip_with(&MipOptions {
                presolve: true,
                ..Default::default()
            })
            .unwrap();
        let without = m
            .solve_mip_with(&MipOptions {
                presolve: false,
                ..Default::default()
            })
            .unwrap();
        assert!((with.objective - without.objective).abs() < 1e-6);
    }

    /// A small set-cover family used by the engine-agreement tests below.
    fn cover_instance(n: usize, stride: usize) -> Model {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..n)
            .map(|i| {
                m.add_var(
                    format!("x{i}"),
                    VarKind::Binary,
                    0.0,
                    1.0,
                    1.0 + (i % 3) as f64,
                )
            })
            .collect();
        for i in 0..n {
            let terms = vec![
                (vars[i], 1.0),
                (vars[(i + stride) % n], 1.0),
                (vars[(i + 2 * stride + 1) % n], 1.0),
            ];
            m.add_constr(terms, Cmp::Ge, 1.0);
        }
        m
    }

    #[test]
    fn enriched_engine_agrees_with_plain_search() {
        // Cuts + reliability branching + batching must not change proven
        // optima — only how fast the proof goes.
        for (n, stride) in [(8, 2), (11, 3), (13, 4)] {
            let m = cover_instance(n, stride);
            let plain = m.solve_mip_with(&plain()).unwrap();
            let rich = m
                .solve_mip_with(&MipOptions {
                    cut_rounds: 4,
                    node_cut_depth: 2,
                    reliability: 2,
                    node_batch: 4,
                    threads: 2,
                    warm_basis: true,
                    ..Default::default()
                })
                .unwrap();
            assert_eq!(plain.status, SolveStatus::Optimal);
            assert_eq!(rich.status, SolveStatus::Optimal);
            assert!(
                (plain.objective - rich.objective).abs() < 1e-6,
                "n={n}: plain {} vs rich {}",
                plain.objective,
                rich.objective
            );
        }
    }

    #[test]
    fn parallel_pool_is_deterministic_across_thread_counts() {
        // Same node_batch, different thread counts: identical node count,
        // objective, and values — the pool's determinism contract.
        let m = cover_instance(13, 4);
        let solve_with_threads = |threads: usize| {
            m.solve_mip_with(&MipOptions {
                node_batch: 4,
                threads,
                warm_basis: true,
                ..Default::default()
            })
            .unwrap()
        };
        let one = solve_with_threads(1);
        let four = solve_with_threads(4);
        assert_eq!(one.nodes, four.nodes);
        assert_eq!(one.iterations, four.iterations);
        assert!((one.objective - four.objective).abs() == 0.0);
        assert_eq!(one.values, four.values);
    }

    #[test]
    fn zero_and_negative_objectives_prune_correctly() {
        // Optimal objective exactly 0 (the old relative-gap denominator's
        // worst case) and a negative-objective variant: both must close.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Binary, 0.0, 1.0, 1.0);
        let y = m.add_var("y", VarKind::Binary, 0.0, 1.0, -1.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        let s = m.solve_mip().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - (-1.0)).abs() < 1e-9);

        let mut m = Model::new(Sense::Minimize);
        let a = m.add_var("a", VarKind::Binary, 0.0, 1.0, 1.0);
        let b = m.add_var("b", VarKind::Binary, 0.0, 1.0, -1.0);
        m.add_constr(vec![(a, 1.0), (b, -1.0)], Cmp::Ge, 0.0);
        let s = m.solve_mip().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(s.objective.abs() < 1e-9, "obj = {}", s.objective);
    }
}
