//! Bounded-variable revised simplex over a sparse LU-factorized basis.
//!
//! Design notes:
//!
//! * Internally everything is a **minimization**; maximization models have
//!   their costs negated on entry and objective negated on exit.
//! * Every constraint row receives one slack variable turning it into an
//!   equality (`Le` → slack in `[0, ∞)`, `Ge` → slack in `(-∞, 0]`,
//!   `Eq` → slack fixed at `0`), so the basis always has full size `m`.
//! * Variables live between bounds `[lo, hi]` (possibly infinite on either
//!   side); nonbasic variables rest at a finite bound, or at zero when free.
//!   This avoids materializing the `x ≤ 1` rows of the paper's 0–1 programs,
//!   which keeps the tableau at "number of traffics" rows rather than
//!   "traffics + links" (crucial for the 15-router POP with 1980 traffics).
//! * Phase 1 adds artificial columns only on rows whose slack cannot absorb
//!   the initial residual; in the paper's programs that is typically the
//!   single coverage row, so phase 1 is short.
//! * The constraint matrix is read column-wise straight from the model's
//!   shared compressed sparse-column store ([`Model::cols`]); the tableau
//!   only materializes the slack/artificial columns it appends.
//! * The basis is a sparse LU factorization plus a product-form eta chain
//!   ([`crate::lu`]): FTRAN/BTRAN cost `O(nnz)` with zero-region skipping
//!   instead of the dense `O(m²)`, and the Gauss–Jordan `O(m³)`
//!   refactorization is replaced by a Markowitz-ordered sparse
//!   factorization driven by [`lu::Basis::should_refactorize`].
//! * Pricing is **devex** layered on candidate-list (partial) pricing: a
//!   full scan ranks eligible columns by `d²/w` under the devex reference
//!   weights and refills a candidate list, minor iterations price only
//!   that list, and the duals are updated incrementally per pivot (one
//!   hyper-sparse BTRAN of `e_r`) instead of a full BTRAN. Optimality is
//!   only declared after a full scan under exact duals. A long
//!   non-improving streak switches to Bland's rule (on exact duals),
//!   which guarantees termination on degenerate instances.

use crate::model::{Cmp, Model};
use crate::tol::{self, Tol};
use crate::{lu, scaling};
use crate::{Result, Solution, SolveStatus, SolverError};

/// A reusable simplex basis snapshot: the optimal basis of a previous
/// [`Model::solve_lp`]-family call, fed back through
/// [`Model::solve_lp_warm`] to re-optimize after a *perturbation* of the
/// same model (changed variable bounds, right-hand sides, or objective
/// coefficients).
///
/// The snapshot stores the variable states, the basic set, and the
/// basis factorization itself (sparse LU + eta chain — cheap to clone),
/// so a reuse installs the factorization directly instead of rebuilding
/// a dense inverse or refactorizing. Validity is judged per column: the snapshot
/// records a fingerprint of the *basic* structural columns, and reuse is
/// refused only when one of those columns' coefficients changed (or the
/// model's shape moved). Edits to columns outside the stored basis —
/// [`Model::set_constr`] on rows whose support is nonbasic — keep the
/// snapshot valid, because the rebuilt tableau re-reads every coefficient
/// from the model anyway. A refused (or singular) snapshot degrades to a
/// cold solve, never to garbage arithmetic.
#[derive(Debug, Clone)]
pub struct LpWarmStart {
    /// Structural variable count of the originating model.
    n: usize,
    /// Constraint count of the originating model.
    m: usize,
    /// Combined fingerprint of the basic structural columns
    /// ([`Model::basis_fingerprint`]).
    basic_fp: u64,
    /// Variable states over structurals + slacks (artificials excluded).
    state: Vec<VState>,
    /// Basic column per row.
    basic: Vec<u32>,
    /// The factorization (plus eta chain) captured with the basis, so a
    /// reuse installs it with a clone instead of a refactorization; flat
    /// storage keeps the clone a few `memcpy`s.
    basis: lu::Basis,
    /// Fingerprint of the equilibration scaling the snapshot was captured
    /// under ([`scaling::Scaling::fp`], or [`scaling::IDENTITY_FP`]). A
    /// basis is only valid in the scaled space it was optimal in, so a
    /// snapshot is refused when the re-solve's scaling differs. Scaling is
    /// derived from the matrix alone, so the rhs/bound/cost perturbations
    /// of the sweep chains keep the fingerprint stable.
    scale_fp: u64,
}

/// Iterations without objective improvement before switching to Bland.
const DEGEN_SWITCH: usize = 100_000;
/// Non-improving streak after which degenerate blocking bounds start
/// being shifted (recorded, restored and re-certified at optimality).
/// Deliberately a *last resort*, orders of magnitude above ordinary
/// degenerate streaks: on the paper's ~1000-row LP2 instances devex
/// pricing routinely sits at a vertex for a few hundred degenerate
/// pivots before escaping on its own, and an eager threshold turns that
/// pause into a shift storm — one bound expanded per stalled iteration —
/// whose inflated corridor then feeds the ratio test bump-sized fake
/// steps forever instead of letting the vertex resolve combinatorially.
const SHIFT_AFTER: usize = 20_000;
/// Devex weight ceiling: a new reference framework starts (all weights
/// reset to 1) when any weight outgrows it.
const DEVEX_RESET: f64 = 1e7;
/// The work-budget comparison runs only on iterations whose count masks
/// to zero (every 64th), so the anytime machinery costs one `&`/branch
/// per iteration on the hot path instead of a guaranteed compare — the
/// budget can be overshot by at most 63 iterations, which is inside the
/// deterministic contract (the overshoot depends only on the iteration
/// count, never on wall clock or thread count).
const WORK_CHECK_MASK: usize = 63;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VState {
    Basic,
    AtLower,
    AtUpper,
    /// Free variable (both bounds infinite) resting at value 0.
    FreeAtZero,
}

/// Per-solve preparation: the equilibration scaling decision and the
/// tolerance bundle derived from the (scaled) matrix magnitude. Built once
/// at solve entry and threaded through tableau construction, extraction,
/// and warm-start validation, so every path of one solve agrees on the
/// scaled space and on what "zero" means in it.
pub(crate) struct Prep {
    scaling: Option<scaling::Scaling>,
    /// Scaled structural columns; empty when the identity shortcut
    /// applies and the tableau borrows the model's store with no copy.
    scaled_cols: Vec<Vec<(u32, f64)>>,
    tol: Tol,
}

impl Prep {
    pub(crate) fn new(model: &Model) -> Self {
        let scaling = scaling::compute(model);
        let scaled_cols: Vec<Vec<(u32, f64)>> = match &scaling {
            Some(s) => model
                .cols
                .iter()
                .enumerate()
                .map(|(j, col)| {
                    col.iter()
                        .map(|&(r, a)| (r, a * s.row[r as usize] * s.col[j]))
                        .collect()
                })
                .collect(),
            None => Vec::new(),
        };
        let cols: &[Vec<(u32, f64)>] = if scaled_cols.is_empty() {
            &model.cols
        } else {
            &scaled_cols
        };
        // Matrix magnitude over the columns the tableau will see (slack
        // columns contribute coefficient 1, hence the implicit floor).
        let mut amax = 1.0f64;
        for col in cols {
            for &(_, a) in col {
                amax = amax.max(a.abs());
            }
        }
        // Scaled phase-2 cost magnitude.
        let mut cmax = 1.0f64;
        for (j, v) in model.vars.iter().enumerate() {
            let f = scaling.as_ref().map_or(1.0, |s| s.col[j]);
            cmax = cmax.max((v.cost * f).abs());
        }
        Prep {
            scaling,
            scaled_cols,
            tol: Tol::for_magnitudes(amax, cmax),
        }
    }

    fn cols<'a>(&'a self, model: &'a Model) -> &'a [Vec<(u32, f64)>] {
        if self.scaled_cols.is_empty() {
            &model.cols
        } else {
            &self.scaled_cols
        }
    }

    fn scale_fp(&self) -> u64 {
        self.scaling.as_ref().map_or(scaling::IDENTITY_FP, |s| s.fp)
    }

    /// Column substitution factor `c_j` (`x_j = c_j · y_j`); 1 when
    /// unscaled. An exact power of two, so applying and undoing it is
    /// rounding-error-free.
    fn col_factor(&self, j: usize) -> f64 {
        self.scaling.as_ref().map_or(1.0, |s| s.col[j])
    }

    /// Row factor `r_i` multiplying row `i` and its right-hand side.
    fn row_factor(&self, i: usize) -> f64 {
        self.scaling.as_ref().map_or(1.0, |s| s.row[i])
    }
}

/// Working state of one LP solve. Structural columns are borrowed from the
/// model's compressed sparse-column store; only slacks and artificials are
/// materialized here.
struct Tableau<'a> {
    m: usize,
    /// Structural column count.
    n: usize,
    /// Total columns: structurals + slacks + artificials.
    ncols: usize,
    /// Structural columns, shared with the model (and with presolve).
    struct_cols: &'a [Vec<(u32, f64)>],
    /// Slack columns (m of them) followed by any artificials — all
    /// single-entry, stored flat.
    extra_cols: Vec<(u32, f64)>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Right-hand side per row (after slack normalization).
    rhs: Vec<f64>,
    state: Vec<VState>,
    /// Basic column per row.
    basic: Vec<u32>,
    /// Value of the basic variable of each row.
    xb: Vec<f64>,
    /// Sparse LU factorization + eta chain of the basis.
    basis: lu::Basis,
    /// Devex reference weights per column.
    devex: Vec<f64>,
    /// Solve-kernel scratch (reused across FTRAN/BTRAN calls).
    scratch: Vec<f64>,
    /// Factorization workspace (reused across refactorizations).
    fscratch: lu::FactorScratch,
    iterations: usize,
    /// Basis refactorizations performed (each is a work unit: a
    /// refactorization costs a multiple of an ordinary iteration, and
    /// counting it keeps the work measure monotone through the
    /// numerical-recovery paths that refactorize without pivoting).
    refactorizations: u64,
    /// Cooperative work budget: the solve returns
    /// [`SolverError::Interrupted`] once `work_base + iterations +
    /// refactorizations` *exceeds* this (strict, so a budget exactly
    /// equal to a solve's total work lets it finish — the anytime
    /// reproduction guarantee hinges on that boundary). `u64::MAX`
    /// disables the check's trip (the comparison itself stays, amortized
    /// over [`WORK_CHECK_MASK`]-sized iteration blocks).
    work_budget: u64,
    /// Work already charged before this tableau was built (a failed warm
    /// attempt, or earlier branch-and-bound nodes), so budget comparisons
    /// and reported totals stay cumulative across fallbacks.
    work_base: u64,
    /// The solve's tolerance bundle (`opt` is re-derived per cost vector
    /// at each `optimize` entry; the rest is fixed at build time).
    tol: Tol,
    /// Bound shifts applied against degenerate stalls: `(col, lo, hi)`
    /// records the *original* bounds, restored by [`Tableau::finalize`]
    /// before the solution is certified.
    shifted: Vec<(usize, f64, f64)>,
    /// Per-column matrix magnitude `max_i |a_ij|` over the prepared
    /// (scaled) column, the per-column pricing floor scale. See
    /// [`Tableau::reduced_cost_scaled`].
    colmax: Vec<f64>,
}

impl<'a> Tableau<'a> {
    fn col(&self, j: usize) -> &[(u32, f64)] {
        if j < self.n {
            &self.struct_cols[j]
        } else {
            std::slice::from_ref(&self.extra_cols[j - self.n])
        }
    }

    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.state[j] {
            VState::AtLower => self.lo[j],
            VState::AtUpper => self.hi[j],
            VState::FreeAtZero => 0.0,
            VState::Basic => unreachable!("basic variable has no resting value"),
        }
    }

    /// Recomputes basic values from scratch: `x_B = B^{-1}(rhs - A_N x_N)`.
    fn recompute_basics(&mut self) {
        let mut r = self.rhs.clone();
        for j in 0..self.ncols {
            if self.state[j] == VState::Basic {
                continue;
            }
            let v = self.nonbasic_value(j);
            if v != 0.0 {
                for &(row, a) in self.col(j) {
                    r[row as usize] -= a * v;
                }
            }
        }
        self.basis.ftran(&mut r, &mut self.scratch);
        self.xb = r;
    }

    /// Cumulative deterministic work units charged to this solve so far:
    /// simplex iterations plus refactorizations, on top of whatever the
    /// caller already spent (`work_base`).
    fn work_spent(&self) -> u64 {
        self.work_base + self.iterations as u64 + self.refactorizations
    }

    /// Loop-head budget trip, shared by the primal and dual loops. Only
    /// iterations masking to zero pay the comparison (see
    /// [`WORK_CHECK_MASK`]). Strictly greater-than: a solve that lands
    /// exactly on its budget completes, so handing a solve its own
    /// measured work back as the budget reproduces it bitwise.
    fn work_exhausted(&self) -> Result<()> {
        if self.iterations & WORK_CHECK_MASK == 0 && self.work_spent() > self.work_budget {
            return Err(SolverError::Interrupted {
                work_spent: self.work_spent(),
            });
        }
        Ok(())
    }

    /// Rebuilds the basis factorization from the current basic set
    /// (allocation-free in steady state: storage and workspace are
    /// reused).
    fn refactorize(&mut self) -> Result<()> {
        self.refactorizations += 1;
        let fact = {
            let basis_cols: Vec<&[(u32, f64)]> = self
                .basic
                .iter()
                .map(|&c| {
                    let j = c as usize;
                    if j < self.n {
                        self.struct_cols[j].as_slice()
                    } else {
                        std::slice::from_ref(&self.extra_cols[j - self.n])
                    }
                })
                .collect();
            self.basis
                .refactorize_with(self.m, &basis_cols, &mut self.fscratch)
        };
        match fact {
            Ok(()) => {
                self.recompute_basics();
                Ok(())
            }
            // Singular basis: numerical breakdown.
            Err(lu::Singular) => Err(SolverError::IterationLimit {
                iterations: self.iterations,
            }),
        }
    }

    /// `w = B^{-1} A_j` for a sparse column `j` (hyper-sparse FTRAN: the
    /// entering column has a handful of nonzeros, and the triangular
    /// solves skip the regions it never reaches).
    fn ftran_into(&mut self, j: usize, x: &mut Vec<f64>) {
        x.clear();
        x.resize(self.m, 0.0);
        for &(row, a) in self.col(j) {
            x[row as usize] = a;
        }
        self.basis.ftran(x, &mut self.scratch);
    }

    /// `y = c_B' B^{-1}` for the given full cost vector. In the paper's
    /// programs only the `x_e` device columns carry cost, so the BTRAN
    /// right-hand side is sparse and the solve skips most of the factors.
    fn btran_duals_into(&mut self, cost: &[f64], cb: &mut Vec<f64>) {
        cb.clear();
        cb.resize(self.m, 0.0);
        for (r, &c) in self.basic.iter().enumerate() {
            let v = cost[c as usize];
            if v != 0.0 {
                cb[r] = v;
            }
        }
        self.basis.btran(cb, &mut self.scratch);
    }

    /// Row `r` of the basis inverse (`e_r' B^{-1}`) via a hyper-sparse
    /// BTRAN of the unit vector; drives the incremental dual update, the
    /// dual ratio test, and the devex weight propagation.
    fn binv_row_into(&mut self, r: usize, e: &mut Vec<f64>) {
        e.clear();
        e.resize(self.m, 0.0);
        e[r] = 1.0;
        self.basis.btran(e, &mut self.scratch);
    }

    fn reduced_cost(&self, j: usize, cost: &[f64], y: &[f64]) -> f64 {
        let mut d = cost[j];
        for &(row, a) in self.col(j) {
            d -= y[row as usize] * a;
        }
        d
    }

    /// Reduced cost of column `j` together with its eligibility epsilon.
    ///
    /// The epsilon is `OPT_REL` times the magnitude sum of the very dot
    /// product that produced `d` — `|c_j| + Σ|y_r·a_rj|` — because that is
    /// the scale of `d`'s rounding error. Since `|d|` can never exceed
    /// that sum, the test `|d| > eps` is exactly "is `d` meaningful at its
    /// own computation's scale": a zero-cost column crossing huge duals is
    /// *not* declared improving off cancellation noise (a fixed per-cost
    /// threshold does exactly that, and the resulting phantom pivots stall
    /// the solve on the paper's 1000-row instances). The magnitude is
    /// floored at the column's own matrix magnitude `colmax_j` — the
    /// per-column analogue of the global pivot threshold `tol.pivot`.
    /// Under an exact column rescaling the cost, the coefficients and
    /// the reduced cost of a column all scale together, so this floor
    /// keeps eligibility scale-invariant; what it rejects is a reduced
    /// cost that is sub-`OPT_REL` *at the column's own working scale*,
    /// whose pivots move the objective by certification-invisible
    /// amounts. Admitting such columns is pure churn, measured at +24%
    /// iterations on the 20-router LP2 stage. (A global floor — per-cost
    /// or unit — is the wrong shape: it blinds pricing on columns whose
    /// whole working scale legitimately sits below it, which is a wrong
    /// answer on the rescaled rational-reference suite.)
    fn reduced_cost_scaled(&self, j: usize, cost: &[f64], y: &[f64]) -> (f64, f64) {
        let mut d = cost[j];
        let mut mag = cost[j].abs();
        for &(row, a) in self.col(j) {
            let t = y[row as usize] * a;
            d -= t;
            mag += t.abs();
        }
        (d, tol::OPT_REL * mag.max(self.colmax[j]))
    }

    /// Is nonbasic column `j` an attractive entering candidate at reduced
    /// cost `d`?
    fn eligible(&self, j: usize, d: f64, eps: f64) -> bool {
        match self.state[j] {
            VState::AtLower => d < -eps,
            VState::AtUpper => d > eps,
            VState::FreeAtZero => d.abs() > eps,
            VState::Basic => false,
        }
    }

    /// Devex pricing score: squared reduced cost over the reference
    /// weight (an approximation of the steepest-edge criterion that costs
    /// one multiply per column).
    fn devex_score(&self, j: usize, d: f64) -> f64 {
        d * d / self.devex[j]
    }

    /// Full pricing pass: returns the entering column with the best devex
    /// score and refills `candidates` with the most attractive eligible
    /// columns for the following minor iterations.
    fn price_full(
        &self,
        cost: &[f64],
        y: &[f64],
        candidates: &mut Vec<u32>,
        eps_cache: &mut [f64],
    ) -> Option<(usize, f64, f64)> {
        candidates.clear();
        // (score, col, d, eps) of every eligible column.
        let mut eligible: Vec<(f64, u32, f64, f64)> = Vec::new();
        for j in 0..self.ncols {
            if self.state[j] == VState::Basic || self.lo[j] == self.hi[j] {
                continue;
            }
            let (d, eps) = self.reduced_cost_scaled(j, cost, y);
            eps_cache[j] = eps;
            if self.eligible(j, d, eps) {
                eligible.push((self.devex_score(j, d), j as u32, d, eps));
            }
        }
        if eligible.is_empty() {
            return None;
        }
        // Candidate list: the most attractive columns, sized so minor
        // iterations stay cheap but a refill is rare.
        let k = (self.ncols / 20).clamp(10, 100);
        eligible
            .sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        eligible.truncate(k);
        candidates.extend(eligible.iter().map(|&(_, j, _, _)| j));
        let (_, j, d, eps) = eligible[0];
        Some((j as usize, d, eps))
    }

    /// Minor pricing pass: best eligible column among `candidates` only,
    /// re-pricing them under the current duals and devex weights. The
    /// eligibility epsilon is the one cached by the full pass that
    /// admitted the candidate — the duals drift only slightly between
    /// refactorizations, the epsilon only needs order-of-magnitude
    /// accuracy, and optimality is in any case only ever declared off a
    /// full pass under exact duals and freshly computed epsilons. Skipping
    /// the magnitude accumulation keeps the minor-iteration dot product —
    /// the hottest loop in the solver — at one multiply-subtract per
    /// nonzero.
    fn price_candidates(
        &self,
        cost: &[f64],
        y: &[f64],
        candidates: &[u32],
        eps_cache: &[f64],
    ) -> Option<(usize, f64, f64)> {
        let mut best: Option<(f64, usize, f64, f64)> = None;
        for &j32 in candidates {
            let j = j32 as usize;
            if self.state[j] == VState::Basic || self.lo[j] == self.hi[j] {
                continue;
            }
            let (d, eps) = (self.reduced_cost(j, cost, y), eps_cache[j]);
            if self.eligible(j, d, eps) {
                let s = self.devex_score(j, d);
                if best.is_none_or(|(bs, _, _, _)| s > bs) {
                    best = Some((s, j, d, eps));
                }
            }
        }
        best.map(|(_, j, d, eps)| (j, d, eps))
    }

    /// Runs primal simplex iterations with the given costs until optimal.
    /// Returns `Err(Unbounded)` when a ray is found.
    ///
    /// Pricing is devex over candidate-list (partial) pricing with
    /// incrementally updated duals: a full scan refills the list of the
    /// most attractive columns, minor iterations price only that list,
    /// and the duals are updated per pivot from one hyper-sparse BTRAN of
    /// `e_r` instead of a full BTRAN. Optimality is only ever declared
    /// after a full scan under freshly recomputed exact duals, so the
    /// incremental drift can cost extra iterations but never a wrong
    /// answer. After a long non-improving streak the loop falls back to
    /// Bland's rule on exact duals, which guarantees termination on
    /// degenerate instances.
    fn optimize(&mut self, cost: &[f64], iter_limit: usize) -> Result<()> {
        let m = self.m;
        // The optimality tolerance is kept per priced column, at the scale
        // of each column's own reduced-cost dot product (see
        // [`Tableau::reduced_cost_scaled`]); `tol.opt` only retains the
        // coarse global value for components that want a single number.
        let cmax = cost.iter().fold(1.0f64, |acc, &c| acc.max(c.abs()));
        self.tol.opt = tol::OPT_REL * cmax;
        if self.colmax.len() != self.ncols {
            self.colmax = (0..self.ncols)
                .map(|j| self.col(j).iter().fold(0.0f64, |a, &(_, v)| a.max(v.abs())))
                .collect();
        }
        let mut non_improving = 0usize;
        let mut shift_budget = (m + 16).saturating_sub(self.shifted.len());
        let mut y = Vec::new();
        self.btran_duals_into(cost, &mut y);
        // Duals drift as incremental updates accumulate; `y_exact` tracks
        // whether `y` was recomputed from the factorization since the
        // last pivot.
        let mut y_exact = true;
        let mut candidates: Vec<u32> = Vec::new();
        let mut eps_cache: Vec<f64> = vec![0.0; self.ncols];
        // Kernel result buffers, reused across iterations.
        let mut w: Vec<f64> = Vec::new();
        let mut rho: Vec<f64> = Vec::new();
        let mut bumps: Vec<(usize, f64)> = Vec::new();
        // Blocking rows gathered by ratio-test pass 1: (row, strict
        // ratio, |pivot|, hits_upper). Pass 2 scans this (short) list
        // instead of re-sweeping the dense FTRAN result.
        let mut blockers: Vec<(u32, f64, f64, bool)> = Vec::new();

        loop {
            if self.iterations >= iter_limit {
                return Err(SolverError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            self.work_exhausted()?;
            self.iterations += 1;
            if self.basis.should_refactorize() {
                self.refactorize()?;
                // Exact duals off the fresh factorization; the candidate
                // list survives (it is re-priced every minor iteration).
                self.btran_duals_into(cost, &mut y);
                y_exact = true;
            }

            let use_bland = non_improving >= DEGEN_SWITCH;

            // Pricing: pick the entering column.
            let entering: Option<(usize, f64, f64)> = if use_bland {
                // Bland's rule: lowest-index eligible column under exact
                // duals (anti-cycling needs correct signs).
                if !y_exact {
                    self.btran_duals_into(cost, &mut y);
                    y_exact = true;
                }
                let mut found = None;
                for j in 0..self.ncols {
                    if self.state[j] == VState::Basic || self.lo[j] == self.hi[j] {
                        continue;
                    }
                    let (d, eps) = self.reduced_cost_scaled(j, cost, &y);
                    if self.eligible(j, d, eps) {
                        found = Some((j, d, eps));
                        break;
                    }
                }
                found
            } else {
                match self.price_candidates(cost, &y, &candidates, &eps_cache) {
                    Some(e) => Some(e),
                    None => {
                        // Candidate list exhausted: refresh the duals if
                        // they drifted, then do a full pricing pass.
                        if !y_exact {
                            self.btran_duals_into(cost, &mut y);
                            y_exact = true;
                        }
                        self.price_full(cost, &y, &mut candidates, &mut eps_cache)
                    }
                }
            };

            let Some((j, dj, eps_j)) = entering else {
                debug_assert!(y_exact, "optimality must be certified with exact duals");
                return Ok(()); // optimal
            };

            // Direction of movement of the entering variable.
            let sigma = match self.state[j] {
                VState::AtLower => 1.0,
                VState::AtUpper => -1.0,
                VState::FreeAtZero => {
                    if dj < 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                }
                VState::Basic => unreachable!(),
            };

            self.ftran_into(j, &mut w);

            // Two-pass Harris ratio test. x_B(t) = x_B - sigma·t·w; the
            // entering moves by sigma·t from its resting value, up to its
            // opposite bound. Rows where the entering column's FTRAN is
            // zero cannot block and are skipped outright (the common case
            // on sparse instances).
            //
            // Pass 1 computes the strict minimum ratio `t_min` over the
            // admissible blocking rows. Pass 2 picks the leaving row as
            // the largest-|pivot| row whose strict ratio sits inside a
            // tie band just above `t_min` — near-degenerate ties are
            // where a textbook min-ratio rule is forced onto microscopic
            // pivots that corrupt the basis on the ~1000-row instances of
            // the paper's Figure 8. The band is
            // `OPT_REL + FEAS_REL · min(t_min, 1)`: a feasibility-relative
            // fraction of the step actually taken (capped at unit step so
            // long free rides don't widen it), seeded by `OPT_REL` so
            // exactly-degenerate ties (t_min = 0) still group. **The step
            // taken is `t_min`**, so no basic variable is ever pushed
            // beyond its bound — only the chosen leaving variable snaps
            // onto its bound from a band-bounded distance of at most
            // `tie · |rate|`, feasibility-sized by construction. A wider
            // admission window (every row within its own feasibility
            // relaxation of `t_min`) was measured at +24% iterations on
            // the 20-router LP2 stage: it admits far-off rows whose large
            // pivots win the magnitude contest, and the resulting pivot
            // trajectory wanders — the band keeps selection local to the
            // tie while the equilibration scaling (PR 6) keeps ratio
            // space well-conditioned enough for a band of this shape.
            let own_range = self.hi[j] - self.lo[j]; // may be +inf
            let mut t_min = f64::INFINITY;
            blockers.clear();
            for (r, &wr) in w.iter().enumerate() {
                if wr == 0.0 {
                    continue;
                }
                let rate = sigma * wr;
                let bcol = self.basic[r] as usize;
                if rate > self.tol.pivot {
                    let lob = self.lo[bcol];
                    if lob.is_finite() {
                        let t = ((self.xb[r] - lob) / rate).max(0.0);
                        t_min = t_min.min(t);
                        blockers.push((r as u32, t, wr.abs(), false));
                    }
                } else if rate < -self.tol.pivot {
                    let hib = self.hi[bcol];
                    if hib.is_finite() {
                        let t = ((hib - self.xb[r]) / (-rate)).max(0.0);
                        t_min = t_min.min(t);
                        blockers.push((r as u32, t, wr.abs(), true));
                    }
                }
            }

            if own_range.is_finite() && own_range <= t_min + tol::TIE_REL * (1.0 + own_range) {
                // Bound flip: the entering variable runs to its other
                // bound before any basic variable strictly blocks.
                for r in 0..m {
                    self.xb[r] -= sigma * own_range * w[r];
                }
                self.state[j] = match self.state[j] {
                    VState::AtLower => VState::AtUpper,
                    VState::AtUpper => VState::AtLower,
                    s => s, // free vars have infinite range; unreachable
                };
                // Progress bookkeeping is judged at the *objective's*
                // scale (`tol.opt`), not the entering column's own
                // epsilon: a pivot can be legitimately eligible at a
                // 2^-40-scale dot product yet improve the objective by an
                // amount meaningless against its magnitude — counting
                // such creep as progress keeps the degeneracy escapes
                // (shifts, Bland) from ever firing and the solve loops at
                // the iteration limit.
                if dj * sigma * own_range < -self.tol.opt.max(eps_j) {
                    non_improving = 0;
                } else {
                    non_improving += 1;
                }
                continue;
            }
            if t_min.is_infinite() {
                return Err(SolverError::Unbounded);
            }

            // Pass 2: largest |pivot| within the tie band above t_min.
            let tie = tol::OPT_REL + tol::FEAS_REL * t_min.min(1.0);
            let mut leave: Option<(usize, bool)> = None; // (row, hits_upper)
            let mut leave_mag = 0.0f64;
            for &(r, t, mag, hits_upper) in &blockers {
                if t <= t_min + tie && mag > leave_mag {
                    leave = Some((r as usize, hits_upper));
                    leave_mag = mag;
                }
            }
            let t_step = t_min;
            let Some((r, hits_upper)) = leave else {
                // Numerical corner (every relaxed-blocking row lost its
                // strict qualification): rebuild the factorization and
                // retry the iteration with accurate basic values.
                self.refactorize()?;
                self.btran_duals_into(cost, &mut y);
                y_exact = true;
                continue;
            };

            // Degenerate stall: after a long non-improving streak, shift
            // the blocking bound outward by a deterministic
            // feasibility-sized amount instead of pivoting in place. The
            // original bounds are recorded; `finalize` restores them and
            // re-certifies the optimum against the true bounds.
            if t_step <= 0.0 && non_improving >= SHIFT_AFTER && shift_budget > 0 {
                let bcol = self.basic[r] as usize;
                if !self.shifted.iter().any(|&(c, _, _)| c == bcol) {
                    self.shifted.push((bcol, self.lo[bcol], self.hi[bcol]));
                }
                let bound = if hits_upper {
                    self.hi[bcol]
                } else {
                    self.lo[bcol]
                };
                // Deterministic per-row variation breaks the exact ties
                // that caused the stall in the first place.
                let bump = self.tol.feas_eps(bound) * (1.0 + ((r * 7919) % 13) as f64);
                if hits_upper {
                    self.hi[bcol] += bump;
                } else {
                    self.lo[bcol] -= bump;
                }
                shift_budget -= 1;
                non_improving += 1;
                continue;
            }

            let leaving = self.basic[r] as usize;
            let enter_val = match self.state[j] {
                VState::AtLower => self.lo[j] + sigma * t_step,
                VState::AtUpper => self.hi[j] + sigma * t_step,
                VState::FreeAtZero => sigma * t_step,
                VState::Basic => unreachable!(),
            };
            for i in 0..m {
                if i != r {
                    self.xb[i] -= sigma * t_step * w[i];
                }
            }
            self.xb[r] = enter_val;
            self.state[leaving] = if hits_upper {
                VState::AtUpper
            } else {
                VState::AtLower
            };
            self.state[j] = VState::Basic;
            self.basic[r] = j as u32;
            // Incremental dual update: y' = y + (d_j / w_r) e_r'B⁻¹,
            // with ρ = row r of the *pre-pivot* inverse.
            let theta = dj / w[r];
            self.binv_row_into(r, &mut rho);

            // Devex weight propagation through the pivot row: the
            // entering column's reference weight scales onto the
            // candidate list (partial devex — the full nonbasic
            // sweep would cost a pricing pass per pivot) and onto
            // the leaving variable.
            let alpha_q = w[r];
            let gamma_q = self.devex[j].max(1.0);
            bumps.clear();
            for &jc32 in &candidates {
                let jc = jc32 as usize;
                if jc == j || self.state[jc] == VState::Basic {
                    continue;
                }
                let mut alpha = 0.0;
                for &(row, a) in self.col(jc) {
                    alpha += rho[row as usize] * a;
                }
                if alpha != 0.0 {
                    let cand = (alpha / alpha_q) * (alpha / alpha_q) * gamma_q;
                    bumps.push((jc, cand));
                }
            }
            // Only weights raised by this pivot can newly exceed
            // the reset cap, so the overflow check stays O(|bumps|)
            // instead of sweeping every column.
            let mut overflow = false;
            for &(jc, cand) in &bumps {
                if cand > self.devex[jc] {
                    self.devex[jc] = cand;
                    overflow |= cand > DEVEX_RESET;
                }
            }
            self.devex[leaving] = (gamma_q / (alpha_q * alpha_q)).max(1.0);
            overflow |= self.devex[leaving] > DEVEX_RESET;
            if overflow {
                // New reference framework.
                for wj in self.devex.iter_mut() {
                    *wj = 1.0;
                }
            }

            let refactorized = self.update_basis(r, &w)?;
            if refactorized {
                // The incremental formula no longer applies to the
                // rebuilt factorization.
                self.btran_duals_into(cost, &mut y);
                y_exact = true;
            } else {
                for (yi, &rc) in y.iter_mut().zip(&rho) {
                    *yi += theta * rc;
                }
                y_exact = false;
            }

            // Degeneracy bookkeeping for the Bland switch: the pivot
            // changed the objective by exactly d_j · Δx_j, so a full
            // objective evaluation per iteration is unnecessary — only
            // "did this pivot make progress" matters here, and degenerate
            // pivots have t_step = 0.
            // Same objective-scale progress rule as the bound-flip branch
            // above: eligibility is per-column, progress is global.
            if dj * sigma * t_step < -self.tol.opt.max(eps_j) {
                non_improving = 0;
            } else {
                non_improving += 1;
            }
        }
    }

    /// Snapshots the current basis for warm-starting a perturbed re-solve.
    /// Returns `None` when an artificial column is still basic (rare:
    /// degenerate phase-1 leftovers) — such a basis is not expressible over
    /// structurals + slacks alone.
    fn capture(&self, model: &Model, prep: &Prep) -> Option<LpWarmStart> {
        let n = self.n;
        let nm = n + self.m;
        if self.basic.iter().any(|&c| (c as usize) >= nm) {
            return None;
        }
        Some(LpWarmStart {
            n,
            m: self.m,
            basic_fp: model.basis_fingerprint(&self.basic),
            state: self.state[..nm].to_vec(),
            basic: self.basic.clone(),
            basis: self.basis.clone(),
            scale_fp: prep.scale_fp(),
        })
    }

    /// Dual simplex: starting from a dual-feasible basis whose basic
    /// values may violate their bounds (the state right after a bound or
    /// RHS perturbation), pivots until primal feasibility is restored.
    ///
    /// Uses the bounded-variable dual ratio test with bound flips. The
    /// duals are recomputed exactly every iteration (cheap: `c_B` is
    /// sparse in the paper's programs, so the BTRAN is hyper-sparse).
    /// Returns `Err(Infeasible)` when a violated row admits no entering
    /// column — the standard dual-simplex infeasibility certificate.
    fn dual_reoptimize(&mut self, cost: &[f64], iter_limit: usize) -> Result<()> {
        let m = self.m;
        // A healthy warm start repairs feasibility in a handful of pivots
        // (the perturbation touched one bound or one right-hand side), so
        // the dual phase gets a budget proportional to the basis size, far
        // below the global limit: a degenerate stall is cheaper to abandon
        // to the cold fallback than to grind through.
        let budget = iter_limit.min(self.iterations + 4 * m + 100);
        let mut rho: Vec<f64> = Vec::new();
        let mut y: Vec<f64> = Vec::new();
        let mut w: Vec<f64> = Vec::new();
        loop {
            if self.iterations >= budget {
                return Err(SolverError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            self.work_exhausted()?;
            self.iterations += 1;
            if self.basis.should_refactorize() {
                self.refactorize()?;
            }

            // Leaving row: the basic variable with the largest bound
            // violation (relative to its bound's feasibility epsilon);
            // `below` records which bound it will exit at.
            let mut leave: Option<(usize, f64, bool)> = None;
            for r in 0..m {
                let j = self.basic[r] as usize;
                if self.xb[r] < self.lo[j] - self.tol.feas_eps(self.lo[j]) {
                    let v = self.lo[j] - self.xb[r];
                    if leave.is_none_or(|(_, bv, _)| v > bv) {
                        leave = Some((r, v, true));
                    }
                } else if self.xb[r] > self.hi[j] + self.tol.feas_eps(self.hi[j]) {
                    let v = self.xb[r] - self.hi[j];
                    if leave.is_none_or(|(_, bv, _)| v > bv) {
                        leave = Some((r, v, false));
                    }
                }
            }
            let Some((r, _, below)) = leave else {
                return Ok(()); // primal feasible
            };

            self.binv_row_into(r, &mut rho);
            self.btran_duals_into(cost, &mut y);

            // Entering column: bounded dual ratio test. The leaving basic
            // moves toward its violated bound; xb[r] changes by
            // `-alpha_rj · Δx_j`, so eligibility is a sign condition on
            // `alpha_rj` and the entering variable's resting state.
            let mut best: Option<(f64, f64, usize)> = None; // (ratio, |alpha|, col)
            for j in 0..self.ncols {
                if self.state[j] == VState::Basic || self.lo[j] == self.hi[j] {
                    continue;
                }
                let mut alpha = 0.0;
                for &(row, a) in self.col(j) {
                    alpha += rho[row as usize] * a;
                }
                if alpha.abs() <= self.tol.pivot {
                    continue;
                }
                // Required movement direction of the entering variable.
                let dx_sign = if below {
                    -alpha.signum()
                } else {
                    alpha.signum()
                };
                let ok = match self.state[j] {
                    VState::AtLower => dx_sign > 0.0,
                    VState::AtUpper => dx_sign < 0.0,
                    VState::FreeAtZero => true,
                    VState::Basic => unreachable!(),
                };
                if !ok {
                    continue;
                }
                let d = self.reduced_cost(j, cost, &y);
                let ratio = d.abs() / alpha.abs();
                let better = match best {
                    None => true,
                    Some((br, ba, _)) => {
                        let tie = tol::TIE_REL * (1.0 + br.abs());
                        ratio < br - tie || ((ratio - br).abs() <= tie && alpha.abs() > ba)
                    }
                };
                if better {
                    best = Some((ratio, alpha.abs(), j));
                }
            }
            let Some((_, _, j)) = best else {
                // No direction can push the violated basic toward its
                // bound: the perturbed LP is infeasible.
                return Err(SolverError::Infeasible);
            };

            self.ftran_into(j, &mut w);
            let wr = w[r];
            if wr.abs() < self.tol.pivot {
                // The FTRAN disagrees with the row estimate — numerically
                // dangerous; rebuild the factorization and retry.
                self.refactorize()?;
                continue;
            }
            let leaving = self.basic[r] as usize;
            let target = if below {
                self.lo[leaving]
            } else {
                self.hi[leaving]
            };
            let dx = (self.xb[r] - target) / wr;

            // Bound flip: the entering variable would overshoot its own
            // opposite bound before the leaving one reaches `target`. Move
            // it bound-to-bound and pick a new pivot for this row.
            let range = self.hi[j] - self.lo[j];
            if range.is_finite() && dx.abs() > range + tol::TIE_REL * (1.0 + range) {
                let step = range.copysign(dx);
                for i in 0..m {
                    self.xb[i] -= w[i] * step;
                }
                self.state[j] = match self.state[j] {
                    VState::AtLower => VState::AtUpper,
                    VState::AtUpper => VState::AtLower,
                    s => s,
                };
                continue;
            }

            let enter_val = self.nonbasic_value(j) + dx;
            for i in 0..m {
                if i != r {
                    self.xb[i] -= w[i] * dx;
                }
            }
            self.xb[r] = enter_val;
            self.state[leaving] = if below {
                VState::AtLower
            } else {
                VState::AtUpper
            };
            self.state[j] = VState::Basic;
            self.basic[r] = j as u32;
            self.update_basis(r, &w)?;
        }
    }

    /// Applies the basis change for a pivot on row `r` with FTRAN column
    /// `w`: a product-form eta when the pivot is sound, a refactorization
    /// otherwise. Returns whether it refactorized (the caller's
    /// incremental dual update is then invalid).
    fn update_basis(&mut self, r: usize, w: &[f64]) -> Result<bool> {
        if w[r].abs() < self.tol.pivot {
            // Numerically dangerous pivot slipped through: refactorize.
            self.refactorize()?;
            return Ok(true);
        }
        match self.basis.update(r, w) {
            Ok(()) => Ok(false),
            Err(lu::Singular) => {
                self.refactorize()?;
                Ok(true)
            }
        }
    }

    /// Restores any bounds expanded against degenerate stalls and rebuilds
    /// the basic values against the true bounds. Returns whether any shift
    /// was undone.
    fn restore_shifts(&mut self) -> bool {
        if self.shifted.is_empty() {
            return false;
        }
        for &(j, l, h) in &self.shifted {
            self.lo[j] = l;
            self.hi[j] = h;
        }
        self.shifted.clear();
        // Nonbasic variables may have been resting on a shifted bound.
        self.recompute_basics();
        true
    }

    /// Whether any basic variable violates its bounds beyond the
    /// feasibility tolerance.
    fn primal_infeasible(&self) -> bool {
        (0..self.m).any(|r| {
            let j = self.basic[r] as usize;
            self.xb[r] < self.lo[j] - self.tol.feas_eps(self.lo[j])
                || self.xb[r] > self.hi[j] + self.tol.feas_eps(self.hi[j])
        })
    }

    /// Post-optimality shift lifecycle: undo the recorded bound shifts,
    /// and when that leaves a basic variable outside its true bounds,
    /// repair with the dual simplex (the basis is dual feasible at the
    /// shifted optimum) and re-optimize — which may shift again, hence the
    /// bounded loop. On exit the tableau is optimal for the *original*
    /// bounds or a typed error is returned.
    fn finalize(&mut self, cost: &[f64], iter_limit: usize) -> Result<()> {
        for _ in 0..4 {
            self.restore_shifts();
            if !self.primal_infeasible() {
                return Ok(());
            }
            self.dual_reoptimize(cost, iter_limit)?;
            self.optimize(cost, iter_limit)?;
        }
        self.restore_shifts();
        if self.primal_infeasible() {
            let mut worst = 0.0f64;
            for r in 0..self.m {
                let j = self.basic[r] as usize;
                let v = (self.lo[j] - self.xb[r]).max(self.xb[r] - self.hi[j]);
                worst = worst.max(v);
            }
            return Err(SolverError::Numerical {
                residual: worst,
                tolerance: self.tol.feas,
            });
        }
        Ok(())
    }

    /// The accuracy monitor's measurement: the largest **relative** row
    /// residual over every tableau column (artificials included):
    /// `|Σ a_ij x_j − b_i| / (|b_i| + Σ|a_ij x_j| + guard)` with
    /// `guard = NOISE_REL · amax · max|x_j|`.
    ///
    /// The denominator carries no absolute `1 +` floor — that floor hides
    /// a 100%-violated row whose data sits entirely below 1 (a down-scaled
    /// `−2^-29·x ≥ 2^-28` reads satisfied under any absolute cutoff). The
    /// `guard` term replaces it with a noise floor tied to the magnitudes
    /// actually computed: a flow-conservation row whose variables all sit
    /// at roundoff (`act ≈ 1e-16`, `den ≈ 1e-15`) is cancellation noise
    /// from O(1) basis solves, not a 10% violation, and the guard scales
    /// with that O(1) solution magnitude.
    fn residual_max(&self) -> f64 {
        let m = self.m;
        let mut act = vec![0.0f64; m];
        let mut den = vec![0.0f64; m];
        let mut xmax = 0.0f64;
        let mut add = |col: &[(u32, f64)], v: f64| {
            if v != 0.0 {
                for &(row, a) in col {
                    act[row as usize] += a * v;
                    den[row as usize] += (a * v).abs();
                }
            }
        };
        for j in 0..self.ncols {
            if self.state[j] == VState::Basic {
                continue;
            }
            let v = self.nonbasic_value(j);
            xmax = xmax.max(v.abs());
            add(self.col(j), v);
        }
        for (r, &c) in self.basic.iter().enumerate() {
            xmax = xmax.max(self.xb[r].abs());
            add(self.col(c as usize), self.xb[r]);
        }
        let guard = tol::NOISE_REL * self.tol.amax * xmax;
        let mut worst = 0.0f64;
        for r in 0..m {
            let d = self.rhs[r].abs() + den[r] + guard;
            if d > 0.0 {
                worst = worst.max((act[r] - self.rhs[r]).abs() / d);
            }
        }
        worst
    }

    /// The feasibility monitor's measurement: the largest relative row
    /// violation over structural and slack columns only, so whatever an
    /// artificial still absorbs counts as violation.
    ///
    /// The violation is judged against the row's **potential** activity
    /// `Σ|a_rj| · max(|x_j|, |lo_j|, |hi_j|)` (finite bounds), plus the
    /// right-hand-side magnitude and a computation-noise term. That
    /// denominator asks the scale-free question "is this violation a
    /// meaningful fraction of what the row's variables can express?" — a
    /// row reading `8192·y = −2^-18` with `y ∈ [0, 2^-29]` is ~25%
    /// violated at its own scale even though every absolute quantity
    /// involved sits far below any fixed cutoff. A row whose variables
    /// rest at roundoff noise from O(1) basis solves is *not* falsely
    /// flagged: those variables' finite bounds are O(1), so the potential
    /// activity keeps the denominator at the row's true working scale.
    /// (No global-magnitude noise term here — on wide-scale instances it
    /// would drown exactly the small rows this measure exists to see.)
    fn feasibility_gap(&self) -> f64 {
        let m = self.m;
        let real = self.n + m;
        // Current value of every structural and slack column.
        let mut val = vec![0.0f64; real];
        for (j, v) in val.iter_mut().enumerate() {
            if self.state[j] != VState::Basic {
                *v = self.nonbasic_value(j);
            }
        }
        for (r, &c) in self.basic.iter().enumerate() {
            if (c as usize) < real {
                val[c as usize] = self.xb[r];
            }
        }
        let mut act = vec![0.0f64; m];
        let mut pot = vec![0.0f64; m];
        for (j, &v) in val.iter().enumerate() {
            let mut big = v.abs();
            if self.lo[j].is_finite() {
                big = big.max(self.lo[j].abs());
            }
            if self.hi[j].is_finite() {
                big = big.max(self.hi[j].abs());
            }
            for &(row, a) in self.col(j) {
                act[row as usize] += a * v;
                pot[row as usize] += a.abs() * big;
            }
        }
        let mut worst = 0.0f64;
        for r in 0..m {
            let d = self.rhs[r].abs() + pot[r];
            if d > 0.0 {
                worst = worst.max((act[r] - self.rhs[r]).abs() / d);
            }
        }
        worst
    }

    /// Routes the final feasibility check through the monitor: a certified
    /// optimum whose rows are violated beyond the scale-relative contract
    /// surfaces as a typed error carrying the measured gap, never as a
    /// silently wrong answer.
    fn verify_feasible(&self) -> Result<()> {
        let gap = self.feasibility_gap();
        if gap <= self.tol.feas {
            Ok(())
        } else {
            Err(SolverError::Numerical {
                residual: gap,
                tolerance: self.tol.feas,
            })
        }
    }

    /// Certifies the final solution through the accuracy monitor. A
    /// residual above the threshold triggers a refactorization (fresh
    /// factors, exact basic values); if that is not enough, the Markowitz
    /// pivot tolerance is tightened and the factorization rebuilt again,
    /// trading fill-in for stability. Only when the monitor still refuses
    /// does the solver return a typed error — never a silently wrong
    /// answer.
    fn certify(&mut self) -> Result<()> {
        let mut res = self.residual_max();
        if res <= self.tol.residual {
            return Ok(());
        }
        loop {
            self.refactorize()?;
            res = self.residual_max();
            if res <= self.tol.residual {
                return Ok(());
            }
            if !self.basis.tighten_pivot_tol() {
                break;
            }
        }
        Err(SolverError::Numerical {
            residual: res,
            tolerance: self.tol.residual,
        })
    }
}

/// Builds the standard form for `model` in `prep`'s scaled space,
/// choosing initial nonbasic values and installing artificials where
/// needed; returns the tableau plus the set of artificial columns.
///
/// Under scaling the substitution is `x_j = c_j · y_j` with row `i`
/// multiplied by `r_i`: bounds divide by `c_j`, costs multiply by `c_j`,
/// right-hand sides multiply by `r_i` — all exact powers of two. Slack
/// bounds (`[0,∞)`, `(−∞,0]`, `[0,0]`) are invariant under positive
/// scaling, so slack columns keep coefficient 1 in scaled space too.
fn build<'a>(model: &'a Model, prep: &'a Prep) -> Result<(Tableau<'a>, Vec<usize>)> {
    let n = model.vars.len();
    let m = model.constrs.len();
    let mut lo: Vec<f64> = model
        .vars
        .iter()
        .enumerate()
        .map(|(j, v)| v.lo / prep.col_factor(j))
        .collect();
    let mut hi: Vec<f64> = model
        .vars
        .iter()
        .enumerate()
        .map(|(j, v)| v.hi / prep.col_factor(j))
        .collect();
    let mut rhs = vec![0.0; m];
    for (r, c) in model.constrs.iter().enumerate() {
        rhs[r] = c.rhs * prep.row_factor(r);
    }
    let struct_cols = prep.cols(model);

    // Slacks.
    let mut extra_cols: Vec<(u32, f64)> = Vec::with_capacity(m);
    for (r, c) in model.constrs.iter().enumerate() {
        extra_cols.push((r as u32, 1.0));
        match c.cmp {
            Cmp::Le => {
                lo.push(0.0);
                hi.push(f64::INFINITY);
            }
            Cmp::Ge => {
                lo.push(f64::NEG_INFINITY);
                hi.push(0.0);
            }
            Cmp::Eq => {
                lo.push(0.0);
                hi.push(0.0);
            }
        }
    }

    // Initial nonbasic states for structurals: rest at the finite bound
    // closest to zero, or free-at-zero.
    let mut state = Vec::with_capacity(n + m);
    for j in 0..n {
        let s = if lo[j].is_finite() && hi[j].is_finite() {
            if hi[j].abs() < lo[j].abs() {
                VState::AtUpper
            } else {
                VState::AtLower
            }
        } else if lo[j].is_finite() {
            VState::AtLower
        } else if hi[j].is_finite() {
            VState::AtUpper
        } else {
            VState::FreeAtZero
        };
        state.push(s);
    }

    // Row residuals with structurals at their resting values; `mag`
    // carries Σ|a_ij x_j| per row, the scale the feasibility of that
    // residual is judged against.
    let mut act = vec![0.0; m];
    let mut mag = vec![0.0; m];
    for (j, s) in state.iter().enumerate() {
        let v = match s {
            VState::AtLower => lo[j],
            VState::AtUpper => hi[j],
            _ => 0.0,
        };
        if v != 0.0 {
            for &(row, a) in &struct_cols[j] {
                act[row as usize] += a * v;
                mag[row as usize] += (a * v).abs();
            }
        }
    }

    let mut basic = vec![0u32; m];
    let mut xb = vec![0.0; m];
    // Rows that cannot start with a feasible basic slack: (row, residual).
    let mut needs_artificial: Vec<(usize, f64)> = Vec::new();

    // First assign the slack state of every row (slack columns are
    // n..n+m, so their states must come before any artificial state).
    for r in 0..m {
        let slack = n + r;
        let need = rhs[r] - act[r]; // desired slack value
                                    // Relative to the row's own data magnitude, with no absolute
                                    // floor: a row whose rhs and activity are all ~2^-28 is *100%*
                                    // violated by a residual of 2^-28, and silently skipping its
                                    // artificial would skip the phase-1 feasibility verdict too.
        let eps = prep.tol.feas * (rhs[r].abs() + mag[r]);
        if need >= lo[slack] - eps && need <= hi[slack] + eps {
            // Slack absorbs the residual: make it basic.
            basic[r] = slack as u32;
            xb[r] = need.clamp(lo[slack], hi[slack]);
            state.push(VState::Basic);
        } else {
            // Slack rests at its nearest bound; an artificial will absorb
            // the remaining residual with a positive value.
            let srest = if need < lo[slack] {
                lo[slack]
            } else {
                hi[slack]
            };
            state.push(if srest == lo[slack] {
                VState::AtLower
            } else {
                VState::AtUpper
            });
            needs_artificial.push((r, need - srest));
        }
    }

    // Then append the artificial columns (indices n+m..).
    let mut artificials = Vec::new();
    for (r, resid) in needs_artificial {
        let a_col = n + extra_cols.len();
        extra_cols.push((r as u32, resid.signum()));
        lo.push(0.0);
        hi.push(f64::INFINITY);
        state.push(VState::Basic);
        basic[r] = a_col as u32;
        xb[r] = resid.abs();
        artificials.push(a_col);
    }

    let ncols = n + extra_cols.len();
    // Initial basis: diagonal (slacks and artificials), factorizes
    // trivially.
    let basis = {
        let basis_cols: Vec<&[(u32, f64)]> = basic
            .iter()
            .map(|&c| std::slice::from_ref(&extra_cols[c as usize - n]))
            .collect();
        lu::Basis::factorize(m, &basis_cols).expect("diagonal start basis cannot be singular")
    };

    Ok((
        Tableau {
            m,
            n,
            ncols,
            struct_cols,
            extra_cols,
            lo,
            hi,
            rhs,
            state,
            basic,
            xb,
            basis,
            devex: vec![1.0; ncols],
            scratch: Vec::new(),
            fscratch: lu::FactorScratch::default(),
            iterations: 0,
            refactorizations: 0,
            work_budget: u64::MAX,
            work_base: 0,
            tol: prep.tol,
            shifted: Vec::new(),
            colmax: Vec::new(),
        },
        artificials,
    ))
}

/// Rebuilds a [`Tableau`] around a warm-start basis: the standard-form
/// columns come from the (possibly perturbed) model and the snapshot's
/// factorization is installed directly (no artificials — any primal
/// infeasibility is left for the dual simplex). A snapshot with fewer
/// rows than the model is accepted as a *row extension* (cut rows added
/// since capture; new slacks enter basic and the basis is refactorized).
/// Returns `None` when the snapshot's shape neither matches nor extends,
/// when a basic column's coefficients changed since capture (per-column
/// fingerprints), or when refactorization finds the basic set singular.
fn build_from_warm<'a>(model: &'a Model, w: &LpWarmStart, prep: &'a Prep) -> Option<Tableau<'a>> {
    let n = model.vars.len();
    let m = model.constrs.len();
    // Row extension: a snapshot with *fewer* rows than the model (cut rows
    // appended since capture) is still a usable start. The old basic set
    // plus the new rows' slacks is block lower triangular over the
    // extended matrix — nonsingular whenever the old basis was — and with
    // zero-cost slacks the old duals extend with 0 on the new rows, so
    // reduced costs are unchanged: the start is dual feasible and only the
    // violated cut rows are primal infeasible, exactly what the dual
    // simplex repairs. The stored factorization and its fingerprints are
    // *not* trusted on this path (cut coefficients landed in structural
    // columns, so `col_fp` legitimately moved): the basis is refactorized
    // from the current columns below.
    let extend = w.n == n && w.m < m && w.state.len() == n + w.m && w.basic.len() == w.m;
    if !extend {
        if w.n != n || w.m != m || w.state.len() != n + m {
            return None;
        }
        if w.basic_fp != model.basis_fingerprint(&w.basic) {
            return None;
        }
        // The stored factorization lives in the scaled space the snapshot
        // was captured under; a differently scaled re-solve starts cold.
        if w.scale_fp != prep.scale_fp() {
            return None;
        }
    }
    let mut lo: Vec<f64> = model
        .vars
        .iter()
        .enumerate()
        .map(|(j, v)| v.lo / prep.col_factor(j))
        .collect();
    let mut hi: Vec<f64> = model
        .vars
        .iter()
        .enumerate()
        .map(|(j, v)| v.hi / prep.col_factor(j))
        .collect();
    let mut rhs = vec![0.0; m];
    for (r, c) in model.constrs.iter().enumerate() {
        rhs[r] = c.rhs * prep.row_factor(r);
    }
    let mut extra_cols: Vec<(u32, f64)> = Vec::with_capacity(m);
    for (r, c) in model.constrs.iter().enumerate() {
        extra_cols.push((r as u32, 1.0));
        match c.cmp {
            Cmp::Le => {
                lo.push(0.0);
                hi.push(f64::INFINITY);
            }
            Cmp::Ge => {
                lo.push(f64::NEG_INFINITY);
                hi.push(0.0);
            }
            Cmp::Eq => {
                lo.push(0.0);
                hi.push(0.0);
            }
        }
    }

    // Repair nonbasic resting states against the (possibly moved) bounds:
    // a variable parked at a bound that no longer exists must rest
    // somewhere expressible. On the extension path the new rows' slacks
    // (stored after the structural block, so appending keeps the layout)
    // enter basic, completing the block-triangular basis.
    let mut state = w.state.clone();
    let mut basic = w.basic.clone();
    if extend {
        for r in w.m..m {
            state.push(VState::Basic);
            basic.push((n + r) as u32);
        }
    }
    for j in 0..n + m {
        if state[j] == VState::Basic {
            continue;
        }
        state[j] = match state[j] {
            VState::AtLower if lo[j].is_finite() => VState::AtLower,
            VState::AtUpper if hi[j].is_finite() => VState::AtUpper,
            _ => {
                if lo[j].is_finite() {
                    VState::AtLower
                } else if hi[j].is_finite() {
                    VState::AtUpper
                } else {
                    VState::FreeAtZero
                }
            }
        };
    }

    // Install the carried factorization: the fingerprint guard above
    // certifies the basic columns' coefficients are the ones it was
    // computed from, so a clone is as good as a refactorization.
    let basis = w.basis.clone();

    let mut t = Tableau {
        m,
        n,
        ncols: n + m,
        struct_cols: prep.cols(model),
        extra_cols,
        lo,
        hi,
        rhs,
        state,
        basic,
        xb: vec![0.0; m],
        basis,
        devex: vec![1.0; n + m],
        scratch: Vec::new(),
        fscratch: lu::FactorScratch::default(),
        iterations: 0,
        refactorizations: 0,
        work_budget: u64::MAX,
        work_base: 0,
        tol: prep.tol,
        shifted: Vec::new(),
        colmax: Vec::new(),
    };
    if extend || t.basis.should_refactorize() {
        // Long chains still refactorize periodically, even across
        // snapshot hops; the extension path *always* refactorizes (the
        // carried factor has the wrong dimension). A singular basic set
        // falls back to the cold path.
        t.refactorize().ok()?;
    } else {
        t.recompute_basics();
    }
    Some(t)
}

/// Extracts the structural solution from an optimal tableau, undoing the
/// scaling substitution (`x_j = c_j · y_j`; the factors are exact powers
/// of two, so unscaling is rounding-error-free).
fn extract(model: &Model, t: &Tableau<'_>, prep: &Prep) -> Solution {
    let n = model.vars.len();
    let mut values = vec![0.0; n];
    for j in 0..n {
        values[j] = match t.state[j] {
            VState::Basic => 0.0, // filled below
            _ => t.nonbasic_value(j),
        };
    }
    for (r, &c) in t.basic.iter().enumerate() {
        if (c as usize) < n {
            values[c as usize] = t.xb[r];
        }
    }
    if prep.scaling.is_some() {
        for (j, v) in values.iter_mut().enumerate() {
            *v *= prep.col_factor(j);
        }
    }
    // Snap almost-at-bound values for cleanliness — *relative* to the
    // value/bound magnitude, floorless: an absolute snap window moves
    // solutions at 1e8 scale by more than the optimality gap, and on a
    // variable whose whole range sits below the floor it teleports the
    // value across that range.
    for (j, v) in values.iter_mut().enumerate() {
        let (l, h) = (model.vars[j].lo, model.vars[j].hi);
        if l.is_finite() && (*v - l).abs() < tol::snap_eps(*v, l) {
            *v = l;
        }
        if h.is_finite() && (*v - h).abs() < tol::snap_eps(*v, h) {
            *v = h;
        }
    }
    let objective = model.objective_value(&values);
    Solution {
        values,
        objective,
        status: SolveStatus::Optimal,
        gap: 0.0,
        iterations: t.iterations,
        nodes: 1,
        work: t.work_spent(),
    }
}

/// Phase-2 cost vector of `model` over `ncols` tableau columns, in
/// `prep`'s scaled space (the substitution `x_j = c_j · y_j` multiplies
/// cost `j` by `c_j`, keeping the objective value identical).
fn phase2_costs(model: &Model, ncols: usize, prep: &Prep) -> Vec<f64> {
    let minimize = matches!(model.sense, crate::Sense::Minimize);
    let mut c2 = vec![0.0; ncols];
    for (j, v) in model.vars.iter().enumerate() {
        let c = v.cost * prep.col_factor(j);
        c2[j] = if minimize { c } else { -c };
    }
    c2
}

/// Solves the continuous relaxation of `model`, optionally warm-starting
/// from a prior basis; returns the solution plus a basis snapshot for the
/// next link of the chain.
///
/// The warm path refactorizes the stored basic set, runs the **dual
/// simplex** to repair primal feasibility under the perturbed bounds /
/// right-hand sides, then the primal simplex to certify optimality (and
/// absorb any objective perturbation). Numerical trouble on the warm path
/// falls back to the cold two-phase solve, so a stale-but-same-shape
/// basis can cost time, never correctness — `Infeasible`/`Unbounded` are
/// only returned off certified pivots.
pub(crate) fn solve_warm(
    model: &Model,
    warm: Option<&LpWarmStart>,
) -> Result<(Solution, Option<LpWarmStart>)> {
    solve_warm_budgeted(model, warm, None, &mut 0)
}

/// [`solve_warm`] under an optional cooperative work budget (simplex
/// iterations + refactorizations). When the budget trips mid-solve the
/// call returns [`SolverError::Interrupted`] carrying the cumulative work
/// spent — including any work burned by a failed warm attempt before the
/// cold fallback, so the reported number is the true cost of the call.
/// `None` is exactly [`solve_warm`].
///
/// `work_out` receives the work this call performed **whatever** the
/// outcome — success, infeasibility, a budget trip, or a numerical
/// failure. Infeasible relaxations burn real pivots too: a MIP-level work
/// ledger that only counted successful solves would under-report, and a
/// budget equal to a solve's own reported work could then trip inside
/// work the report never showed. (On success `work_out` equals the
/// returned [`Solution::work`].)
pub(crate) fn solve_warm_budgeted(
    model: &Model,
    warm: Option<&LpWarmStart>,
    work_budget: Option<u64>,
    work_out: &mut u64,
) -> Result<(Solution, Option<LpWarmStart>)> {
    *work_out = 0;
    if model.constrs.is_empty() {
        return solve(model).map(|s| (s, None));
    }
    let prep = Prep::new(model);
    let budget = work_budget.unwrap_or(u64::MAX);
    let mut warm_work = 0u64;
    if let Some(w) = warm {
        if let Some(mut t) = build_from_warm(model, w, &prep) {
            t.work_budget = budget;
            let iter_limit = 200 * (t.m + t.ncols) + 20_000;
            let c2 = phase2_costs(model, t.ncols, &prep);
            let attempt = (|| -> Result<()> {
                t.dual_reoptimize(&c2, iter_limit)?;
                t.optimize(&c2, iter_limit)?;
                t.finalize(&c2, iter_limit)?;
                t.certify()?;
                // The warm path skips phase 1, so it must run the same
                // feasibility verdict the cold path applies: a repaired
                // basis that leaves a row violated at its own scale is an
                // uncertified answer and falls back to the cold solve.
                t.verify_feasible()
            })();
            match attempt {
                Ok(()) => {
                    *work_out = t.work_spent();
                    let basis = t.capture(model, &prep);
                    return Ok((extract(model, &t, &prep), basis));
                }
                // Unboundedness is certified by a ray off an exact ratio
                // test and survives the fallback unchanged; everything
                // else retries cold below — a warm start certifies or
                // falls back, never returns an uncertified answer. That
                // includes the dual simplex's `Infeasible`: its "no
                // entering column" certificate depends on pricing
                // tolerances, so on badly scaled chains the cold two-phase
                // solve (whose verdict is taken scale-invariantly in model
                // units) is the authority. A budget trip also propagates:
                // falling back cold would burn work *past* the budget.
                Err(e @ (SolverError::Unbounded | SolverError::Interrupted { .. })) => {
                    *work_out = t.work_spent();
                    return Err(e);
                }
                Err(_) => {}
            }
            // Charge the abandoned warm attempt to the cold fallback.
            warm_work = t.work_spent();
            *work_out = warm_work;
        }
    }
    let t = solve_cold_budgeted(model, &prep, budget, warm_work, work_out)?;
    let basis = t.capture(model, &prep);
    Ok((extract(model, &t, &prep), basis))
}

/// The cold two-phase solve: build with artificials, phase 1 when needed,
/// phase 2 to optimality, then the certification pipeline (shift restore,
/// residual monitor). Returns the final tableau; a solution that cannot be
/// certified surfaces as [`SolverError::Numerical`], never as a silently
/// inaccurate answer. `work_out` receives the work performed (on top of
/// `work_base`) on **every** exit path, error or not — infeasibility
/// verdicts cost pivots too, and the MIP ledger counts them.
fn solve_cold_budgeted<'a>(
    model: &'a Model,
    prep: &'a Prep,
    work_budget: u64,
    work_base: u64,
    work_out: &mut u64,
) -> Result<Tableau<'a>> {
    let (mut t, artificials) = build(model, prep)?;
    t.work_budget = work_budget;
    t.work_base = work_base;
    let iter_limit = 200 * (t.m + t.ncols) + 20_000;

    let run = (|| -> Result<()> {
        // Phase 1: minimize the artificial sum when any artificial is
        // present.
        if !artificials.is_empty() {
            let mut c1 = vec![0.0; t.ncols];
            for &a in &artificials {
                c1[a] = 1.0;
            }
            t.optimize(&c1, iter_limit)?;
            // Any phase-1 bound shifts must be undone *before* the
            // feasibility verdict — a shifted optimum could undercount the
            // residual infeasibility.
            t.finalize(&c1, iter_limit)?;
            // The feasibility verdict: relative row violations over
            // structurals and slacks only, so whatever an artificial still
            // absorbs counts as violation. The measure is relative per row
            // (and therefore invariant under the equilibration scaling) —
            // the scaled-space artificial *objective* is not, since a row
            // scaled down by 2^-k shrinks its residual below any absolute
            // cutoff while staying violated by half its right-hand side in
            // model units.
            if t.feasibility_gap() > t.tol.feas {
                return Err(SolverError::Infeasible);
            }
            // Freeze artificials at zero for phase 2.
            for &a in &artificials {
                t.lo[a] = 0.0;
                t.hi[a] = 0.0;
                if t.state[a] != VState::Basic {
                    t.state[a] = VState::AtLower;
                }
            }
            // Clamp any residual basic artificial values.
            for r in 0..t.m {
                if artificials.contains(&(t.basic[r] as usize)) {
                    t.xb[r] = 0.0;
                }
            }
        }

        // Phase 2.
        let c2 = phase2_costs(model, t.ncols, prep);
        t.optimize(&c2, iter_limit)?;
        t.finalize(&c2, iter_limit)?;
        t.certify()?;
        t.verify_feasible()
    })();
    *work_out = t.work_spent();
    run?;
    Ok(t)
}

/// Solves the continuous relaxation of `model`.
pub(crate) fn solve(model: &Model) -> Result<Solution> {
    solve_budgeted(model, None, &mut 0)
}

/// [`solve`] under an optional cooperative work budget; `None` is exactly
/// [`solve`]. `work_out` receives the work performed on every exit path
/// (see [`solve_warm_budgeted`]).
pub(crate) fn solve_budgeted(
    model: &Model,
    work_budget: Option<u64>,
    work_out: &mut u64,
) -> Result<Solution> {
    *work_out = 0;
    // Degenerate case: no constraints — every variable sits at its best bound.
    if model.constrs.is_empty() {
        let minimize = matches!(model.sense, crate::Sense::Minimize);
        let mut values = Vec::with_capacity(model.vars.len());
        for v in &model.vars {
            let c = if minimize { v.cost } else { -v.cost };
            let x = if c > 0.0 {
                if v.lo.is_finite() {
                    v.lo
                } else {
                    return Err(SolverError::Unbounded);
                }
            } else if c < 0.0 {
                if v.hi.is_finite() {
                    v.hi
                } else {
                    return Err(SolverError::Unbounded);
                }
            } else if v.lo.is_finite() {
                v.lo
            } else if v.hi.is_finite() {
                v.hi
            } else {
                0.0
            };
            values.push(x);
        }
        let objective = model.objective_value(&values);
        return Ok(Solution {
            values,
            objective,
            status: SolveStatus::Optimal,
            gap: 0.0,
            iterations: 0,
            nodes: 1,
            work: 0,
        });
    }

    let prep = Prep::new(model);
    let t = solve_cold_budgeted(model, &prep, work_budget.unwrap_or(u64::MAX), 0, work_out)?;
    Ok(extract(model, &t, &prep))
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, Model, Sense, SolverError, VarKind};

    fn var(m: &mut Model, name: &str, lo: f64, hi: f64, cost: f64) -> crate::VarId {
        m.add_var(name, VarKind::Continuous, lo, hi, cost)
    }

    #[test]
    fn textbook_minimization() {
        // min x + y s.t. x + 2y >= 3, 3x + y >= 4 -> (1, 1), obj 2.
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", 0.0, f64::INFINITY, 1.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, 1.0);
        m.add_constr(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 3.0);
        m.add_constr(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 4.0);
        let s = m.solve_lp().unwrap();
        assert!((s.objective - 2.0).abs() < 1e-6, "obj = {}", s.objective);
        assert!((s.value(x) - 1.0).abs() < 1e-6);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> obj 36 at (2, 6).
        let mut m = Model::new(Sense::Maximize);
        let x = var(&mut m, "x", 0.0, f64::INFINITY, 3.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, 5.0);
        m.add_constr(vec![(x, 1.0)], Cmp::Le, 4.0);
        m.add_constr(vec![(y, 2.0)], Cmp::Le, 12.0);
        m.add_constr(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = m.solve_lp().unwrap();
        assert!((s.objective - 36.0).abs() < 1e-6);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y s.t. x + y = 10, x - y = 2 -> x = 6, y = 4, obj 14.
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", 0.0, f64::INFINITY, 1.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, 2.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        m.add_constr(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 2.0);
        let s = m.solve_lp().unwrap();
        assert!((s.value(x) - 6.0).abs() < 1e-6);
        assert!((s.value(y) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn upper_bounds_without_rows() {
        // max x + y with x, y in [0, 1] and x + y <= 1.5.
        let mut m = Model::new(Sense::Maximize);
        let x = var(&mut m, "x", 0.0, 1.0, 1.0);
        let y = var(&mut m, "y", 0.0, 1.0, 1.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.5);
        let s = m.solve_lp().unwrap();
        assert!((s.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", 0.0, 1.0, 1.0);
        m.add_constr(vec![(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(m.solve_lp().unwrap_err(), SolverError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = var(&mut m, "x", 0.0, f64::INFINITY, 1.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, 0.0);
        m.add_constr(vec![(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
        assert_eq!(m.solve_lp().unwrap_err(), SolverError::Unbounded);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x with x in [-5, 5], x >= -3 -> x = -3.
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", -5.0, 5.0, 1.0);
        m.add_constr(vec![(x, 1.0)], Cmp::Ge, -3.0);
        let s = m.solve_lp().unwrap();
        assert!((s.value(x) + 3.0).abs() < 1e-6);
    }

    #[test]
    fn free_variables() {
        // min x + y, x free, y >= 0, x + y >= 4, x <= 1 (via row) -> x=1,y=3? cost 4.
        // Actually optimum: x as large as allowed (1), y = 3 -> obj 4; or x
        // smaller makes y bigger, same cost. Unique optimum when cost y = 2.
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, 2.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        m.add_constr(vec![(x, 1.0)], Cmp::Le, 1.0);
        let s = m.solve_lp().unwrap();
        assert!((s.objective - 7.0).abs() < 1e-6, "obj = {}", s.objective);
        assert!((s.value(x) - 1.0).abs() < 1e-6);
        assert!((s.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", 2.0, 2.0, 1.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, 1.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        let s = m.solve_lp().unwrap();
        assert!((s.value(x) - 2.0).abs() < 1e-9);
        assert!((s.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn no_constraints_picks_best_bounds() {
        let mut m = Model::new(Sense::Maximize);
        let x = var(&mut m, "x", 0.0, 7.0, 2.0);
        let y = var(&mut m, "y", -1.0, 3.0, -1.0);
        let s = m.solve_lp().unwrap();
        assert!((s.value(x) - 7.0).abs() < 1e-9);
        assert!((s.value(y) + 1.0).abs() < 1e-9);
        assert!((s.objective - 15.0).abs() < 1e-9);
    }

    #[test]
    fn no_constraints_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        var(&mut m, "x", 0.0, f64::INFINITY, 1.0);
        assert_eq!(m.solve_lp().unwrap_err(), SolverError::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Highly degenerate: many redundant constraints through the origin.
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", 0.0, f64::INFINITY, -1.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, -1.0);
        for i in 1..=8 {
            m.add_constr(vec![(x, i as f64), (y, 1.0)], Cmp::Le, i as f64);
        }
        let s = m.solve_lp().unwrap();
        // max x + y s.t. ix + y <= i: optimum x=1,y=0 -> -1? Check x=0,y=1
        // also satisfies all (y <= i). obj -1 either way... actually
        // x=6/7,y=6/7 satisfies x+y<=1? row i=1: x+y<=1. So optimum -1.
        assert!((s.objective + 1.0).abs() < 1e-6, "obj = {}", s.objective);
    }

    #[test]
    fn lp_relaxation_of_cover() {
        // Fractional set cover: 3 elements, sets {1,2}, {2,3}, {1,3};
        // LP optimum is x = 1/2 each, objective 1.5.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_var("a", VarKind::Binary, 0.0, 1.0, 1.0);
        let b = m.add_var("b", VarKind::Binary, 0.0, 1.0, 1.0);
        let c = m.add_var("c", VarKind::Binary, 0.0, 1.0, 1.0);
        m.add_constr(vec![(a, 1.0), (c, 1.0)], Cmp::Ge, 1.0);
        m.add_constr(vec![(a, 1.0), (b, 1.0)], Cmp::Ge, 1.0);
        m.add_constr(vec![(b, 1.0), (c, 1.0)], Cmp::Ge, 1.0);
        let s = m.solve_lp().unwrap();
        assert!((s.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn larger_random_lp_is_feasible_and_bounded() {
        // A covering LP with 40 vars and 25 rows; verifies the solution via
        // the model's own feasibility checker.
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..40)
            .map(|i| {
                m.add_var(
                    format!("x{i}"),
                    VarKind::Continuous,
                    0.0,
                    1.0,
                    1.0 + (i % 3) as f64,
                )
            })
            .collect();
        for r in 0..25usize {
            let terms: Vec<_> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| (i + r) % 4 == 0 || (i * 7 + r * 3) % 5 == 0)
                .map(|(i, &v)| (v, 1.0 + ((i + r) % 2) as f64))
                .collect();
            m.add_constr(terms, Cmp::Ge, 2.0);
        }
        let s = m.solve_lp().unwrap();
        // Continuous model: integrality not enforced, values pass as-is.
        m.check_feasible(&s.values, 1e-6).unwrap();
        assert!(s.objective > 0.0);
    }

    #[test]
    fn warm_start_extends_across_added_rows() {
        // Solve, then append a violated cut-style row: the old snapshot
        // has fewer rows than the model and must install via the
        // row-extension path (new slack basic, refactorize), with the
        // dual simplex repairing just the new row.
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", 0.0, 10.0, 1.0);
        let y = var(&mut m, "y", 0.0, 10.0, 2.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 2.0);
        let (s, basis) = m.solve_lp_warm(None).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-9); // x = 2, y = 0
        let basis = basis.expect("optimal basis captured");
        // New row x + 2y >= 4 is violated at (2, 0).
        m.add_constr(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 4.0);
        let prep = super::Prep::new(&m);
        assert!(
            super::build_from_warm(&m, &basis, &prep).is_some(),
            "row-extended snapshot must install"
        );
        let (warm_sol, _) = m.solve_lp_warm(Some(&basis)).unwrap();
        let cold = m.solve_lp().unwrap();
        assert!(
            (warm_sol.objective - cold.objective).abs() < 1e-9,
            "warm {} vs cold {}",
            warm_sol.objective,
            cold.objective
        );
        m.check_feasible(&warm_sol.values, 1e-7).unwrap();
    }

    #[test]
    fn untouched_column_edit_keeps_warm_start_valid() {
        // min x + y + 10 z s.t. x + 2y + z >= 3, 3x + y >= 4: optimum at
        // (1, 1, 0) with x and y basic and z parked at its lower bound.
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", 0.0, f64::INFINITY, 1.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, 1.0);
        let z = var(&mut m, "z", 0.0, 1.0, 10.0);
        let row0 = m.add_constr(vec![(x, 1.0), (y, 2.0), (z, 1.0)], Cmp::Ge, 3.0);
        m.add_constr(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 4.0);
        let (s, basis) = m.solve_lp_warm(None).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-6);
        let basis = basis.expect("optimal basis captured");
        // Editing only z's coefficient touches no basic column: the
        // snapshot must still install.
        m.set_constr(row0, vec![(x, 1.0), (y, 2.0), (z, 3.0)]);
        let prep = super::Prep::new(&m);
        assert!(
            super::build_from_warm(&m, &basis, &prep).is_some(),
            "nonbasic-column edit must keep the warm start installable"
        );
        let (s2, _) = m.solve_lp_warm(Some(&basis)).unwrap();
        let cold = m.solve_lp().unwrap();
        assert!((s2.objective - cold.objective).abs() < 1e-9);
        // Editing a *basic* column's coefficient must invalidate it.
        m.set_constr(row0, vec![(x, 2.0), (y, 2.0), (z, 3.0)]);
        let prep = super::Prep::new(&m);
        assert!(
            super::build_from_warm(&m, &basis, &prep).is_none(),
            "basic-column edit must invalidate the snapshot"
        );
        // And the public API still agrees with a cold solve.
        let (s3, _) = m.solve_lp_warm(Some(&basis)).unwrap();
        let cold = m.solve_lp().unwrap();
        assert!((s3.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn set_constr_then_solve_matches_fresh_model() {
        // Rewriting a row must leave the model solving exactly like a
        // freshly built one (the column store and row store stay in sync).
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", 0.0, 10.0, 1.0);
        let y = var(&mut m, "y", 0.0, 10.0, 1.0);
        let r0 = m.add_constr(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 3.0);
        m.add_constr(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 4.0);
        m.set_constr(r0, vec![(x, 2.0), (y, 1.0)]);

        let mut fresh = Model::new(Sense::Minimize);
        let fx = var(&mut fresh, "x", 0.0, 10.0, 1.0);
        let fy = var(&mut fresh, "y", 0.0, 10.0, 1.0);
        fresh.add_constr(vec![(fx, 2.0), (fy, 1.0)], Cmp::Ge, 3.0);
        fresh.add_constr(vec![(fx, 3.0), (fy, 1.0)], Cmp::Ge, 4.0);

        let a = m.solve_lp().unwrap();
        let b = fresh.solve_lp().unwrap();
        assert!((a.objective - b.objective).abs() < 1e-9);
        assert_eq!(m.cols, fresh.cols, "column stores must match");
        assert_eq!(m.col_fp, fresh.col_fp, "column fingerprints must match");
    }
}
