//! Bounded-variable revised primal simplex with a dense explicit basis
//! inverse.
//!
//! Design notes:
//!
//! * Internally everything is a **minimization**; maximization models have
//!   their costs negated on entry and objective negated on exit.
//! * Every constraint row receives one slack variable turning it into an
//!   equality (`Le` → slack in `[0, ∞)`, `Ge` → slack in `(-∞, 0]`,
//!   `Eq` → slack fixed at `0`), so the basis always has full size `m`.
//! * Variables live between bounds `[lo, hi]` (possibly infinite on either
//!   side); nonbasic variables rest at a finite bound, or at zero when free.
//!   This avoids materializing the `x ≤ 1` rows of the paper's 0–1 programs,
//!   which keeps the tableau at "number of traffics" rows rather than
//!   "traffics + links" (crucial for the 15-router POP with 1980 traffics).
//! * Phase 1 adds artificial columns only on rows whose slack cannot absorb
//!   the initial residual; in the paper's programs that is typically the
//!   single coverage row, so phase 1 is short.
//! * Pricing is candidate-list (partial) pricing: a full Dantzig scan
//!   refills a list of the most attractive columns, minor iterations
//!   price only that list, and the duals are updated incrementally per
//!   pivot (one row of the basis inverse) instead of a full O(m²) BTRAN.
//!   Optimality is only declared after a full scan under exact duals. A
//!   long non-improving streak switches to Bland's rule (on exact
//!   duals), which guarantees termination on degenerate instances.
//! * The basis inverse is refactorized periodically (Gauss-Jordan with
//!   partial pivoting) to bound error accumulation from eta updates.

use crate::model::{Cmp, Model};
use crate::{Result, Solution, SolveStatus, SolverError, FEAS_TOL};

/// A reusable simplex basis snapshot: the optimal basis of a previous
/// [`Model::solve_lp`]-family call, fed back through
/// [`Model::solve_lp_warm`] to re-optimize after a *perturbation* of the
/// same model (changed variable bounds, right-hand sides, or objective
/// coefficients).
///
/// The snapshot is tied to the model's **structure**: the constraint
/// matrix coefficients and the variable/constraint counts must be
/// unchanged between capture and reuse (bounds, RHS, and costs are free to
/// move — that is the point). A fingerprint of the coefficient matrix is
/// checked on reuse, so a snapshot from a structurally different model is
/// silently ignored (cold solve) rather than producing garbage arithmetic
/// on a stale basis inverse.
#[derive(Debug, Clone)]
pub struct LpWarmStart {
    /// Structural variable count of the originating model.
    n: usize,
    /// Constraint count of the originating model.
    m: usize,
    /// Hash of the originating model's constraint coefficients
    /// ([`structure_fingerprint`]).
    fingerprint: u64,
    /// Variable states over structurals + slacks (artificials excluded).
    state: Vec<VState>,
    /// Basic column per row.
    basic: Vec<u32>,
    /// Dense basis inverse (column-major, `m × m`).
    binv: Vec<f64>,
    /// Eta updates accumulated since the last refactorization, carried so
    /// long warm-start chains still refactorize periodically.
    etas: usize,
}

/// FNV-1a over the constraint matrix structure: rows in order, each term's
/// variable index and coefficient bits. Bounds, costs, and right-hand
/// sides are deliberately excluded — perturbing them is what warm starts
/// are *for*; changing a coefficient invalidates the stored basis inverse.
fn structure_fingerprint(model: &Model) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for c in &model.constrs {
        eat(c.terms.len() as u64);
        for &(v, a) in &c.terms {
            eat(v as u64);
            eat(a.to_bits());
        }
    }
    h
}

/// Reduced-cost tolerance for optimality.
const COST_TOL: f64 = 1e-9;
/// Minimum pivot magnitude accepted in the ratio test.
const PIVOT_TOL: f64 = 1e-9;
/// Iterations without objective improvement before switching to Bland.
const DEGEN_SWITCH: usize = 100_000;
/// Eta updates between basis refactorizations.
const REFRESH_EVERY: usize = 1000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VState {
    Basic,
    AtLower,
    AtUpper,
    /// Free variable (both bounds infinite) resting at value 0.
    FreeAtZero,
}

/// Dense-working-state LP solver over the standard form described in the
/// module docs.
struct Tableau {
    m: usize,
    /// Total columns: structurals + slacks + artificials.
    ncols: usize,
    /// Sparse columns: (row, coefficient).
    cols: Vec<Vec<(u32, f64)>>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Right-hand side per row (after slack normalization).
    rhs: Vec<f64>,
    state: Vec<VState>,
    /// Basic column per row.
    basic: Vec<u32>,
    /// Value of the basic variable of each row.
    xb: Vec<f64>,
    /// Column-major dense basis inverse: entry (r, c) at `binv[c * m + r]`.
    binv: Vec<f64>,
    iterations: usize,
    etas_since_refresh: usize,
}

impl Tableau {
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.state[j] {
            VState::AtLower => self.lo[j],
            VState::AtUpper => self.hi[j],
            VState::FreeAtZero => 0.0,
            VState::Basic => unreachable!("basic variable has no resting value"),
        }
    }

    /// Recomputes basic values from scratch: `x_B = B^{-1}(rhs - A_N x_N)`.
    fn recompute_basics(&mut self) {
        let m = self.m;
        let mut r = self.rhs.clone();
        for j in 0..self.ncols {
            if self.state[j] == VState::Basic {
                continue;
            }
            let v = self.nonbasic_value(j);
            if v != 0.0 {
                for &(row, a) in &self.cols[j] {
                    r[row as usize] -= a * v;
                }
            }
        }
        let mut xb = vec![0.0; m];
        for c in 0..m {
            let col = &self.binv[c * m..(c + 1) * m];
            let rc = r[c];
            if rc != 0.0 {
                for i in 0..m {
                    xb[i] += col[i] * rc;
                }
            }
        }
        self.xb = xb;
    }

    /// Rebuilds the dense basis inverse from the current basic set using
    /// Gauss-Jordan elimination with partial pivoting.
    fn refactorize(&mut self) -> Result<()> {
        let m = self.m;
        // Build B column-major, augmented with identity (also column-major).
        let mut b = vec![0.0; m * m];
        for (r, &col) in self.basic.iter().enumerate() {
            let _ = r;
            let _ = col;
        }
        for (pos, &colid) in self.basic.iter().enumerate() {
            for &(row, a) in &self.cols[colid as usize] {
                b[pos * m + row as usize] = a;
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        // Gauss-Jordan on rows, operating across both matrices.
        for piv in 0..m {
            // Partial pivoting: find the largest |entry| in column piv.
            let (mut best_r, mut best_v) = (piv, 0.0f64);
            for r in piv..m {
                let v = b[piv * m + r].abs();
                if v > best_v {
                    best_v = v;
                    best_r = r;
                }
            }
            if best_v < 1e-12 {
                // Singular basis: numerical breakdown.
                return Err(SolverError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            if best_r != piv {
                for c in 0..m {
                    b.swap(c * m + piv, c * m + best_r);
                    inv.swap(c * m + piv, c * m + best_r);
                }
            }
            let d = b[piv * m + piv];
            for c in 0..m {
                b[c * m + piv] /= d;
                inv[c * m + piv] /= d;
            }
            for r in 0..m {
                if r == piv {
                    continue;
                }
                let f = b[piv * m + r];
                if f == 0.0 {
                    continue;
                }
                for c in 0..m {
                    b[c * m + r] -= f * b[c * m + piv];
                    inv[c * m + r] -= f * inv[c * m + piv];
                }
            }
        }
        self.binv = inv;
        self.etas_since_refresh = 0;
        self.recompute_basics();
        Ok(())
    }

    /// `w = B^{-1} A_j` for a sparse column `j`.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let m = self.m;
        let mut w = vec![0.0; m];
        for &(row, a) in &self.cols[j] {
            let col = &self.binv[row as usize * m..(row as usize + 1) * m];
            for i in 0..m {
                w[i] += a * col[i];
            }
        }
        w
    }

    /// `y = c_B' B^{-1}` for the given full cost vector.
    ///
    /// Exploits the sparsity of `c_B`: in the paper's programs only the
    /// `x_e` device columns carry cost, so most basic columns (slacks and
    /// `δ_t`s) contribute nothing and are skipped. This makes the exact
    /// dual recomputation O(m · nnz(c_B)) instead of O(m²).
    fn btran_duals(&self, cost: &[f64]) -> Vec<f64> {
        let m = self.m;
        let nz: Vec<(usize, f64)> = self
            .basic
            .iter()
            .enumerate()
            .filter_map(|(r, &c)| {
                let cb = cost[c as usize];
                if cb != 0.0 {
                    Some((r, cb))
                } else {
                    None
                }
            })
            .collect();
        let mut y = vec![0.0; m];
        for (i, yi) in y.iter_mut().enumerate() {
            let col = &self.binv[i * m..(i + 1) * m];
            let mut acc = 0.0;
            for &(r, cb) in &nz {
                acc += cb * col[r];
            }
            *yi = acc;
        }
        y
    }

    /// Row `r` of the basis inverse (`e_r' B^{-1}`), used by the
    /// incremental dual update.
    fn binv_row(&self, r: usize) -> Vec<f64> {
        let m = self.m;
        (0..m).map(|c| self.binv[c * m + r]).collect()
    }

    fn reduced_cost(&self, j: usize, cost: &[f64], y: &[f64]) -> f64 {
        let mut d = cost[j];
        for &(row, a) in &self.cols[j] {
            d -= y[row as usize] * a;
        }
        d
    }

    fn objective(&self, cost: &[f64]) -> f64 {
        let mut z = 0.0;
        for j in 0..self.ncols {
            let v = if self.state[j] == VState::Basic {
                continue;
            } else {
                self.nonbasic_value(j)
            };
            z += cost[j] * v;
        }
        for (r, &c) in self.basic.iter().enumerate() {
            z += cost[c as usize] * self.xb[r];
        }
        z
    }

    /// Is nonbasic column `j` an attractive entering candidate at reduced
    /// cost `d`?
    fn eligible(&self, j: usize, d: f64) -> bool {
        match self.state[j] {
            VState::AtLower => d < -COST_TOL,
            VState::AtUpper => d > COST_TOL,
            VState::FreeAtZero => d.abs() > COST_TOL,
            VState::Basic => false,
        }
    }

    /// Full pricing pass: returns the Dantzig entering column (most
    /// attractive reduced cost) and refills `candidates` with the best
    /// eligible columns for the following minor iterations.
    fn price_full(
        &self,
        cost: &[f64],
        y: &[f64],
        candidates: &mut Vec<u32>,
    ) -> Option<(usize, f64)> {
        candidates.clear();
        // (score, col, d) of every eligible column.
        let mut eligible: Vec<(f64, u32, f64)> = Vec::new();
        for j in 0..self.ncols {
            if self.state[j] == VState::Basic || self.lo[j] == self.hi[j] {
                continue;
            }
            let d = self.reduced_cost(j, cost, y);
            if self.eligible(j, d) {
                eligible.push((d.abs(), j as u32, d));
            }
        }
        if eligible.is_empty() {
            return None;
        }
        // Candidate list: the most attractive columns, sized so minor
        // iterations stay cheap but a refill is rare.
        let k = (self.ncols / 20).clamp(10, 100);
        eligible
            .sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        eligible.truncate(k);
        candidates.extend(eligible.iter().map(|&(_, j, _)| j));
        let (_, j, d) = eligible[0];
        Some((j as usize, d))
    }

    /// Minor pricing pass: best eligible column among `candidates` only,
    /// re-pricing them under the current duals.
    fn price_candidates(
        &self,
        cost: &[f64],
        y: &[f64],
        candidates: &[u32],
    ) -> Option<(usize, f64)> {
        let mut best: Option<(f64, usize, f64)> = None;
        for &j32 in candidates {
            let j = j32 as usize;
            if self.state[j] == VState::Basic || self.lo[j] == self.hi[j] {
                continue;
            }
            let d = self.reduced_cost(j, cost, y);
            if self.eligible(j, d) && best.is_none_or(|(s, _, _)| d.abs() > s) {
                best = Some((d.abs(), j, d));
            }
        }
        best.map(|(_, j, d)| (j, d))
    }

    /// Runs primal simplex iterations with the given costs until optimal.
    /// Returns `Err(Unbounded)` when a ray is found.
    ///
    /// Pricing is candidate-list (partial) pricing over incrementally
    /// updated duals: a full scan refills the list of the most attractive
    /// columns, minor iterations price only that list, and the duals are
    /// updated per pivot from one row of the basis inverse instead of a
    /// full O(m²) BTRAN. Optimality is only ever declared after a full
    /// scan under freshly recomputed exact duals, so the incremental
    /// drift can cost extra iterations but never a wrong answer. After a
    /// long non-improving streak the loop falls back to Bland's rule on
    /// exact duals, which guarantees termination on degenerate instances.
    fn optimize(&mut self, cost: &[f64], iter_limit: usize) -> Result<()> {
        let m = self.m;
        let mut best_obj = f64::INFINITY;
        let mut non_improving = 0usize;
        let mut y = self.btran_duals(cost);
        // Duals drift as incremental updates accumulate; `y_exact` tracks
        // whether `y` was recomputed from the basis inverse since the
        // last pivot.
        let mut y_exact = true;
        let mut candidates: Vec<u32> = Vec::new();

        loop {
            if self.iterations >= iter_limit {
                return Err(SolverError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            self.iterations += 1;
            if self.etas_since_refresh >= REFRESH_EVERY {
                self.refactorize()?;
                y = self.btran_duals(cost);
                y_exact = true;
                candidates.clear();
            }

            let use_bland = non_improving >= DEGEN_SWITCH;

            // Pricing: pick the entering column.
            let entering: Option<(usize, f64)> = if use_bland {
                // Bland's rule: lowest-index eligible column under exact
                // duals (anti-cycling needs correct signs).
                if !y_exact {
                    y = self.btran_duals(cost);
                    y_exact = true;
                }
                let mut found = None;
                for j in 0..self.ncols {
                    if self.state[j] == VState::Basic || self.lo[j] == self.hi[j] {
                        continue;
                    }
                    let d = self.reduced_cost(j, cost, &y);
                    if self.eligible(j, d) {
                        found = Some((j, d));
                        break;
                    }
                }
                found
            } else {
                match self.price_candidates(cost, &y, &candidates) {
                    Some(e) => Some(e),
                    None => {
                        // Candidate list exhausted: refresh the duals if
                        // they drifted, then do a full pricing pass.
                        if !y_exact {
                            y = self.btran_duals(cost);
                            y_exact = true;
                        }
                        self.price_full(cost, &y, &mut candidates)
                    }
                }
            };

            let Some((j, dj)) = entering else {
                debug_assert!(y_exact, "optimality must be certified with exact duals");
                return Ok(()); // optimal
            };

            // Direction of movement of the entering variable.
            let sigma = match self.state[j] {
                VState::AtLower => 1.0,
                VState::AtUpper => -1.0,
                VState::FreeAtZero => {
                    if dj < 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                }
                VState::Basic => unreachable!(),
            };

            let w = self.ftran(j);

            // Ratio test, two passes (Harris-flavoured for stability).
            // x_B(t) = x_B - sigma * t * w; the entering moves by sigma * t
            // from its resting value, up to its opposite bound.
            //
            // Pass 1 finds the tightest step t_max; pass 2 picks, among the
            // rows blocking within a small tolerance of t_max, the one with
            // the largest |pivot| — accepting a microscopic pivot here is
            // what corrupts the basis inverse on the ~1000-row instances of
            // the paper's Figure 8.
            let own_range = self.hi[j] - self.lo[j]; // may be +inf
            let mut t_max = if own_range.is_finite() {
                own_range
            } else {
                f64::INFINITY
            };
            let row_limit = |t: &mut f64, r: usize, rate: f64, xb: f64| -> Option<(f64, bool)> {
                let bcol = self.basic[r] as usize;
                if rate > PIVOT_TOL {
                    let lob = self.lo[bcol];
                    if lob.is_finite() {
                        let tr = ((xb - lob) / rate).max(0.0);
                        if tr < *t {
                            *t = tr;
                        }
                        return Some((tr, false));
                    }
                } else if rate < -PIVOT_TOL {
                    let hib = self.hi[bcol];
                    if hib.is_finite() {
                        let tr = ((hib - xb) / (-rate)).max(0.0);
                        if tr < *t {
                            *t = tr;
                        }
                        return Some((tr, true));
                    }
                }
                None
            };
            // Pass 1: tightest step.
            for r in 0..m {
                let rate = sigma * w[r];
                let _ = row_limit(&mut t_max, r, rate, self.xb[r]);
            }
            // Pass 2: best pivot among rows blocking near t_max.
            let tie = 1e-9 + 1e-7 * t_max.abs().min(1.0);
            let mut leave: Option<(usize, bool, f64)> = None; // (row, hits_upper, |pivot|)
            if t_max.is_finite() && t_max < own_range - 1e-12 {
                for r in 0..m {
                    let rate = sigma * w[r];
                    let mut dummy = f64::INFINITY;
                    if let Some((tr, hits_upper)) = row_limit(&mut dummy, r, rate, self.xb[r]) {
                        if tr <= t_max + tie {
                            let mag = w[r].abs();
                            if leave.is_none_or(|(_, _, m0)| mag > m0) {
                                leave = Some((r, hits_upper, mag));
                            }
                        }
                    }
                }
            }
            let leave = leave.map(|(r, h, _)| (r, h));

            if t_max.is_infinite() {
                return Err(SolverError::Unbounded);
            }

            match leave {
                None => {
                    // Bound flip: the entering variable runs to its other
                    // bound without any basic variable blocking.
                    for r in 0..m {
                        self.xb[r] -= sigma * t_max * w[r];
                    }
                    self.state[j] = match self.state[j] {
                        VState::AtLower => VState::AtUpper,
                        VState::AtUpper => VState::AtLower,
                        s => s, // free vars have infinite range; unreachable
                    };
                }
                Some((r, hits_upper)) => {
                    let leaving = self.basic[r] as usize;
                    let enter_val = match self.state[j] {
                        VState::AtLower => self.lo[j] + sigma * t_max,
                        VState::AtUpper => self.hi[j] + sigma * t_max,
                        VState::FreeAtZero => sigma * t_max,
                        VState::Basic => unreachable!(),
                    };
                    for i in 0..m {
                        if i != r {
                            self.xb[i] -= sigma * t_max * w[i];
                        }
                    }
                    self.xb[r] = enter_val;
                    self.state[leaving] = if hits_upper {
                        VState::AtUpper
                    } else {
                        VState::AtLower
                    };
                    self.state[j] = VState::Basic;
                    self.basic[r] = j as u32;
                    // Incremental dual update: y' = y + (d_j / w_r) e_r'B⁻¹,
                    // with ρ = row r of the *pre-pivot* inverse.
                    let theta = dj / w[r];
                    let rho = self.binv_row(r);
                    self.update_binv(r, &w)?;
                    if self.etas_since_refresh == 0 {
                        // `update_binv` rejected a dangerous pivot and
                        // refactorized instead; the incremental formula no
                        // longer applies to the rebuilt inverse.
                        y = self.btran_duals(cost);
                        y_exact = true;
                        candidates.clear();
                    } else {
                        for (yi, &rc) in y.iter_mut().zip(&rho) {
                            *yi += theta * rc;
                        }
                        y_exact = false;
                    }
                }
            }

            // Degeneracy bookkeeping for the Bland switch.
            let z = self.objective(cost);
            if z < best_obj - 1e-10 {
                best_obj = z;
                non_improving = 0;
            } else {
                non_improving += 1;
            }
        }
    }

    /// Snapshots the current basis for warm-starting a perturbed re-solve.
    /// Returns `None` when an artificial column is still basic (rare:
    /// degenerate phase-1 leftovers) — such a basis is not expressible over
    /// structurals + slacks alone.
    fn capture(&self, n: usize, fingerprint: u64) -> Option<LpWarmStart> {
        let nm = n + self.m;
        if self.basic.iter().any(|&c| (c as usize) >= nm) {
            return None;
        }
        Some(LpWarmStart {
            n,
            m: self.m,
            fingerprint,
            state: self.state[..nm].to_vec(),
            basic: self.basic.clone(),
            binv: self.binv.clone(),
            etas: self.etas_since_refresh,
        })
    }

    /// Dual simplex: starting from a dual-feasible basis whose basic
    /// values may violate their bounds (the state right after a bound or
    /// RHS perturbation), pivots until primal feasibility is restored.
    ///
    /// Uses the bounded-variable dual ratio test with bound flips. The
    /// duals are recomputed exactly every iteration (cheap: `c_B` is
    /// sparse in the paper's programs, see [`Tableau::btran_duals`]).
    /// Returns `Err(Infeasible)` when a violated row admits no entering
    /// column — the standard dual-simplex infeasibility certificate.
    fn dual_reoptimize(&mut self, cost: &[f64], iter_limit: usize) -> Result<()> {
        let m = self.m;
        // A healthy warm start repairs feasibility in a handful of pivots
        // (the perturbation touched one bound or one right-hand side), so
        // the dual phase gets a budget proportional to the basis size, far
        // below the global limit: a degenerate stall is cheaper to abandon
        // to the cold fallback than to grind through.
        let budget = iter_limit.min(self.iterations + 4 * m + 100);
        loop {
            if self.iterations >= budget {
                return Err(SolverError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            self.iterations += 1;
            if self.etas_since_refresh >= REFRESH_EVERY {
                self.refactorize()?;
            }

            // Leaving row: the basic variable with the largest bound
            // violation; `below` records which bound it will exit at.
            let mut leave: Option<(usize, f64, bool)> = None;
            for r in 0..m {
                let j = self.basic[r] as usize;
                if self.xb[r] < self.lo[j] - FEAS_TOL {
                    let v = self.lo[j] - self.xb[r];
                    if leave.is_none_or(|(_, bv, _)| v > bv) {
                        leave = Some((r, v, true));
                    }
                } else if self.xb[r] > self.hi[j] + FEAS_TOL {
                    let v = self.xb[r] - self.hi[j];
                    if leave.is_none_or(|(_, bv, _)| v > bv) {
                        leave = Some((r, v, false));
                    }
                }
            }
            let Some((r, _, below)) = leave else {
                return Ok(()); // primal feasible
            };

            let rho = self.binv_row(r);
            let y = self.btran_duals(cost);

            // Entering column: bounded dual ratio test. The leaving basic
            // moves toward its violated bound; xb[r] changes by
            // `-alpha_rj · Δx_j`, so eligibility is a sign condition on
            // `alpha_rj` and the entering variable's resting state.
            let mut best: Option<(f64, f64, usize)> = None; // (ratio, |alpha|, col)
            for j in 0..self.ncols {
                if self.state[j] == VState::Basic || self.lo[j] == self.hi[j] {
                    continue;
                }
                let mut alpha = 0.0;
                for &(row, a) in &self.cols[j] {
                    alpha += rho[row as usize] * a;
                }
                if alpha.abs() <= PIVOT_TOL {
                    continue;
                }
                // Required movement direction of the entering variable.
                let dx_sign = if below {
                    -alpha.signum()
                } else {
                    alpha.signum()
                };
                let ok = match self.state[j] {
                    VState::AtLower => dx_sign > 0.0,
                    VState::AtUpper => dx_sign < 0.0,
                    VState::FreeAtZero => true,
                    VState::Basic => unreachable!(),
                };
                if !ok {
                    continue;
                }
                let d = self.reduced_cost(j, cost, &y);
                let ratio = d.abs() / alpha.abs();
                let better = match best {
                    None => true,
                    Some((br, ba, _)) => {
                        ratio < br - 1e-12 || ((ratio - br).abs() <= 1e-12 && alpha.abs() > ba)
                    }
                };
                if better {
                    best = Some((ratio, alpha.abs(), j));
                }
            }
            let Some((_, _, j)) = best else {
                // No direction can push the violated basic toward its
                // bound: the perturbed LP is infeasible.
                return Err(SolverError::Infeasible);
            };

            let w = self.ftran(j);
            let wr = w[r];
            if wr.abs() < PIVOT_TOL {
                // The FTRAN disagrees with the row estimate — numerically
                // dangerous; rebuild the inverse and retry the iteration.
                self.refactorize()?;
                continue;
            }
            let leaving = self.basic[r] as usize;
            let target = if below {
                self.lo[leaving]
            } else {
                self.hi[leaving]
            };
            let dx = (self.xb[r] - target) / wr;

            // Bound flip: the entering variable would overshoot its own
            // opposite bound before the leaving one reaches `target`. Move
            // it bound-to-bound and pick a new pivot for this row.
            let range = self.hi[j] - self.lo[j];
            if range.is_finite() && dx.abs() > range + 1e-12 {
                let step = range.copysign(dx);
                for i in 0..m {
                    self.xb[i] -= w[i] * step;
                }
                self.state[j] = match self.state[j] {
                    VState::AtLower => VState::AtUpper,
                    VState::AtUpper => VState::AtLower,
                    s => s,
                };
                continue;
            }

            let enter_val = self.nonbasic_value(j) + dx;
            for i in 0..m {
                if i != r {
                    self.xb[i] -= w[i] * dx;
                }
            }
            self.xb[r] = enter_val;
            self.state[leaving] = if below {
                VState::AtLower
            } else {
                VState::AtUpper
            };
            self.state[j] = VState::Basic;
            self.basic[r] = j as u32;
            self.update_binv(r, &w)?;
        }
    }

    /// Applies the eta update for a pivot on row `r` with FTRAN column `w`.
    fn update_binv(&mut self, r: usize, w: &[f64]) -> Result<()> {
        let m = self.m;
        let pivot = w[r];
        if pivot.abs() < PIVOT_TOL {
            // Numerically dangerous pivot slipped through: refactorize.
            return self.refactorize();
        }
        for c in 0..m {
            let col = &mut self.binv[c * m..(c + 1) * m];
            let pr = col[r];
            if pr == 0.0 {
                continue;
            }
            let f = pr / pivot;
            for i in 0..m {
                if i != r {
                    col[i] -= w[i] * f;
                }
            }
            col[r] = f;
        }
        self.etas_since_refresh += 1;
        Ok(())
    }
}

/// Builds the standard form for `model`, choosing initial nonbasic values
/// and installing artificials where needed; returns the tableau plus the
/// set of artificial columns.
fn build(model: &Model) -> Result<(Tableau, Vec<usize>)> {
    let n = model.vars.len();
    let m = model.constrs.len();
    let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    let mut lo: Vec<f64> = model.vars.iter().map(|v| v.lo).collect();
    let mut hi: Vec<f64> = model.vars.iter().map(|v| v.hi).collect();
    let mut rhs = vec![0.0; m];

    for (r, c) in model.constrs.iter().enumerate() {
        rhs[r] = c.rhs;
        for &(v, a) in &c.terms {
            cols[v as usize].push((r as u32, a));
        }
    }

    // Slacks.
    for (r, c) in model.constrs.iter().enumerate() {
        cols.push(vec![(r as u32, 1.0)]);
        match c.cmp {
            Cmp::Le => {
                lo.push(0.0);
                hi.push(f64::INFINITY);
            }
            Cmp::Ge => {
                lo.push(f64::NEG_INFINITY);
                hi.push(0.0);
            }
            Cmp::Eq => {
                lo.push(0.0);
                hi.push(0.0);
            }
        }
    }

    // Initial nonbasic states for structurals: rest at the finite bound
    // closest to zero, or free-at-zero.
    let mut state = Vec::with_capacity(n + m);
    for j in 0..n {
        let s = if lo[j].is_finite() && hi[j].is_finite() {
            if hi[j].abs() < lo[j].abs() {
                VState::AtUpper
            } else {
                VState::AtLower
            }
        } else if lo[j].is_finite() {
            VState::AtLower
        } else if hi[j].is_finite() {
            VState::AtUpper
        } else {
            VState::FreeAtZero
        };
        state.push(s);
    }

    // Row residuals with structurals at their resting values.
    let mut act = vec![0.0; m];
    for j in 0..n {
        let v = match state[j] {
            VState::AtLower => lo[j],
            VState::AtUpper => hi[j],
            _ => 0.0,
        };
        if v != 0.0 {
            for &(row, a) in &cols[j] {
                act[row as usize] += a * v;
            }
        }
    }

    let mut basic = vec![0u32; m];
    let mut xb = vec![0.0; m];
    // Rows that cannot start with a feasible basic slack: (row, residual).
    let mut needs_artificial: Vec<(usize, f64)> = Vec::new();

    // First assign the slack state of every row (slack columns are
    // n..n+m, so their states must come before any artificial state).
    for r in 0..m {
        let slack = n + r;
        let need = rhs[r] - act[r]; // desired slack value
        if need >= lo[slack] - FEAS_TOL && need <= hi[slack] + FEAS_TOL {
            // Slack absorbs the residual: make it basic.
            basic[r] = slack as u32;
            xb[r] = need.clamp(lo[slack], hi[slack]);
            state.push(VState::Basic);
        } else {
            // Slack rests at its nearest bound; an artificial will absorb
            // the remaining residual with a positive value.
            let srest = if need < lo[slack] {
                lo[slack]
            } else {
                hi[slack]
            };
            state.push(if srest == lo[slack] {
                VState::AtLower
            } else {
                VState::AtUpper
            });
            needs_artificial.push((r, need - srest));
        }
    }

    // Then append the artificial columns (indices n+m..).
    let mut artificials = Vec::new();
    for (r, resid) in needs_artificial {
        let a_col = cols.len();
        cols.push(vec![(r as u32, resid.signum())]);
        lo.push(0.0);
        hi.push(f64::INFINITY);
        state.push(VState::Basic);
        basic[r] = a_col as u32;
        xb[r] = resid.abs();
        artificials.push(a_col);
    }

    let ncols = cols.len();
    let mut binv = vec![0.0; m * m];
    for r in 0..m {
        // B is diagonal: +1 for slacks, ±1 for artificials.
        let c = basic[r] as usize;
        let d = cols[c][0].1;
        binv[r * m + r] = 1.0 / d;
    }

    Ok((
        Tableau {
            m,
            ncols,
            cols,
            lo,
            hi,
            rhs,
            state,
            basic,
            xb,
            binv,
            iterations: 0,
            etas_since_refresh: 0,
        },
        artificials,
    ))
}

/// Rebuilds a [`Tableau`] around a warm-start basis: the standard-form
/// columns are reconstructed from the (possibly perturbed) model, the
/// basis and its inverse come from the snapshot, and no artificials are
/// installed — any primal infeasibility is left for the dual simplex.
/// Returns `None` when the snapshot's shape does not match the model.
fn build_from_warm(model: &Model, w: &LpWarmStart, fingerprint: u64) -> Option<Tableau> {
    let n = model.vars.len();
    let m = model.constrs.len();
    if w.n != n || w.m != m || w.state.len() != n + m || w.fingerprint != fingerprint {
        return None;
    }
    let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    let mut lo: Vec<f64> = model.vars.iter().map(|v| v.lo).collect();
    let mut hi: Vec<f64> = model.vars.iter().map(|v| v.hi).collect();
    let mut rhs = vec![0.0; m];
    for (r, c) in model.constrs.iter().enumerate() {
        rhs[r] = c.rhs;
        for &(v, a) in &c.terms {
            cols[v as usize].push((r as u32, a));
        }
    }
    for (r, c) in model.constrs.iter().enumerate() {
        cols.push(vec![(r as u32, 1.0)]);
        match c.cmp {
            Cmp::Le => {
                lo.push(0.0);
                hi.push(f64::INFINITY);
            }
            Cmp::Ge => {
                lo.push(f64::NEG_INFINITY);
                hi.push(0.0);
            }
            Cmp::Eq => {
                lo.push(0.0);
                hi.push(0.0);
            }
        }
    }

    // Repair nonbasic resting states against the (possibly moved) bounds:
    // a variable parked at a bound that no longer exists must rest
    // somewhere expressible.
    let mut state = w.state.clone();
    for j in 0..n + m {
        if state[j] == VState::Basic {
            continue;
        }
        state[j] = match state[j] {
            VState::AtLower if lo[j].is_finite() => VState::AtLower,
            VState::AtUpper if hi[j].is_finite() => VState::AtUpper,
            _ => {
                if lo[j].is_finite() {
                    VState::AtLower
                } else if hi[j].is_finite() {
                    VState::AtUpper
                } else {
                    VState::FreeAtZero
                }
            }
        };
    }

    let mut t = Tableau {
        m,
        ncols: n + m,
        cols,
        lo,
        hi,
        rhs,
        state,
        basic: w.basic.clone(),
        xb: vec![0.0; m],
        binv: w.binv.clone(),
        iterations: 0,
        etas_since_refresh: w.etas,
    };
    t.recompute_basics();
    Some(t)
}

/// Extracts the structural solution from an optimal tableau.
fn extract(model: &Model, t: &Tableau) -> Solution {
    let n = model.vars.len();
    let mut values = vec![0.0; n];
    for j in 0..n {
        values[j] = match t.state[j] {
            VState::Basic => 0.0, // filled below
            _ => t.nonbasic_value(j),
        };
    }
    for (r, &c) in t.basic.iter().enumerate() {
        if (c as usize) < n {
            values[c as usize] = t.xb[r];
        }
    }
    // Snap almost-at-bound values for cleanliness.
    for (j, v) in values.iter_mut().enumerate() {
        let (l, h) = (model.vars[j].lo, model.vars[j].hi);
        if l.is_finite() && (*v - l).abs() < 1e-9 {
            *v = l;
        }
        if h.is_finite() && (*v - h).abs() < 1e-9 {
            *v = h;
        }
    }
    let objective = model.objective_value(&values);
    Solution {
        values,
        objective,
        status: SolveStatus::Optimal,
        gap: 0.0,
        iterations: t.iterations,
        nodes: 1,
    }
}

/// Phase-2 cost vector of `model` over `ncols` tableau columns.
fn phase2_costs(model: &Model, ncols: usize) -> Vec<f64> {
    let minimize = matches!(model.sense, crate::Sense::Minimize);
    let mut c2 = vec![0.0; ncols];
    for (j, v) in model.vars.iter().enumerate() {
        c2[j] = if minimize { v.cost } else { -v.cost };
    }
    c2
}

/// Solves the continuous relaxation of `model`, optionally warm-starting
/// from a prior basis; returns the solution plus a basis snapshot for the
/// next link of the chain.
///
/// The warm path installs the snapshot, runs the **dual simplex** to
/// repair primal feasibility under the perturbed bounds / right-hand
/// sides, then the primal simplex to certify optimality (and absorb any
/// objective perturbation). Numerical trouble on the warm path falls back
/// to the cold two-phase solve, so a stale-but-same-shape basis can cost
/// time, never correctness — `Infeasible`/`Unbounded` are only returned
/// off certified pivots.
pub(crate) fn solve_warm(
    model: &Model,
    warm: Option<&LpWarmStart>,
) -> Result<(Solution, Option<LpWarmStart>)> {
    if model.constrs.is_empty() {
        return solve(model).map(|s| (s, None));
    }
    let n = model.vars.len();
    let fingerprint = structure_fingerprint(model);
    if let Some(w) = warm {
        if let Some(mut t) = build_from_warm(model, w, fingerprint) {
            let iter_limit = 200 * (t.m + t.ncols) + 20_000;
            let c2 = phase2_costs(model, t.ncols);
            let attempt = (|| -> Result<()> {
                if t.etas_since_refresh >= REFRESH_EVERY {
                    t.refactorize()?;
                }
                t.dual_reoptimize(&c2, iter_limit)?;
                t.optimize(&c2, iter_limit)
            })();
            match attempt {
                Ok(()) => {
                    let basis = t.capture(n, fingerprint);
                    return Ok((extract(model, &t), basis));
                }
                // Certified outcomes are final; anything else (iteration
                // limit, singular basis) retries cold below.
                Err(SolverError::Infeasible) => return Err(SolverError::Infeasible),
                Err(SolverError::Unbounded) => return Err(SolverError::Unbounded),
                Err(_) => {}
            }
        }
    }
    let t = solve_cold(model)?;
    let basis = t.capture(n, fingerprint);
    Ok((extract(model, &t), basis))
}

/// The cold two-phase solve: build with artificials, phase 1 when needed,
/// phase 2 to optimality. Returns the final tableau.
fn solve_cold(model: &Model) -> Result<Tableau> {
    let (mut t, artificials) = build(model)?;
    let iter_limit = 200 * (t.m + t.ncols) + 20_000;

    // Phase 1: minimize the artificial sum when any artificial is present.
    if !artificials.is_empty() {
        let mut c1 = vec![0.0; t.ncols];
        for &a in &artificials {
            c1[a] = 1.0;
        }
        t.optimize(&c1, iter_limit)?;
        let infeas = t.objective(&c1);
        if infeas > 1e-6 {
            return Err(SolverError::Infeasible);
        }
        // Freeze artificials at zero for phase 2.
        for &a in &artificials {
            t.lo[a] = 0.0;
            t.hi[a] = 0.0;
            if t.state[a] != VState::Basic {
                t.state[a] = VState::AtLower;
            }
        }
        // Clamp any residual basic artificial values.
        for r in 0..t.m {
            if artificials.contains(&(t.basic[r] as usize)) {
                t.xb[r] = 0.0;
            }
        }
    }

    // Phase 2.
    let c2 = phase2_costs(model, t.ncols);
    t.optimize(&c2, iter_limit)?;
    Ok(t)
}

/// Solves the continuous relaxation of `model`.
pub(crate) fn solve(model: &Model) -> Result<Solution> {
    // Degenerate case: no constraints — every variable sits at its best bound.
    if model.constrs.is_empty() {
        let minimize = matches!(model.sense, crate::Sense::Minimize);
        let mut values = Vec::with_capacity(model.vars.len());
        for v in &model.vars {
            let c = if minimize { v.cost } else { -v.cost };
            let x = if c > 0.0 {
                if v.lo.is_finite() {
                    v.lo
                } else {
                    return Err(SolverError::Unbounded);
                }
            } else if c < 0.0 {
                if v.hi.is_finite() {
                    v.hi
                } else {
                    return Err(SolverError::Unbounded);
                }
            } else if v.lo.is_finite() {
                v.lo
            } else if v.hi.is_finite() {
                v.hi
            } else {
                0.0
            };
            values.push(x);
        }
        let objective = model.objective_value(&values);
        return Ok(Solution {
            values,
            objective,
            status: SolveStatus::Optimal,
            gap: 0.0,
            iterations: 0,
            nodes: 1,
        });
    }

    let t = solve_cold(model)?;
    Ok(extract(model, &t))
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, Model, Sense, SolverError, VarKind};

    fn var(m: &mut Model, name: &str, lo: f64, hi: f64, cost: f64) -> crate::VarId {
        m.add_var(name, VarKind::Continuous, lo, hi, cost)
    }

    #[test]
    fn textbook_minimization() {
        // min x + y s.t. x + 2y >= 3, 3x + y >= 4 -> (1, 1), obj 2.
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", 0.0, f64::INFINITY, 1.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, 1.0);
        m.add_constr(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 3.0);
        m.add_constr(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 4.0);
        let s = m.solve_lp().unwrap();
        assert!((s.objective - 2.0).abs() < 1e-6, "obj = {}", s.objective);
        assert!((s.value(x) - 1.0).abs() < 1e-6);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> obj 36 at (2, 6).
        let mut m = Model::new(Sense::Maximize);
        let x = var(&mut m, "x", 0.0, f64::INFINITY, 3.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, 5.0);
        m.add_constr(vec![(x, 1.0)], Cmp::Le, 4.0);
        m.add_constr(vec![(y, 2.0)], Cmp::Le, 12.0);
        m.add_constr(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = m.solve_lp().unwrap();
        assert!((s.objective - 36.0).abs() < 1e-6);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y s.t. x + y = 10, x - y = 2 -> x = 6, y = 4, obj 14.
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", 0.0, f64::INFINITY, 1.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, 2.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        m.add_constr(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 2.0);
        let s = m.solve_lp().unwrap();
        assert!((s.value(x) - 6.0).abs() < 1e-6);
        assert!((s.value(y) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn upper_bounds_without_rows() {
        // max x + y with x, y in [0, 1] and x + y <= 1.5.
        let mut m = Model::new(Sense::Maximize);
        let x = var(&mut m, "x", 0.0, 1.0, 1.0);
        let y = var(&mut m, "y", 0.0, 1.0, 1.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.5);
        let s = m.solve_lp().unwrap();
        assert!((s.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", 0.0, 1.0, 1.0);
        m.add_constr(vec![(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(m.solve_lp().unwrap_err(), SolverError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = var(&mut m, "x", 0.0, f64::INFINITY, 1.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, 0.0);
        m.add_constr(vec![(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
        assert_eq!(m.solve_lp().unwrap_err(), SolverError::Unbounded);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x with x in [-5, 5], x >= -3 -> x = -3.
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", -5.0, 5.0, 1.0);
        m.add_constr(vec![(x, 1.0)], Cmp::Ge, -3.0);
        let s = m.solve_lp().unwrap();
        assert!((s.value(x) + 3.0).abs() < 1e-6);
    }

    #[test]
    fn free_variables() {
        // min x + y, x free, y >= 0, x + y >= 4, x <= 1 (via row) -> x=1,y=3? cost 4.
        // Actually optimum: x as large as allowed (1), y = 3 -> obj 4; or x
        // smaller makes y bigger, same cost. Unique optimum when cost y = 2.
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, 2.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        m.add_constr(vec![(x, 1.0)], Cmp::Le, 1.0);
        let s = m.solve_lp().unwrap();
        assert!((s.objective - 7.0).abs() < 1e-6, "obj = {}", s.objective);
        assert!((s.value(x) - 1.0).abs() < 1e-6);
        assert!((s.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", 2.0, 2.0, 1.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, 1.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        let s = m.solve_lp().unwrap();
        assert!((s.value(x) - 2.0).abs() < 1e-9);
        assert!((s.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn no_constraints_picks_best_bounds() {
        let mut m = Model::new(Sense::Maximize);
        let x = var(&mut m, "x", 0.0, 7.0, 2.0);
        let y = var(&mut m, "y", -1.0, 3.0, -1.0);
        let s = m.solve_lp().unwrap();
        assert!((s.value(x) - 7.0).abs() < 1e-9);
        assert!((s.value(y) + 1.0).abs() < 1e-9);
        assert!((s.objective - 15.0).abs() < 1e-9);
    }

    #[test]
    fn no_constraints_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        var(&mut m, "x", 0.0, f64::INFINITY, 1.0);
        assert_eq!(m.solve_lp().unwrap_err(), SolverError::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Highly degenerate: many redundant constraints through the origin.
        let mut m = Model::new(Sense::Minimize);
        let x = var(&mut m, "x", 0.0, f64::INFINITY, -1.0);
        let y = var(&mut m, "y", 0.0, f64::INFINITY, -1.0);
        for i in 1..=8 {
            m.add_constr(vec![(x, i as f64), (y, 1.0)], Cmp::Le, i as f64);
        }
        let s = m.solve_lp().unwrap();
        // max x + y s.t. ix + y <= i: optimum x=1,y=0 -> -1? Check x=0,y=1
        // also satisfies all (y <= i). obj -1 either way... actually
        // x=6/7,y=6/7 satisfies x+y<=1? row i=1: x+y<=1. So optimum -1.
        assert!((s.objective + 1.0).abs() < 1e-6, "obj = {}", s.objective);
    }

    #[test]
    fn lp_relaxation_of_cover() {
        // Fractional set cover: 3 elements, sets {1,2}, {2,3}, {1,3};
        // LP optimum is x = 1/2 each, objective 1.5.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_var("a", VarKind::Binary, 0.0, 1.0, 1.0);
        let b = m.add_var("b", VarKind::Binary, 0.0, 1.0, 1.0);
        let c = m.add_var("c", VarKind::Binary, 0.0, 1.0, 1.0);
        m.add_constr(vec![(a, 1.0), (c, 1.0)], Cmp::Ge, 1.0);
        m.add_constr(vec![(a, 1.0), (b, 1.0)], Cmp::Ge, 1.0);
        m.add_constr(vec![(b, 1.0), (c, 1.0)], Cmp::Ge, 1.0);
        let s = m.solve_lp().unwrap();
        assert!((s.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn larger_random_lp_is_feasible_and_bounded() {
        // A covering LP with 40 vars and 25 rows; verifies the solution via
        // the model's own feasibility checker.
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..40)
            .map(|i| {
                m.add_var(
                    format!("x{i}"),
                    VarKind::Continuous,
                    0.0,
                    1.0,
                    1.0 + (i % 3) as f64,
                )
            })
            .collect();
        for r in 0..25usize {
            let terms: Vec<_> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| (i + r) % 4 == 0 || (i * 7 + r * 3) % 5 == 0)
                .map(|(i, &v)| (v, 1.0 + ((i + r) % 2) as f64))
                .collect();
            m.add_constr(terms, Cmp::Ge, 2.0);
        }
        let s = m.solve_lp().unwrap();
        // Continuous model: integrality not enforced, values pass as-is.
        m.check_feasible(&s.values, 1e-6).unwrap();
        assert!(s.objective > 0.0);
    }
}
