use crate::VarId;

/// Quality of the solution returned by a solve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Proven optimal (within tolerances).
    Optimal,
    /// Feasible but optimality was not proven (a node/time limit was hit);
    /// the associated bound gap is stored in [`Solution::gap`].
    Feasible,
}

/// A primal solution of an LP or MIP.
#[derive(Debug, Clone)]
pub struct Solution {
    /// One value per model variable, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Objective value in the model's own sense (i.e. already negated back
    /// for maximization problems).
    pub objective: f64,
    /// Whether optimality was proven.
    pub status: SolveStatus,
    /// Relative optimality gap `|objective - bound| / max(1, |objective|)`;
    /// zero for [`SolveStatus::Optimal`].
    pub gap: f64,
    /// Simplex iterations performed (summed over branch-and-bound nodes).
    pub iterations: usize,
    /// Branch-and-bound nodes explored (1 for pure LPs).
    pub nodes: usize,
    /// Deterministic work units spent producing this solution: simplex
    /// iterations + basis refactorizations (+ branch-and-bound nodes for
    /// MIP solves). This is the unit [`crate::MipOptions::work_budget`]
    /// meters, so `work` from an uninterrupted solve is a sufficient
    /// budget to reproduce it bitwise.
    pub work: u64,
}

impl Solution {
    /// Value of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the solved model.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// `true` when variable `v` is within `tol` of 1 — convenience for the
    /// 0–1 placement variables used throughout the paper.
    pub fn is_one(&self, v: VarId, tol: f64) -> bool {
        (self.value(v) - 1.0).abs() <= tol
    }
}
