use crate::branch_bound::{self, MipOptions, MipOutcome, MipWarmStart};
use crate::simplex::LpWarmStart;
use crate::{simplex, Result, Solution, SolverError};

/// Identifier of a decision variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

/// Identifier of a linear constraint in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstrId(pub(crate) u32);

impl VarId {
    /// Dense index of this variable, usable with [`Solution::values`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ConstrId {
    /// Dense index of this constraint.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

/// Continuity class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds (branch-and-bound enforces this).
    Integer,
    /// Shorthand for an integer variable with bounds `[0, 1]` — the `x_e`
    /// and `y_i` placement variables of the paper.
    Binary,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub lo: f64,
    pub hi: f64,
    pub cost: f64,
    pub integer: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    /// Sparse row: (variable index, coefficient), deduplicated and sorted.
    pub terms: Vec<(u32, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// FNV-1a offset basis (shared by the per-column fingerprints and the
/// scaling fingerprints in [`crate::scaling`]).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Feeds one 8-byte word into an FNV-1a state.
pub(crate) fn fnv_step(mut h: u64, x: u64) -> u64 {
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A linear program / mixed-integer linear program under construction.
///
/// Variables and constraints are added incrementally; [`Model::solve_lp`]
/// solves the continuous relaxation (ignoring integrality marks) and
/// [`Model::solve_mip`] enforces integrality with branch-and-bound.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constrs: Vec<Constraint>,
    /// Compressed sparse-column view of the constraint matrix: per
    /// structural variable, its `(row, coefficient)` entries with rows
    /// ascending. Maintained incrementally by [`Model::try_add_constr`] /
    /// [`Model::set_constr`] so presolve and both simplex variants share
    /// one column store instead of re-deriving it from the rows per solve.
    pub(crate) cols: Vec<Vec<(u32, f64)>>,
    /// Structural fingerprint per column (FNV-1a over the column's
    /// `(row, coefficient)` entries). [`Model::set_constr`] re-hashes only
    /// the columns it touched, and warm-start validity is judged on the
    /// fingerprints of the *basic* columns alone — an edit to a column
    /// outside the stored basis keeps the snapshot reusable.
    pub(crate) col_fp: Vec<u64>,
    /// Optional warm-start solution (values for all variables) used as the
    /// initial incumbent by branch-and-bound.
    pub(crate) initial: Option<Vec<f64>>,
}

impl Model {
    /// Creates an empty model with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            vars: Vec::new(),
            constrs: Vec::new(),
            cols: Vec::new(),
            col_fp: Vec::new(),
            initial: None,
        }
    }

    /// Adds a variable and returns its id.
    ///
    /// `lo`/`hi` may be infinite for one-sided bounds. [`VarKind::Binary`]
    /// forces bounds `[0, 1]` regardless of the arguments.
    ///
    /// # Panics
    ///
    /// Panics on NaN data or `lo > hi`; use [`Model::try_add_var`] for a
    /// fallible variant.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lo: f64,
        hi: f64,
        cost: f64,
    ) -> VarId {
        self.try_add_var(name, kind, lo, hi, cost)
            .expect("invalid variable")
    }

    /// Fallible variant of [`Model::add_var`].
    pub fn try_add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lo: f64,
        hi: f64,
        cost: f64,
    ) -> Result<VarId> {
        let name = name.into();
        let (lo, hi) = match kind {
            VarKind::Binary => (0.0, 1.0),
            _ => (lo, hi),
        };
        if lo.is_nan() || hi.is_nan() || lo > hi || lo == f64::INFINITY || hi == f64::NEG_INFINITY {
            return Err(SolverError::InvalidBounds { name, lo, hi });
        }
        if !cost.is_finite() {
            return Err(SolverError::InvalidCoefficient {
                context: format!("objective coefficient of {name}"),
                value: cost,
            });
        }
        let integer = !matches!(kind, VarKind::Continuous);
        let id = VarId(self.vars.len() as u32);
        self.vars.push(Variable {
            name,
            lo,
            hi,
            cost,
            integer,
        });
        self.cols.push(Vec::new());
        self.col_fp.push(FNV_OFFSET);
        Ok(id)
    }

    /// Adds the linear constraint `Σ coeff·var  cmp  rhs` and returns its id.
    ///
    /// Repeated variables in `terms` are summed. Zero coefficients are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics on unknown variables or non-finite data; use
    /// [`Model::try_add_constr`] for a fallible variant.
    pub fn add_constr(&mut self, terms: Vec<(VarId, f64)>, cmp: Cmp, rhs: f64) -> ConstrId {
        self.try_add_constr(terms, cmp, rhs)
            .expect("invalid constraint")
    }

    /// Fallible variant of [`Model::add_constr`].
    pub fn try_add_constr(
        &mut self,
        terms: Vec<(VarId, f64)>,
        cmp: Cmp,
        rhs: f64,
    ) -> Result<ConstrId> {
        let row_idx = self.constrs.len();
        if !rhs.is_finite() {
            return Err(SolverError::InvalidCoefficient {
                context: format!("rhs of constraint {row_idx}"),
                value: rhs,
            });
        }
        let merged = self.normalize_terms(terms, row_idx)?;
        // Extend the column store: rows arrive in ascending order, so an
        // append keeps each column sorted, and the column fingerprint
        // extends its FNV chain without a re-hash.
        for &(v, a) in &merged {
            self.cols[v as usize].push((row_idx as u32, a));
            self.col_fp[v as usize] = fnv_step(
                fnv_step(self.col_fp[v as usize], row_idx as u64),
                a.to_bits(),
            );
        }
        let id = ConstrId(row_idx as u32);
        self.constrs.push(Constraint {
            terms: merged,
            cmp,
            rhs,
        });
        Ok(id)
    }

    /// Validates, sorts, merges, and zero-prunes a raw term list for row
    /// `row_idx` (shared by [`Model::try_add_constr`] and
    /// [`Model::try_set_constr`]).
    fn normalize_terms(&self, terms: Vec<(VarId, f64)>, row_idx: usize) -> Result<Vec<(u32, f64)>> {
        let mut dense: Vec<(u32, f64)> = Vec::with_capacity(terms.len());
        for (v, a) in terms {
            if v.index() >= self.vars.len() {
                return Err(SolverError::InvalidVar {
                    var: v.index(),
                    var_count: self.vars.len(),
                });
            }
            if !a.is_finite() {
                return Err(SolverError::InvalidCoefficient {
                    context: format!(
                        "constraint {row_idx}, variable {}",
                        self.vars[v.index()].name
                    ),
                    value: a,
                });
            }
            dense.push((v.0, a));
        }
        dense.sort_by_key(|&(v, _)| v);
        // Merge duplicates, drop exact zeros.
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(dense.len());
        for (v, a) in dense {
            match merged.last_mut() {
                Some((lv, la)) if *lv == v => *la += a,
                _ => merged.push((v, a)),
            }
        }
        merged.retain(|&(_, a)| a != 0.0);
        Ok(merged)
    }

    /// Overwrites the coefficients of constraint `c` (comparison and
    /// right-hand side are kept; use [`Model::set_rhs`] for the latter).
    ///
    /// Only the columns named by the old or new term list are re-hashed,
    /// so a warm start whose basis avoids those columns stays valid (see
    /// [`crate::LpWarmStart`]).
    ///
    /// # Panics
    ///
    /// Panics on unknown variables or non-finite coefficients; use
    /// [`Model::try_set_constr`] for a fallible variant.
    pub fn set_constr(&mut self, c: ConstrId, terms: Vec<(VarId, f64)>) {
        self.try_set_constr(c, terms).expect("invalid constraint");
    }

    /// Fallible variant of [`Model::set_constr`].
    pub fn try_set_constr(&mut self, c: ConstrId, terms: Vec<(VarId, f64)>) -> Result<()> {
        let row = c.index();
        if row >= self.constrs.len() {
            return Err(SolverError::InvalidConstr {
                constr: row,
                constr_count: self.constrs.len(),
            });
        }
        let merged = self.normalize_terms(terms, row)?;
        let old = std::mem::replace(&mut self.constrs[row].terms, merged.clone());
        // Touched columns: union of the old and new support.
        let mut touched: Vec<u32> = old.iter().chain(&merged).map(|&(v, _)| v).collect();
        touched.sort_unstable();
        touched.dedup();
        for &v in &touched {
            let col = &mut self.cols[v as usize];
            // Drop the old entry for this row (columns are row-sorted).
            if let Ok(i) = col.binary_search_by_key(&(row as u32), |e| e.0) {
                col.remove(i);
            }
            // Insert the new entry, keeping the sort.
            if let Ok(i) = merged.binary_search_by_key(&v, |e| e.0) {
                let a = merged[i].1;
                let at = col.partition_point(|e| e.0 < row as u32);
                col.insert(at, (row as u32, a));
            }
            // Re-hash only this column.
            let mut h = FNV_OFFSET;
            for &(r, a) in self.cols[v as usize].iter() {
                h = fnv_step(fnv_step(h, r as u64), a.to_bits());
            }
            self.col_fp[v as usize] = h;
        }
        Ok(())
    }

    /// Folds fixed variable `j` (value `val`) out of every row containing
    /// it, shifting right-hand sides. Uses the column store to touch only
    /// the rows that actually hold `j` — the presolve fast path. Returns
    /// whether any row changed.
    pub(crate) fn fold_out_var(&mut self, j: usize, val: f64) -> bool {
        let entries = std::mem::take(&mut self.cols[j]);
        if entries.is_empty() {
            return false;
        }
        for &(row, a) in &entries {
            let c = &mut self.constrs[row as usize];
            c.rhs -= a * val;
            if let Ok(i) = c.terms.binary_search_by_key(&(j as u32), |t| t.0) {
                c.terms.remove(i);
            }
        }
        self.col_fp[j] = FNV_OFFSET;
        true
    }

    /// Combined structural fingerprint of the columns in `basic`
    /// (structural columns only — slack columns are fully determined by
    /// their row's comparison operator, which a warm-start rebuild re-reads
    /// from the model). Order-independent, so it can be compared against a
    /// snapshot taken from the same basic set.
    pub(crate) fn basis_fingerprint(&self, basic: &[u32]) -> u64 {
        let n = self.vars.len();
        let mut h = 0u64;
        for &c in basic {
            if (c as usize) < n {
                h = h.wrapping_add(fnv_step(
                    fnv_step(FNV_OFFSET, c as u64),
                    self.col_fp[c as usize],
                ));
            }
        }
        h
    }

    /// Overwrites the objective coefficient of `v`.
    pub fn set_cost(&mut self, v: VarId, cost: f64) {
        self.vars[v.index()].cost = cost;
    }

    /// Tightens/overwrites the bounds of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn set_bounds(&mut self, v: VarId, lo: f64, hi: f64) {
        assert!(
            !lo.is_nan() && !hi.is_nan() && lo <= hi,
            "invalid bounds [{lo}, {hi}]"
        );
        let var = &mut self.vars[v.index()];
        var.lo = lo;
        var.hi = hi;
    }

    /// Fixes `v` to `value` (used for the incremental-deployment variant of
    /// the paper, where already-installed devices have `x_e = 1`).
    pub fn fix_var(&mut self, v: VarId, value: f64) {
        self.set_bounds(v, value, value);
    }

    /// Overwrites the right-hand side of constraint `c` — the perturbation
    /// behind warm-started sweep chains (e.g. the coverage target of the
    /// paper's `PPM(k)` program moving along a `k` grid).
    ///
    /// # Panics
    ///
    /// Panics when `rhs` is not finite.
    pub fn set_rhs(&mut self, c: ConstrId, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite, got {rhs}");
        self.constrs[c.index()].rhs = rhs;
    }

    /// Supplies a warm-start solution used as the initial incumbent by
    /// [`Model::solve_mip`] (it is validated for feasibility first, and
    /// ignored when infeasible).
    pub fn set_initial_solution(&mut self, values: Vec<f64>) {
        self.initial = Some(values);
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn constr_count(&self) -> usize {
        self.constrs.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// The [`VarId`] at dense index `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn var(&self, i: usize) -> VarId {
        assert!(i < self.vars.len(), "variable index {i} out of range");
        VarId(i as u32)
    }

    /// The [`ConstrId`] at dense index `i` (insertion order).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn constr(&self, i: usize) -> ConstrId {
        assert!(i < self.constrs.len(), "constraint index {i} out of range");
        ConstrId(i as u32)
    }

    /// Ids of all integer/binary variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.integer)
            .map(|(i, _)| VarId(i as u32))
            .collect()
    }

    /// Evaluates the objective of an assignment (in the model's sense).
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.vars.iter().zip(values).map(|(v, &x)| v.cost * x).sum()
    }

    /// Checks an assignment against bounds and constraints with *relative*
    /// tolerance `tol`: a bound may be exceeded by `tol · (1 + |bound|)`
    /// and a row by `tol · (1 + |rhs| + Σ|aᵢⱼ·xⱼ|)` — the same
    /// scale-relative contract the solver itself certifies against (see
    /// [`crate::tol`]), so a solution accepted at unit scale stays
    /// accepted under an exact power-of-two rescaling of the model.
    /// Returns a description of the first violation found.
    pub fn check_feasible(&self, values: &[f64], tol: f64) -> std::result::Result<(), String> {
        if values.len() != self.vars.len() {
            return Err(format!(
                "expected {} values, got {}",
                self.vars.len(),
                values.len()
            ));
        }
        for (i, v) in self.vars.iter().enumerate() {
            let x = values[i];
            let eps = |b: f64| {
                if b.is_finite() {
                    tol * (1.0 + b.abs())
                } else {
                    tol
                }
            };
            if x < v.lo - eps(v.lo) || x > v.hi + eps(v.hi) {
                return Err(format!(
                    "variable {} = {x} outside [{}, {}]",
                    v.name, v.lo, v.hi
                ));
            }
            if v.integer && !crate::tol::is_int(x) {
                return Err(format!("variable {} = {x} not integral", v.name));
            }
        }
        for (r, c) in self.constrs.iter().enumerate() {
            let mut lhs = 0.0f64;
            let mut mag = 0.0f64;
            for &(v, a) in &c.terms {
                let t = a * values[v as usize];
                lhs += t;
                mag += t.abs();
            }
            let eps = tol * (1.0 + c.rhs.abs() + mag);
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + eps,
                Cmp::Eq => (lhs - c.rhs).abs() <= eps,
                Cmp::Ge => lhs >= c.rhs - eps,
            };
            if !ok {
                return Err(format!("constraint {r}: lhs = {lhs} vs rhs = {}", c.rhs));
            }
        }
        Ok(())
    }

    /// Builds an *equivalent* model under a power-of-two change of
    /// variables and row scaling: variable `j` is substituted by
    /// `x_j = 2^col_pow[j] · y_j` and row `i` multiplied by
    /// `2^row_pow[i]`. Powers of two are exact in binary floating point,
    /// so the rescaled model has exactly the same optimal objective and
    /// feasibility status as `self` — it only *looks* badly scaled.
    ///
    /// Integer/binary variables keep scale 1 regardless of `col_pow`
    /// (integrality is not preserved under non-unit substitution). An
    /// initial solution is transformed along. This is the generator behind
    /// the ill-conditioning differential tests and the
    /// `simplex_illcond_25router` bench stage.
    ///
    /// # Panics
    ///
    /// Panics when `row_pow`/`col_pow` do not match the constraint /
    /// variable counts.
    pub fn equivalently_rescaled(&self, row_pow: &[i32], col_pow: &[i32]) -> Model {
        assert_eq!(row_pow.len(), self.constrs.len(), "row_pow length");
        assert_eq!(col_pow.len(), self.vars.len(), "col_pow length");
        let s: Vec<f64> = self
            .vars
            .iter()
            .zip(col_pow)
            .map(|(v, &p)| if v.integer { 1.0 } else { (p as f64).exp2() })
            .collect();
        let mut out = Model::new(self.sense);
        for (j, v) in self.vars.iter().enumerate() {
            let kind = if v.integer {
                VarKind::Integer
            } else {
                VarKind::Continuous
            };
            out.add_var(
                v.name.clone(),
                kind,
                v.lo / s[j],
                v.hi / s[j],
                v.cost * s[j],
            );
        }
        for (i, c) in self.constrs.iter().enumerate() {
            let t = (row_pow[i] as f64).exp2();
            let terms: Vec<(VarId, f64)> = c
                .terms
                .iter()
                .map(|&(v, a)| (VarId(v), a * t * s[v as usize]))
                .collect();
            out.add_constr(terms, c.cmp, c.rhs * t);
        }
        if let Some(init) = &self.initial {
            out.initial = Some(init.iter().zip(&s).map(|(&x, &sj)| x / sj).collect());
        }
        out
    }

    /// Solves the continuous relaxation (integrality marks ignored).
    pub fn solve_lp(&self) -> Result<Solution> {
        simplex::solve(self)
    }

    /// Solves the continuous relaxation, optionally warm-starting from the
    /// basis of a previous solve of the *same-structured* model (see
    /// [`LpWarmStart`] for the contract), and returns the solution plus a
    /// basis snapshot for the next re-solve.
    ///
    /// With `None` (or a shape-incompatible snapshot) this is a cold
    /// [`Model::solve_lp`] that additionally captures the basis. After
    /// bound or right-hand-side perturbations the warm path re-optimizes
    /// with the dual simplex — typically a handful of pivots instead of a
    /// full two-phase solve.
    pub fn solve_lp_warm(
        &self,
        warm: Option<&LpWarmStart>,
    ) -> Result<(Solution, Option<LpWarmStart>)> {
        simplex::solve_warm(self, warm)
    }

    /// Solves the mixed-integer program with default options.
    pub fn solve_mip(&self) -> Result<Solution> {
        branch_bound::solve(self, &MipOptions::default(), None).map(|(s, _)| s)
    }

    /// Solves the mixed-integer program with explicit options.
    pub fn solve_mip_with(&self, opts: &MipOptions) -> Result<Solution> {
        branch_bound::solve(self, opts, None).map(|(s, _)| s)
    }

    /// Solves the mixed-integer program, warm-starting the root LP from a
    /// previous [`Model::solve_mip_warm`] of a perturbed sibling model and
    /// returning the root basis for the next link of the chain.
    ///
    /// This is the cross-sweep-point reuse layer: a `k`-grid of `PPM(k)`
    /// programs differs only in one right-hand side, so each point's root
    /// relaxation starts from the previous point's optimal basis. Within a
    /// single call, enable [`MipOptions::warm_basis`] to also reuse parent
    /// bases across branch-and-bound nodes.
    pub fn solve_mip_warm(
        &self,
        opts: &MipOptions,
        warm: Option<&MipWarmStart>,
    ) -> Result<(Solution, Option<MipWarmStart>)> {
        branch_bound::solve(self, opts, warm)
    }

    /// Solves the mixed-integer program under the anytime contract: when
    /// [`MipOptions::work_budget`] trips mid-search this returns
    /// [`MipOutcome::Interrupted`] carrying the best incumbent found and the
    /// sharpest dual bound proven, instead of an error. With no budget (or a
    /// budget at least as large as the uninterrupted solve's
    /// [`Solution::work`]) the result is [`MipOutcome::Complete`] and is
    /// bitwise identical to [`Model::solve_mip_warm`].
    pub fn solve_mip_anytime(
        &self,
        opts: &MipOptions,
        warm: Option<&MipWarmStart>,
    ) -> Result<(MipOutcome, Option<MipWarmStart>)> {
        branch_bound::solve_outcome(self, opts, warm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_kind_forces_unit_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Binary, -5.0, 5.0, 1.0);
        assert_eq!(m.vars[x.index()].lo, 0.0);
        assert_eq!(m.vars[x.index()].hi, 1.0);
        assert!(m.vars[x.index()].integer);
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 0.0);
        let c = m.add_constr(vec![(x, 1.0), (x, 2.0), (x, -3.0)], Cmp::Le, 1.0);
        assert!(m.constrs[c.index()].terms.is_empty()); // 1 + 2 - 3 = 0 dropped
    }

    #[test]
    fn rejects_bad_bounds() {
        let mut m = Model::new(Sense::Minimize);
        assert!(m
            .try_add_var("x", VarKind::Continuous, 2.0, 1.0, 0.0)
            .is_err());
        assert!(m
            .try_add_var("x", VarKind::Continuous, f64::NAN, 1.0, 0.0)
            .is_err());
        assert!(m
            .try_add_var("x", VarKind::Continuous, f64::INFINITY, f64::INFINITY, 0.0)
            .is_err());
    }

    #[test]
    fn try_set_constr_rejects_foreign_constr_id() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 0.0);
        m.add_constr(vec![(x, 1.0)], Cmp::Le, 1.0);
        let ghost = ConstrId(7);
        assert!(matches!(
            m.try_set_constr(ghost, vec![(x, 2.0)]),
            Err(SolverError::InvalidConstr {
                constr: 7,
                constr_count: 1
            })
        ));
    }

    #[test]
    fn rejects_unknown_var_in_constraint() {
        let mut m = Model::new(Sense::Minimize);
        let _x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 0.0);
        let ghost = VarId(9);
        assert!(m.try_add_constr(vec![(ghost, 1.0)], Cmp::Le, 1.0).is_err());
    }

    #[test]
    fn rejects_nan_coefficient() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 0.0);
        assert!(m.try_add_constr(vec![(x, f64::NAN)], Cmp::Le, 1.0).is_err());
        assert!(m
            .try_add_constr(vec![(x, 1.0)], Cmp::Le, f64::INFINITY)
            .is_err());
    }

    #[test]
    fn feasibility_checker_reports_violations() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Binary, 0.0, 1.0, 1.0);
        m.add_constr(vec![(x, 1.0)], Cmp::Ge, 1.0);
        assert!(m.check_feasible(&[1.0], 1e-9).is_ok());
        assert!(m.check_feasible(&[0.0], 1e-9).is_err()); // constraint violated
        assert!(m.check_feasible(&[0.5], 1e-9).is_err()); // not integral
        assert!(m.check_feasible(&[2.0], 1e-9).is_err()); // out of bounds
        assert!(m.check_feasible(&[], 1e-9).is_err()); // wrong arity
    }

    #[test]
    fn objective_value_respects_costs() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 2.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 1.0, -1.0);
        let _ = (x, y);
        assert_eq!(m.objective_value(&[1.0, 1.0]), 1.0);
    }
}
