//! Presolve reductions applied before branch-and-bound.
//!
//! Three passes run to fixpoint:
//!
//! 1. **Fixed-variable substitution** — variables with `lo == hi` are
//!    removed and folded into right-hand sides (this is also how the
//!    incremental-deployment variant of the paper gets cheap: installed
//!    devices enter as fixed `x_e = 1`).
//! 2. **Singleton rows** — a row with one variable is a bound; it is
//!    converted into a bound tightening (with integral rounding for
//!    integer variables) and dropped.
//! 3. **Redundant rows** — rows whose worst-case activity over the variable
//!    bounds already satisfies the comparison are dropped; rows whose
//!    best-case activity cannot reach it prove infeasibility.

use crate::model::{Cmp, Model};
use crate::{tol, Result, SolverError, FEAS_TOL};

/// Disposition of an original variable after presolve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum VarMap {
    /// Kept, at this index in the reduced model.
    Kept(usize),
    /// Fixed to a constant and removed.
    Fixed(f64),
}

/// A reduced model together with the mapping back to the original space.
#[derive(Debug, Clone)]
pub(crate) struct Presolved {
    pub model: Model,
    map: Vec<VarMap>,
}

impl Presolved {
    /// Expands reduced-space values to the original variable space.
    pub fn expand(&self, reduced: &[f64]) -> Vec<f64> {
        self.map
            .iter()
            .map(|m| match *m {
                VarMap::Kept(j) => reduced[j],
                VarMap::Fixed(v) => v,
            })
            .collect()
    }

    /// Projects original-space values down to the reduced space.
    pub fn reduce(&self, full: &[f64]) -> Vec<f64> {
        let kept = self
            .map
            .iter()
            .filter(|m| matches!(m, VarMap::Kept(_)))
            .count();
        let mut out = vec![0.0; kept];
        for (i, m) in self.map.iter().enumerate() {
            if let VarMap::Kept(j) = *m {
                out[j] = full[i];
            }
        }
        out
    }
}

/// The no-op presolve used when reductions are disabled.
pub(crate) fn identity(model: &Model) -> Presolved {
    Presolved {
        model: model.clone(),
        map: (0..model.vars.len()).map(VarMap::Kept).collect(),
    }
}

/// Runs the reductions; errors with [`SolverError::Infeasible`] when a row
/// is proven unsatisfiable.
pub(crate) fn presolve(model: &Model) -> Result<Presolved> {
    let mut m = model.clone();
    // Working bounds (tightened in place) and fixation values.
    let mut fixed: Vec<Option<f64>> = vec![None; m.vars.len()];
    let mut live_rows: Vec<bool> = vec![true; m.constrs.len()];

    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 10 {
        changed = false;
        rounds += 1;

        // Pass 1: detect fixed variables (range below the scale-relative
        // fix epsilon counts as fixed).
        for (j, v) in m.vars.iter().enumerate() {
            if fixed[j].is_none() && (v.hi - v.lo).abs() <= tol::fix_eps(v.lo) {
                if v.integer && !tol::is_int(v.lo) {
                    return Err(SolverError::Infeasible);
                }
                fixed[j] = Some(v.lo);
                changed = true;
            }
        }

        // Fold fixations into rows via the model's column store: only the
        // rows that actually contain a fixed variable are touched (the
        // rows, right-hand sides, and per-column fingerprints all stay in
        // sync; a second fold of the same variable is a no-op because its
        // column is already empty).
        for (j, f) in fixed.iter().enumerate() {
            if let Some(val) = *f {
                changed |= m.fold_out_var(j, val);
            }
        }

        // Pass 2 & 3: singleton and redundant rows.
        for r in 0..m.constrs.len() {
            if !live_rows[r] {
                continue;
            }
            let (terms, cmp, rhs) = (
                m.constrs[r].terms.clone(),
                m.constrs[r].cmp,
                m.constrs[r].rhs,
            );

            if terms.is_empty() {
                let eps = FEAS_TOL * (1.0 + rhs.abs());
                let ok = match cmp {
                    Cmp::Le => 0.0 <= rhs + eps,
                    Cmp::Eq => rhs.abs() <= eps,
                    Cmp::Ge => 0.0 >= rhs - eps,
                };
                if !ok {
                    return Err(SolverError::Infeasible);
                }
                live_rows[r] = false;
                changed = true;
                continue;
            }

            if terms.len() == 1 {
                let (vj, a) = terms[0];
                let j = vj as usize;
                let var = &mut m.vars[j];
                // a * x  cmp  rhs  →  bound on x, direction flips with sign.
                let bound = rhs / a;
                match (cmp, a > 0.0) {
                    (Cmp::Le, true) | (Cmp::Ge, false) => {
                        let b = if var.integer {
                            (bound + tol::int_eps(bound)).floor()
                        } else {
                            bound
                        };
                        if b < var.hi {
                            var.hi = b;
                        }
                    }
                    (Cmp::Ge, true) | (Cmp::Le, false) => {
                        let b = if var.integer {
                            (bound - tol::int_eps(bound)).ceil()
                        } else {
                            bound
                        };
                        if b > var.lo {
                            var.lo = b;
                        }
                    }
                    (Cmp::Eq, _) => {
                        var.lo = var.lo.max(bound);
                        var.hi = var.hi.min(bound);
                    }
                }
                if var.lo > var.hi + tol::fix_eps(var.hi) {
                    return Err(SolverError::Infeasible);
                }
                live_rows[r] = false;
                changed = true;
                continue;
            }

            // Activity bounds.
            let mut min_act = 0.0f64;
            let mut max_act = 0.0f64;
            for &(v, a) in &terms {
                let var = &m.vars[v as usize];
                let (l, h) = (var.lo, var.hi);
                if a > 0.0 {
                    min_act += a * l;
                    max_act += a * h;
                } else {
                    min_act += a * h;
                    max_act += a * l;
                }
            }
            // Scale-relative row epsilon: grows with the rhs and with the
            // largest *finite* activity magnitude the row's bounds allow
            // (an unbounded activity must not produce an infinite epsilon,
            // which would mark every such row redundant).
            let amag = [min_act, max_act]
                .into_iter()
                .filter(|a| a.is_finite())
                .fold(0.0f64, |acc, a| acc.max(a.abs()));
            let eps = FEAS_TOL * (1.0 + rhs.abs() + amag);
            match cmp {
                Cmp::Le => {
                    if max_act <= rhs + eps {
                        live_rows[r] = false;
                        changed = true;
                    } else if min_act > rhs + eps {
                        return Err(SolverError::Infeasible);
                    }
                }
                Cmp::Ge => {
                    if min_act >= rhs - eps {
                        live_rows[r] = false;
                        changed = true;
                    } else if max_act < rhs - eps {
                        return Err(SolverError::Infeasible);
                    }
                }
                Cmp::Eq => {
                    if min_act > rhs + eps || max_act < rhs - eps {
                        return Err(SolverError::Infeasible);
                    }
                    // Equalities are only droppable when both sides pin it.
                    if (min_act - rhs).abs() <= eps && (max_act - rhs).abs() <= eps {
                        live_rows[r] = false;
                        changed = true;
                    }
                }
            }
        }
    }

    // Assemble the reduced model.
    let mut map = Vec::with_capacity(m.vars.len());
    let mut reduced = Model::new(m.sense);
    for (j, v) in m.vars.iter().enumerate() {
        match fixed[j] {
            Some(val) => map.push(VarMap::Fixed(val)),
            None => {
                let kind = if v.integer {
                    crate::VarKind::Integer
                } else {
                    crate::VarKind::Continuous
                };
                let id = reduced.add_var(v.name.clone(), kind, v.lo, v.hi, v.cost);
                map.push(VarMap::Kept(id.index()));
            }
        }
    }
    for (r, c) in m.constrs.iter().enumerate() {
        if !live_rows[r] {
            continue;
        }
        let terms: Vec<_> = c
            .terms
            .iter()
            .map(|&(v, a)| match map[v as usize] {
                VarMap::Kept(j) => (crate::VarId(j as u32), a),
                VarMap::Fixed(_) => unreachable!("fixed vars were folded out"),
            })
            .collect();
        reduced.add_constr(terms, c.cmp, c.rhs);
    }

    Ok(Presolved {
        model: reduced,
        map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, Model, Sense, VarKind};

    #[test]
    fn fixed_vars_are_folded() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 2.0, 2.0, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 10.0, 1.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.model.var_count(), 1);
        // Row became y >= 3: a singleton, folded into y's bound.
        assert_eq!(p.model.constr_count(), 0);
        assert_eq!(p.model.vars[0].lo, 3.0);
        let expanded = p.expand(&[3.0]);
        assert_eq!(expanded, vec![2.0, 3.0]);
        assert_eq!(p.reduce(&[2.0, 3.0]), vec![3.0]);
    }

    #[test]
    fn singleton_row_tightens_integer_bound() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0, 1.0);
        m.add_constr(vec![(x, 2.0)], Cmp::Le, 5.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.model.constr_count(), 0);
        assert_eq!(p.model.vars[0].hi, 2.0); // floor(2.5)
    }

    #[test]
    fn redundant_row_dropped() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 5.0); // always true
        let p = presolve(&m).unwrap();
        assert_eq!(p.model.constr_count(), 0);
    }

    #[test]
    fn impossible_row_is_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constr(vec![(x, 1.0)], Cmp::Ge, 3.0);
        assert_eq!(presolve(&m).unwrap_err(), SolverError::Infeasible);
    }

    #[test]
    fn empty_row_consistency() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 1.0, 1.0, 1.0);
        // After substitution: 0 >= 2 - 1 -> infeasible.
        m.add_constr(vec![(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(presolve(&m).unwrap_err(), SolverError::Infeasible);
    }

    #[test]
    fn fractional_fixed_integer_is_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", VarKind::Integer, 0.5, 0.5, 1.0);
        assert_eq!(presolve(&m).unwrap_err(), SolverError::Infeasible);
    }

    #[test]
    fn identity_keeps_everything() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
        let p = identity(&m);
        assert_eq!(p.model.var_count(), 2);
        assert_eq!(p.model.constr_count(), 1);
        assert_eq!(p.expand(&[0.25, 0.5]), vec![0.25, 0.5]);
    }

    #[test]
    fn chained_fixations_cascade() {
        // x fixed -> row becomes singleton on y -> y gets fixed by Eq row.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 1.0, 1.0, 0.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 10.0, 0.0);
        let z = m.add_var("z", VarKind::Continuous, 0.0, 10.0, 1.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0); // y = 3
        m.add_constr(vec![(y, 1.0), (z, 1.0)], Cmp::Ge, 5.0); // z >= 2
        let p = presolve(&m).unwrap();
        assert_eq!(p.model.var_count(), 1); // only z remains
        assert_eq!(p.model.vars[0].lo, 2.0);
        let expanded = p.expand(&[2.0]);
        assert_eq!(expanded, vec![1.0, 3.0, 2.0]);
    }
}
