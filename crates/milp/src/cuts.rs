//! Cutting-plane separation for the branch-and-bound search.
//!
//! Two families, both separated from the model structure alone (no
//! callback interface — the search calls [`separate`] with the current
//! LP point and appends the returned rows via `Model::add_constr`):
//!
//! * **Knapsack cover cuts** from `Σ a_j x_j ≤ b` rows whose support is
//!   all-binary with positive coefficients (the budget/cardinality rows
//!   of the placement MIPs and the knapsack rows of the test zoo): a
//!   minimal cover `C` (`Σ_{j∈C} a_j > b`) yields `Σ_{j∈C} x_j ≤ |C|−1`,
//!   extended by every variable at least as heavy as the heaviest cover
//!   member.
//! * **Flow-cover cardinality cuts** from the MECF/LP2 structure:
//!   variable-upper-bound rows `Σ_{e∈p_t} x_e − δ_t ≥ 0` (δ_t ∈ [0,1])
//!   linked by a coverage row `Σ_t v_t δ_t ≥ b`. Each edge carries
//!   `load(e) = Σ_{t: e∈p_t} v_t`; any integer-feasible point satisfies
//!   `Σ_e load(e)·x_e ≥ b`, so at least `r` devices are needed, where
//!   `r` is the minimal number of top loads summing to `b` — the
//!   cardinality cut `Σ_{e∈E} x_e ≥ r`. Per heavy edge `e` the lifted
//!   variant `Σ_{f≠e} x_f ≥ r_{−e} − (r_{−e} − r + 1)·x_e` encodes the
//!   stricter requirement `r_{−e}` that holds once `e` is forbidden
//!   (valid by the same top-load argument applied to `E∖{e}`, and equal
//!   to the cardinality bound `r − 1` on the remaining edges when
//!   `x_e = 1`).
//!
//! Separation is *violation-driven*: a cut is returned only when the
//! current LP point violates it by more than [`MIN_VIOLATION`], so
//! re-separating after the cut was added (and the LP re-solved) can
//! never emit a duplicate — the re-solved point satisfies it.

use crate::model::{Cmp, Model, VarId};
use crate::tol;

/// Minimum violation (in row units, normalized by `max(1, |rhs|)`) for a
/// cut to be worth adding. Below this the dual simplex would repair it in
/// a pivot or two while every later node pays the extra row forever.
const MIN_VIOLATION: f64 = 1e-4;

/// Maximum lifted per-edge variants emitted per coverage row and round.
const MAX_LIFTED: usize = 8;

/// One separated cut, in the same terms as `Model::add_constr`.
#[derive(Debug, Clone)]
pub(crate) struct Cut {
    pub terms: Vec<(VarId, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
    /// Normalized violation at the separating LP point (larger = deeper).
    pub violation: f64,
}

/// Separates all supported cut families at LP point `x`, most violated
/// first, truncated to `max_cuts`.
pub(crate) fn separate(model: &Model, x: &[f64], max_cuts: usize) -> Vec<Cut> {
    let mut cuts = Vec::new();
    cover_cuts(model, x, &mut cuts);
    flow_cover_cuts(model, x, &mut cuts);
    cuts.sort_by(|a, b| {
        b.violation
            .partial_cmp(&a.violation)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    cuts.truncate(max_cuts);
    cuts
}

fn is_binary(model: &Model, j: usize) -> bool {
    let v = &model.vars[j];
    v.integer && v.lo == 0.0 && v.hi == 1.0
}

/// Knapsack cover separation over all-binary positive `≤` rows.
fn cover_cuts(model: &Model, x: &[f64], out: &mut Vec<Cut>) {
    'rows: for c in &model.constrs {
        if c.cmp != Cmp::Le || c.rhs <= 0.0 || c.terms.len() < 2 {
            continue;
        }
        for &(j, a) in &c.terms {
            if a <= 0.0 || !is_binary(model, j as usize) {
                continue 'rows;
            }
        }
        // Greedy cover: take items by descending x* (ties: heavier
        // weight) until the weights exceed the capacity.
        let mut items: Vec<(u32, f64)> = c.terms.clone();
        items.sort_by(|&(i, ai), &(j, aj)| {
            let (xi, xj) = (x[i as usize], x[j as usize]);
            xj.partial_cmp(&xi)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(aj.partial_cmp(&ai).unwrap_or(std::cmp::Ordering::Equal))
                .then(i.cmp(&j))
        });
        let mut cover: Vec<(u32, f64)> = Vec::new();
        let mut wsum = 0.0;
        for &(j, a) in &items {
            cover.push((j, a));
            wsum += a;
            if wsum > c.rhs + tol::FEAS_REL * (1.0 + c.rhs) {
                break;
            }
        }
        if wsum <= c.rhs + tol::FEAS_REL * (1.0 + c.rhs) {
            continue; // the whole row fits: no cover exists
        }
        // Minimalize: drop members (lightest x* first — the tail of the
        // greedy order) while the remainder still overflows.
        let mut keep = vec![true; cover.len()];
        for i in (0..cover.len()).rev() {
            if wsum - cover[i].1 > c.rhs + tol::FEAS_REL * (1.0 + c.rhs) {
                keep[i] = false;
                wsum -= cover[i].1;
            }
        }
        let cover: Vec<(u32, f64)> = cover
            .into_iter()
            .zip(keep)
            .filter(|&(_, k)| k)
            .map(|(t, _)| t)
            .collect();
        let lhs: f64 = cover.iter().map(|&(j, _)| x[j as usize]).sum();
        let rhs = cover.len() as f64 - 1.0;
        let violation = (lhs - rhs) / rhs.abs().max(1.0);
        if violation <= MIN_VIOLATION {
            continue;
        }
        // Extension: every variable of the row at least as heavy as the
        // heaviest cover member joins the left-hand side (it alone
        // completes any |C|−1 members into an overflow).
        let amax = cover.iter().map(|&(_, a)| a).fold(0.0f64, f64::max);
        let in_cover: Vec<u32> = cover.iter().map(|&(j, _)| j).collect();
        let mut terms: Vec<(VarId, f64)> = cover.iter().map(|&(j, _)| (VarId(j), 1.0)).collect();
        for &(j, a) in &c.terms {
            if a >= amax && !in_cover.contains(&j) {
                terms.push((VarId(j), 1.0));
            }
        }
        out.push(Cut {
            terms,
            cmp: Cmp::Le,
            rhs,
            violation,
        });
    }
}

/// A detected variable-upper-bound row: `Σ_{e∈S} x_e − δ ≥ 0` scaled by
/// any positive factor, with `δ` continuous in `[0,1]`.
struct Vub {
    support: Vec<u32>,
}

/// Flow-cover (cardinality) separation over VUB-linked coverage rows.
fn flow_cover_cuts(model: &Model, x: &[f64], out: &mut Vec<Cut>) {
    // Pass 1: find the VUB rows, keyed by their δ variable.
    let nv = model.vars.len();
    let mut vub: Vec<Option<Vub>> = (0..nv).map(|_| None).collect();
    'rows: for c in &model.constrs {
        if c.cmp != Cmp::Ge || c.rhs != 0.0 || c.terms.is_empty() {
            continue;
        }
        let mut delta: Option<(u32, f64)> = None;
        let mut support: Vec<(u32, f64)> = Vec::new();
        for &(j, a) in &c.terms {
            if a < 0.0 {
                if delta.is_some() {
                    continue 'rows;
                }
                delta = Some((j, -a));
            } else {
                support.push((j, a));
            }
        }
        let Some((d, mag)) = delta else { continue };
        let dv = &model.vars[d as usize];
        if dv.integer || dv.lo != 0.0 || dv.hi != 1.0 {
            continue;
        }
        for &(j, a) in &support {
            if (a - mag).abs() > tol::FEAS_REL * mag || !is_binary(model, j as usize) {
                continue 'rows;
            }
        }
        vub[d as usize] = Some(Vub {
            support: support.into_iter().map(|(j, _)| j).collect(),
        });
    }

    // Pass 2: coverage rows — all-positive Ge rows over VUB deltas.
    'cov: for c in &model.constrs {
        if c.cmp != Cmp::Ge || c.rhs <= 0.0 || c.terms.len() < 2 {
            continue;
        }
        for &(d, v) in &c.terms {
            if v <= 0.0 || vub[d as usize].is_none() {
                continue 'cov;
            }
        }
        // Edge loads under this coverage row.
        let mut load: Vec<f64> = vec![0.0; nv];
        for &(d, v) in &c.terms {
            for &e in &vub[d as usize].as_ref().unwrap().support {
                load[e as usize] += v;
            }
        }
        let edges: Vec<u32> = (0..nv as u32).filter(|&e| load[e as usize] > 0.0).collect();
        if edges.is_empty() {
            continue;
        }
        let mut by_load: Vec<u32> = edges.clone();
        by_load.sort_by(|&a, &b| {
            load[b as usize]
                .partial_cmp(&load[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        // r = minimal number of top loads reaching the target. The
        // feasibility slack mirrors the row-residual contract: a load sum
        // within tolerance of the target counts as covering it.
        let slack = tol::FEAS_REL * (1.0 + c.rhs);
        let min_count = |loads: &mut dyn Iterator<Item = f64>| -> Option<usize> {
            let mut acc = 0.0;
            for (n, l) in loads.enumerate() {
                acc += l;
                if acc + slack >= c.rhs {
                    return Some(n + 1);
                }
            }
            None
        };
        let Some(r) = min_count(&mut by_load.iter().map(|&e| load[e as usize])) else {
            continue; // even all edges cannot cover: the MIP is infeasible
        };
        let xsum: f64 = edges.iter().map(|&e| x[e as usize]).sum();
        let violation = (r as f64 - xsum) / (r as f64).max(1.0);
        if violation > MIN_VIOLATION {
            out.push(Cut {
                terms: edges.iter().map(|&e| (VarId(e), 1.0)).collect(),
                cmp: Cmp::Ge,
                rhs: r as f64,
                violation,
            });
        }
        // Lifted per-edge variants for the heaviest edges: forbidding a
        // heavy edge raises the requirement on the rest to r_{−e}.
        for &e in by_load.iter().take(MAX_LIFTED.min(r)) {
            let Some(r_minus) = min_count(
                &mut by_load
                    .iter()
                    .filter(|&&f| f != e)
                    .map(|&f| load[f as usize]),
            ) else {
                continue; // e is indispensable; presolve territory
            };
            if r_minus <= r {
                continue; // identical to (or weaker than) the cardinality cut
            }
            // Σ_{f≠e} x_f + (r_{−e} − r + 1)·x_e ≥ r_{−e}: at x_e = 0 the
            // rest must reach r_{−e}; at x_e = 1 the requirement relaxes
            // to r − 1, the cardinality bound on the remaining edges.
            let coef = r_minus as f64 - r as f64 + 1.0;
            let lhs: f64 = edges
                .iter()
                .filter(|&&f| f != e)
                .map(|&f| x[f as usize])
                .sum::<f64>()
                + coef * x[e as usize];
            let violation = (r_minus as f64 - lhs) / (r_minus as f64).max(1.0);
            if violation <= MIN_VIOLATION {
                continue;
            }
            let mut terms: Vec<(VarId, f64)> = edges
                .iter()
                .filter(|&&f| f != e)
                .map(|&f| (VarId(f), 1.0))
                .collect();
            terms.push((VarId(e), coef));
            out.push(Cut {
                terms,
                cmp: Cmp::Ge,
                rhs: r_minus as f64,
                violation,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sense, VarKind};

    #[test]
    fn cover_cut_separates_fractional_knapsack() {
        // 3a + 4b + 2c ≤ 6; LP point (1, 0.75, 1) violates the cover
        // {a, b}: x_a + x_b ≤ 1.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", VarKind::Binary, 0.0, 1.0, 10.0);
        let b = m.add_var("b", VarKind::Binary, 0.0, 1.0, 13.0);
        let c = m.add_var("c", VarKind::Binary, 0.0, 1.0, 7.0);
        m.add_constr(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0);
        let cuts = separate(&m, &[1.0, 0.75, 1.0], 16);
        assert!(!cuts.is_empty());
        let cut = &cuts[0];
        assert_eq!(cut.cmp, Cmp::Le);
        // The separating point must violate the returned cut.
        let lhs: f64 = cut
            .terms
            .iter()
            .map(|&(v, c)| c * [1.0, 0.75, 1.0][v.index()])
            .sum();
        assert!(lhs > cut.rhs + 1e-6);
        // A feasible integer point must satisfy it (validity spot check).
        for point in [[1.0, 0.0, 1.0], [0.0, 1.0, 1.0], [0.0, 0.0, 0.0]] {
            let lhs: f64 = cut.terms.iter().map(|&(v, c)| c * point[v.index()]).sum();
            assert!(lhs <= cut.rhs + 1e-9);
        }
    }

    #[test]
    fn cardinality_cut_from_lp2_structure() {
        // Two edges with load 10 each, target 15: r = 2, but the LP can
        // sit at x = (0.75, 0.75). The cardinality cut x_0 + x_1 ≥ 2
        // must be separated at that point.
        let mut m = Model::new(Sense::Minimize);
        let x0 = m.add_var("x0", VarKind::Binary, 0.0, 1.0, 1.0);
        let x1 = m.add_var("x1", VarKind::Binary, 0.0, 1.0, 1.0);
        let d0 = m.add_var("d0", VarKind::Continuous, 0.0, 1.0, 0.0);
        let d1 = m.add_var("d1", VarKind::Continuous, 0.0, 1.0, 0.0);
        m.add_constr(vec![(x0, 1.0), (d0, -1.0)], Cmp::Ge, 0.0);
        m.add_constr(vec![(x1, 1.0), (d1, -1.0)], Cmp::Ge, 0.0);
        m.add_constr(vec![(d0, 10.0), (d1, 10.0)], Cmp::Ge, 15.0);
        let cuts = separate(&m, &[0.75, 0.75, 0.75, 0.75], 16);
        let card = cuts
            .iter()
            .find(|c| c.cmp == Cmp::Ge && c.rhs == 2.0 && c.terms.len() == 2)
            .expect("cardinality cut separated");
        assert!(card.terms.iter().all(|&(_, c)| c == 1.0));
    }

    #[test]
    fn satisfied_point_separates_nothing() {
        let mut m = Model::new(Sense::Minimize);
        let x0 = m.add_var("x0", VarKind::Binary, 0.0, 1.0, 1.0);
        let x1 = m.add_var("x1", VarKind::Binary, 0.0, 1.0, 1.0);
        let d0 = m.add_var("d0", VarKind::Continuous, 0.0, 1.0, 0.0);
        m.add_constr(vec![(x0, 1.0), (x1, 1.0), (d0, -1.0)], Cmp::Ge, 0.0);
        m.add_constr(vec![(d0, 10.0)], Cmp::Ge, 5.0);
        // Integral and feasible: no family may fire.
        assert!(separate(&m, &[1.0, 0.0, 1.0], 16).is_empty());
    }

    /// Builds the LP2 shape (per-edge VUB + one coverage row) for unit
    /// tests: one binary and one delta per "edge", coverage `Σ load·δ ≥ b`.
    fn lp2_shape(loads: &[f64], b: f64) -> Model {
        let n = loads.len();
        let mut m = Model::new(Sense::Minimize);
        let xs: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Binary, 0.0, 1.0, 1.0))
            .collect();
        let ds: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("d{i}"), VarKind::Continuous, 0.0, 1.0, 0.0))
            .collect();
        for i in 0..n {
            m.add_constr(vec![(xs[i], 1.0), (ds[i], -1.0)], Cmp::Ge, 0.0);
        }
        let cov: Vec<_> = ds.iter().zip(loads).map(|(&d, &l)| (d, l)).collect();
        m.add_constr(cov, Cmp::Ge, b);
        m
    }

    /// Checks `cut` at an integer point over the first `n` (binary) vars.
    fn holds_at(cut: &Cut, point: &[f64]) -> bool {
        let lhs: f64 = cut
            .terms
            .iter()
            .map(|&(v, c)| {
                let j = v.index();
                c * if j < point.len() { point[j] } else { 0.0 }
            })
            .sum();
        match cut.cmp {
            Cmp::Ge => lhs >= cut.rhs - 1e-9,
            Cmp::Le => lhs <= cut.rhs + 1e-9,
            Cmp::Eq => (lhs - cut.rhs).abs() < 1e-9,
        }
    }

    #[test]
    fn indispensable_edge_is_skipped_not_cut() {
        // Loads 10, 6, 5, target 15: without edge 0 even {1,2} only reach
        // 11 < 15 — edge 0 is indispensable and the lifted loop must skip
        // it rather than emit an unsatisfiable row. Every returned cut
        // must hold at every feasible integer cover.
        let m = lp2_shape(&[10.0, 6.0, 5.0], 15.0);
        let cuts = separate(&m, &[0.5, 0.5, 0.5, 0.5, 0.5, 0.5], 16);
        assert!(!cuts.is_empty(), "cardinality cut expected");
        for point in [[1.0, 1.0, 0.0], [1.0, 0.0, 1.0], [1.0, 1.0, 1.0]] {
            for cut in &cuts {
                assert!(holds_at(cut, &point), "cut {cut:?} at {point:?}");
            }
        }
    }

    #[test]
    fn lifted_cut_fires_and_is_valid_on_enumerated_covers() {
        // Loads 8, 5, 4, 3, target 12: r = 2 ({8,5}); without edge 0 the
        // requirement rises to r_{−0} = 3 ({5,4,3}), so the lifted cut
        // x1 + x2 + x3 + 2·x0 ≥ 3 exists and cuts off points that lean on
        // a fractional heavy edge.
        let m = lp2_shape(&[8.0, 5.0, 4.0, 3.0], 12.0);
        let x = [0.9, 0.1, 0.3, 0.1, 0.9, 0.1, 0.3, 0.1];
        let cuts = separate(&m, &x, 16);
        let lifted = cuts
            .iter()
            .find(|c| c.cmp == Cmp::Ge && c.rhs == 3.0 && c.terms.iter().any(|&(_, co)| co == 2.0))
            .expect("lifted cut separated");
        // Exhaustive validity over the feasible covers of this instance.
        let loads = [8.0, 5.0, 4.0, 3.0];
        for mask in 0u32..16 {
            let point: Vec<f64> = (0..4).map(|i| ((mask >> i) & 1) as f64).collect();
            let covered: f64 = loads.iter().zip(&point).map(|(l, p)| l * p).sum();
            if covered + 1e-9 < 12.0 {
                continue; // infeasible point: cuts owe it nothing
            }
            for cut in &cuts {
                assert!(holds_at(cut, &point), "cut {cut:?} at {point:?}");
            }
        }
        // The separating point must violate the cut it produced.
        assert!(!holds_at(lifted, &[0.9, 0.1, 0.3, 0.1]));
    }
}
