//! The single home of every numerical tolerance in the crate.
//!
//! The solver used to compare against scattered absolute constants
//! (`1e-6`, `1e-9`, `1e-12`) — a latent-wrong-answer bug class the moment
//! cost ranges widen or bounds reach `1e8`. This module defines the
//! *taxonomy* instead: every threshold is a **relative** constant, and the
//! few places that need an absolute epsilon derive it from the magnitude
//! of the quantity being compared (`eps = REL * (1 + |x|)` style) or from
//! the magnitude of the prepared matrix via [`Tol`].
//!
//! Taxonomy (see DESIGN.md "Numerical contract"):
//!
//! * **feasibility** ([`FEAS_REL`]) — how far outside a bound a value may
//!   sit and still count as feasible; always applied per-bound through
//!   [`Tol::feas_eps`].
//! * **optimality** ([`OPT_REL`]) — reduced-cost / objective-improvement
//!   threshold, relative to the objective's magnitude.
//! * **pivot** ([`PIVOT_REL`]) — minimum admissible pivot magnitude in the
//!   ratio test and basis updates, relative to the matrix magnitude.
//! * **drop/snap** ([`DROP_REL`]) — when an extracted value is close
//!   enough to a finite bound to be snapped onto it exactly.
//! * **integrality** ([`INT_REL`]) — when a value counts as integral,
//!   relative to its own magnitude.
//! * **residual** ([`RESIDUAL_REL`]) — the certification threshold for the
//!   relative primal residual `|a·x − b| / (1 + |b| + Σ|a_ij·x_j|)`; being
//!   a *relative* residual it is scale-free and needs no magnitude factor.

/// Relative feasibility tolerance: a value within `FEAS_REL * (1 + |bound|)`
/// of a bound counts as within it.
pub const FEAS_REL: f64 = 1e-7;

/// Relative optimality (reduced-cost) tolerance, scaled by the magnitude
/// of the phase costs actually priced.
pub const OPT_REL: f64 = 1e-9;

/// Relative pivot-admissibility tolerance, scaled by the magnitude of the
/// prepared constraint matrix.
pub const PIVOT_REL: f64 = 1e-9;

/// Relative snap tolerance: extracted values within
/// `DROP_REL * (1 + |bound|)` of a finite bound are returned exactly on it.
pub const DROP_REL: f64 = 1e-9;

/// Relative integrality tolerance: `x` is integral when
/// `|x - round(x)| <= INT_REL * max(1, |x|)`.
pub const INT_REL: f64 = 1e-6;

/// Certification threshold for the relative primal residual. The residual
/// is normalized per row by `1 + |rhs| + Σ|a_ij x_j|`, so this constant is
/// dimensionless and scale-free.
pub const RESIDUAL_REL: f64 = 1e-8;

/// When `hi - lo` is below `FIX_REL * (1 + |lo|)` the variable counts as
/// fixed (presolve).
pub const FIX_REL: f64 = 1e-12;

/// Assumed relative accuracy floor of computed solution values: a row
/// residual below `NOISE_REL * amax * max|x|` is indistinguishable from
/// the roundoff of the basis solves that produced `x` and must not fail a
/// relative residual check. This floor scales with the data actually
/// involved (matrix and solution magnitude) — unlike an absolute `1 +`
/// floor, it does not blind the check on instances whose whole data sits
/// below 1.
pub const NOISE_REL: f64 = 1e-5;

/// Relative tie-breaking epsilon for ratio comparisons (dual ratio test,
/// bound-flip overshoot detection): separates genuinely equal ratios from
/// rounding noise without affecting well-separated ones.
pub const TIE_REL: f64 = 1e-12;

/// Initial Markowitz-style relative pivot threshold for the sparse LU:
/// a pivot candidate must reach this fraction of the column max.
pub const LU_PIVOT_REL: f64 = 0.1;

/// Upper cap for the adaptive Markowitz threshold: the accuracy monitor
/// tightens towards (partial-pivoting-like) stability but never beyond.
pub const LU_PIVOT_REL_MAX: f64 = 0.9;

/// Relative singularity threshold for LU pivots: a pivot below
/// `LU_SINGULAR_REL * max(1, matrix magnitude)` means a singular basis.
pub const LU_SINGULAR_REL: f64 = 1e-12;

/// The per-solve tolerance bundle, derived once from the magnitude of the
/// (scaled) matrix and phase costs at solve entry and threaded through the
/// simplex. All fields are *absolute* epsilons, correct for that solve.
#[derive(Debug, Clone, Copy)]
pub struct Tol {
    /// `max(1, max |a_ij|)` over the prepared (scaled) matrix.
    pub amax: f64,
    /// Base feasibility epsilon; apply per-bound via [`Tol::feas_eps`].
    pub feas: f64,
    /// Reduced-cost threshold for the current pricing pass.
    pub opt: f64,
    /// Minimum admissible pivot magnitude.
    pub pivot: f64,
    /// Relative-residual certification threshold.
    pub residual: f64,
}

impl Tol {
    /// Builds the bundle from the prepared matrix magnitude `amax`
    /// (max |a_ij| including slack columns) and the magnitude of the
    /// costs currently priced, `cmax`.
    pub fn for_magnitudes(amax: f64, cmax: f64) -> Self {
        let amax = amax.max(1.0);
        let cmax = cmax.max(1.0);
        Tol {
            amax,
            feas: FEAS_REL,
            opt: OPT_REL * cmax,
            pivot: PIVOT_REL * amax,
            residual: RESIDUAL_REL,
        }
    }

    /// The absolute feasibility epsilon for a comparison against `bound`.
    #[inline]
    pub fn feas_eps(&self, bound: f64) -> f64 {
        if bound.is_finite() {
            self.feas * (1.0 + bound.abs())
        } else {
            self.feas
        }
    }
}

impl Default for Tol {
    fn default() -> Self {
        Tol::for_magnitudes(1.0, 1.0)
    }
}

/// Absolute integrality epsilon for a value of magnitude `x`.
#[inline]
pub fn int_eps(x: f64) -> f64 {
    INT_REL * x.abs().max(1.0)
}

/// Whether `x` counts as integral at its own scale.
#[inline]
pub fn is_int(x: f64) -> bool {
    (x - x.round()).abs() <= int_eps(x)
}

/// Absolute objective-comparison epsilon at objective magnitude `v`:
/// used for incumbent acceptance, pruning, and bound strengthening.
#[inline]
pub fn obj_eps(v: f64) -> f64 {
    OPT_REL * v.abs().max(1.0)
}

/// Absolute snap epsilon for clamping an extracted `value` onto `bound`:
/// relative to the larger of the two magnitudes, with no absolute floor.
/// A floored window is a wrong-answer bug on small-scale variables — a
/// variable resting at 0 whose bound is 2^-30 sits "within 1e-9" of that
/// bound, and snapping it there is a 100% move at the variable's own
/// scale (a full unit once unscaled).
#[inline]
pub fn snap_eps(value: f64, bound: f64) -> f64 {
    DROP_REL * value.abs().max(bound.abs())
}

/// Absolute fixed-variable epsilon at lower bound `lo` (presolve).
#[inline]
pub fn fix_eps(lo: f64) -> f64 {
    FIX_REL * (1.0 + lo.abs())
}

/// Relative optimality gap between an incumbent objective `best` and a
/// dual bound `bound` (minimization: `bound ≤ best` when both are exact).
///
/// The denominator is `max(|best|, |bound|, 1)` — relative to the larger
/// magnitude so the gap is symmetric in sign conventions, with a unit
/// floor so `best ≈ 0` (common once an objective offset cancels) does not
/// divide by ~0 and report a huge gap for roundoff noise. Negative
/// differences (bound numerically above the incumbent) clamp to 0; a
/// non-finite bound means "no bound" and reports an infinite gap. This is
/// the single gap definition used by branch-and-bound pruning and final
/// gap reporting — the inline `(best − bound.max(f64::MIN)) / |best|`
/// form it replaces underflowed to a meaningless ratio for `best < 0`
/// and unbounded-below node bounds.
#[inline]
pub fn rel_gap(best: f64, bound: f64) -> f64 {
    if !bound.is_finite() {
        return f64::INFINITY;
    }
    ((best - bound) / best.abs().max(bound.abs()).max(1.0)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feas_eps_grows_with_bound_magnitude() {
        let t = Tol::default();
        assert!((t.feas_eps(0.0) - FEAS_REL).abs() < 1e-18);
        assert!(t.feas_eps(1e8) > 1.0e1 * FEAS_REL * 1e6);
        assert!(t.feas_eps(f64::INFINITY) == FEAS_REL);
    }

    #[test]
    fn integrality_is_scale_relative() {
        // 1e-7 off at unit scale: integral.
        assert!(is_int(3.0 + 1e-7));
        // Same absolute slack at 1e9 scale: still integral (relative).
        assert!(is_int(1e9 + 1.0e2));
        // Clearly fractional stays fractional.
        assert!(!is_int(3.5));
    }

    #[test]
    fn snap_eps_is_relative_and_floorless() {
        assert!(snap_eps(1e8 - 0.01, 1e8) > 1e-2);
        assert!(snap_eps(1e8 - 0.01, 1e8) < 1.0);
        // No absolute floor: a value at 0 never reaches a tiny bound.
        let b = 2f64.powi(-30);
        assert!(snap_eps(0.0, b) < b);
    }

    #[test]
    fn rel_gap_is_scale_relative_and_sign_safe() {
        // Plain positive case: 1% gap at unit scale.
        assert!((rel_gap(1.0, 0.99) - 0.01).abs() < 1e-12);
        // best ≈ 0 with a small absolute slack: the unit floor keeps the
        // gap small instead of dividing by ~0.
        assert!(rel_gap(1e-12, -1e-10) < 1e-9);
        // Negative objectives: gap measured against the larger magnitude.
        assert!((rel_gap(-100.0, -101.0) - 1.0 / 101.0).abs() < 1e-12);
        // Bound numerically above the incumbent clamps to zero.
        assert_eq!(rel_gap(5.0, 5.0 + 1e-9), 0.0);
        // Unbounded-below node bound: no finite gap claim.
        assert_eq!(rel_gap(1.0, f64::NEG_INFINITY), f64::INFINITY);
        assert_eq!(rel_gap(1.0, f64::NAN), f64::INFINITY);
    }

    #[test]
    fn tol_scales_with_matrix_magnitude() {
        let small = Tol::for_magnitudes(1.0, 1.0);
        let big = Tol::for_magnitudes(1e6, 1e4);
        assert!(big.pivot > small.pivot);
        assert!(big.opt > small.opt);
        // The relative residual threshold is scale-free.
        assert!(big.residual == small.residual);
    }
}
