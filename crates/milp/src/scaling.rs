//! Geometric-mean + equilibration scaling for the simplex core.
//!
//! Badly conditioned instances — coefficient magnitudes spanning many
//! orders — push the simplex's pivot and feasibility comparisons outside
//! the range where fixed relative tolerances are meaningful. This module
//! computes per-row factors `r_i` and per-column factors `c_j` so the
//! scaled matrix `a'_ij = a_ij · r_i · c_j` has entries near unit
//! magnitude: a few geometric-mean sweeps (each sweep sets the factor so
//! the geometric mean of the scaled row/column becomes 1) followed by one
//! equilibration sweep (max-normalizing rows, then columns).
//!
//! Every factor is rounded to the nearest **power of two**, so scaling and
//! unscaling multiply mantissas by exact values and introduce *zero*
//! rounding error — a scaled solve of an exactly-representable model is
//! bit-comparable to an unscaled solve of the pre-scaled model. Factors
//! are clamped to `2^±40`.
//!
//! Scaling is derived from the constraint matrix alone (not costs, bounds
//! or right-hand sides), so the rhs/bound/cost perturbations driving the
//! warm-start sweep chains leave the scaling — and its fingerprint —
//! unchanged, and a warm basis stays reusable across a chain. A
//! coefficient edit changes the fingerprint and forces a cold solve.
//!
//! Well-scaled matrices (the common case for the paper's PPM/MECF
//! programs) take the identity shortcut: [`compute`] returns `None` and
//! the simplex borrows the model's column store with zero copies.

use crate::model::{fnv_step, Model, FNV_OFFSET};

/// Entry-magnitude spread (max/min ratio, and absolute magnitude) beyond
/// which scaling engages, as a power of two. Below it the matrix is
/// considered well scaled and the identity shortcut applies.
const WELL_SCALED_POW: i32 = 16;

/// Clamp for the scaling exponents: factors stay within `2^±40`.
const MAX_POW: i32 = 40;

/// Number of geometric-mean sweeps before the equilibration sweep.
const GM_PASSES: usize = 3;

/// Power-of-two row/column scaling of a model's constraint matrix.
#[derive(Debug, Clone)]
pub(crate) struct Scaling {
    /// Per-row factor `r_i` (an exact power of two).
    pub row: Vec<f64>,
    /// Per-structural-column factor `c_j` (an exact power of two).
    pub col: Vec<f64>,
    /// FNV-1a fingerprint over all exponents, carried by
    /// [`crate::LpWarmStart`] so a warm basis is only installed into a
    /// tableau scaled the same way it was captured from.
    pub fp: u64,
}

/// Fingerprint representing "no scaling" (identity factors everywhere).
pub(crate) const IDENTITY_FP: u64 = 0;

/// Computes the scaling for `model`'s constraint matrix, or `None` when
/// the matrix is already well scaled (or empty).
pub(crate) fn compute(model: &Model) -> Option<Scaling> {
    let m = model.constrs.len();
    let n = model.vars.len();
    if m == 0 || n == 0 {
        return None;
    }
    // Well-scaled shortcut on the raw magnitudes.
    let mut amax = 0.0f64;
    let mut amin = f64::INFINITY;
    for col in &model.cols {
        for &(_, a) in col {
            let v = a.abs();
            amax = amax.max(v);
            amin = amin.min(v);
        }
    }
    if amax == 0.0 {
        return None;
    }
    let spread = (amax / amin).log2();
    let mag = amax.log2().abs().max(amin.log2().abs());
    if spread <= WELL_SCALED_POW as f64 && mag <= WELL_SCALED_POW as f64 {
        return None;
    }

    // Geometric-mean sweeps in log2 space over the column store (columns)
    // and the row lists (rows).
    let mut rlog = vec![0.0f64; m];
    let mut clog = vec![0.0f64; n];
    for _ in 0..GM_PASSES {
        for (i, c) in model.constrs.iter().enumerate() {
            if c.terms.is_empty() {
                continue;
            }
            let sum: f64 = c
                .terms
                .iter()
                .map(|&(v, a)| a.abs().log2() + clog[v as usize])
                .sum();
            rlog[i] = -sum / c.terms.len() as f64;
        }
        for (j, col) in model.cols.iter().enumerate() {
            if col.is_empty() {
                continue;
            }
            let sum: f64 = col
                .iter()
                .map(|&(r, a)| a.abs().log2() + rlog[r as usize])
                .sum();
            clog[j] = -sum / col.len() as f64;
        }
    }
    // Equilibration sweep: max-normalize rows, then columns.
    for (i, c) in model.constrs.iter().enumerate() {
        let mx = c
            .terms
            .iter()
            .map(|&(v, a)| a.abs().log2() + clog[v as usize] + rlog[i])
            .fold(f64::NEG_INFINITY, f64::max);
        if mx.is_finite() {
            rlog[i] -= mx;
        }
    }
    for (j, col) in model.cols.iter().enumerate() {
        let mx = col
            .iter()
            .map(|&(r, a)| a.abs().log2() + rlog[r as usize] + clog[j])
            .fold(f64::NEG_INFINITY, f64::max);
        if mx.is_finite() {
            clog[j] -= mx;
        }
    }

    // Round to integer powers of two, clamped.
    let rpow: Vec<i32> = rlog
        .iter()
        .map(|&l| (l.round() as i32).clamp(-MAX_POW, MAX_POW))
        .collect();
    let cpow: Vec<i32> = clog
        .iter()
        .map(|&l| (l.round() as i32).clamp(-MAX_POW, MAX_POW))
        .collect();
    if rpow.iter().all(|&p| p == 0) && cpow.iter().all(|&p| p == 0) {
        return None;
    }

    let mut fp = FNV_OFFSET;
    for &p in rpow.iter().chain(&cpow) {
        fp = fnv_step(fp, p as i64 as u64);
    }
    // Reserve the identity fingerprint for the unscaled path.
    if fp == IDENTITY_FP {
        fp = 1;
    }
    Some(Scaling {
        row: rpow.iter().map(|&p| (p as f64).exp2()).collect(),
        col: cpow.iter().map(|&p| (p as f64).exp2()).collect(),
        fp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, Sense, VarKind};

    fn toy(coeffs: &[&[f64]]) -> Model {
        let mut m = Model::new(Sense::Minimize);
        let n = coeffs[0].len();
        let ids: Vec<_> = (0..n)
            .map(|j| m.add_var(format!("x{j}"), VarKind::Continuous, 0.0, 10.0, 1.0))
            .collect();
        for row in coeffs {
            let terms: Vec<_> = row
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a != 0.0)
                .map(|(j, &a)| (ids[j], a))
                .collect();
            m.add_constr(terms, Cmp::Le, 1.0);
        }
        m
    }

    #[test]
    fn well_scaled_matrix_takes_identity_shortcut() {
        let m = toy(&[&[1.0, 2.0], &[0.5, 3.0]]);
        assert!(compute(&m).is_none());
    }

    #[test]
    fn wide_magnitudes_get_pow2_factors_near_unit() {
        let m = toy(&[&[1e8, 2e-6], &[4e8, 1e-6]]);
        let s = compute(&m).expect("scaling should engage");
        // All factors are exact powers of two.
        for &f in s.row.iter().chain(&s.col) {
            assert_eq!(f, (f.log2().round()).exp2(), "factor {f} not a pow2");
        }
        // Scaled entries end up within a few powers of two of 1.
        for (i, c) in m.constrs.iter().enumerate() {
            for &(v, a) in &c.terms {
                let scaled = (a * s.row[i] * s.col[v as usize]).abs().log2().abs();
                assert!(scaled <= 4.0, "scaled entry 2^{scaled} too far from 1");
            }
        }
    }

    #[test]
    fn fingerprint_tracks_matrix_edits_only() {
        let mut m = toy(&[&[1e8, 2e-6], &[4e8, 1e-6]]);
        let fp0 = compute(&m).unwrap().fp;
        // rhs edits do not change the scaling fingerprint.
        let c0 = m.constr(0);
        m.set_rhs(c0, 5.0);
        assert_eq!(compute(&m).unwrap().fp, fp0);
        // A coefficient edit does.
        let x0 = m.var(0);
        let x1 = m.var(1);
        m.set_constr(c0, vec![(x0, 1e2), (x1, 2e-6)]);
        assert_ne!(compute(&m).map(|s| s.fp).unwrap_or(IDENTITY_FP), fp0);
    }
}
