//! A small, self-contained LP / mixed-integer-linear-programming solver.
//!
//! The CoNEXT 2005 paper solves its 0–1 programs with CPLEX ("To solve this
//! 0−1 MIP problem we use CPLEX solver", Section 4.4). No ILP solver is
//! available offline, so this crate implements the required machinery from
//! scratch:
//!
//! * [`Model`] — a builder for linear programs with per-variable bounds and
//!   integrality marks, linear constraints (`≤`, `=`, `≥`) and a
//!   minimization or maximization objective;
//! * a **bounded-variable revised primal simplex** over a size-dispatched
//!   basis backend ([`lu`]: Markowitz-ordered sparse LU with product-form
//!   eta updates and hyper-sparse FTRAN/BTRAN at scale, a dense explicit
//!   inverse below ~200 rows), devex pricing over a candidate list with a
//!   Bland anti-cycling fallback, and an artificial-variable phase 1
//!   ([`Model::solve_lp`]);
//! * a **branch-and-bound** driver for the integer variables with
//!   most-fractional branching (pseudocost-scored tie-breaking), best-bound
//!   node selection with depth-first plunging, optional integral-objective
//!   bound strengthening, a rounding incumbent heuristic, and node/time
//!   limits ([`Model::solve_mip`]);
//! * a light **presolve** (fixed-variable substitution, empty/redundant row
//!   elimination), applied inside [`Model::solve_mip`].
//!
//! The solver targets the instance sizes of the paper and its scale-up
//! experiments (tens of binaries, thousands of continuous variables and
//! rows): the constraint matrix lives in a compressed sparse-column store
//! shared by presolve and both simplex variants, all linear algebra is
//! sparse, there is no `unsafe`, and every routine is unit-tested against
//! brute force (and the LU kernels against a dense inverse) on small
//! instances.
//!
//! # Example
//!
//! ```
//! use milp::{Model, Sense, Cmp, VarKind};
//!
//! // min x + y  s.t.  x + 2y >= 3,  3x + y >= 4,  x,y >= 0
//! let mut m = Model::new(Sense::Minimize);
//! let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
//! let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
//! m.add_constr(vec![(x, 1.0), (y, 2.0)], milp::Cmp::Ge, 3.0);
//! m.add_constr(vec![(x, 3.0), (y, 1.0)], milp::Cmp::Ge, 4.0);
//! let sol = m.solve_lp().unwrap();
//! assert!((sol.objective - 2.0).abs() < 1e-6); // x = 1, y = 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch_bound;
mod cuts;
mod error;
pub mod lu;
mod model;
mod presolve;
mod scaling;
mod simplex;
mod solution;
pub mod tol;

pub use branch_bound::{MipOptions, MipOutcome, MipWarmStart};
pub use error::SolverError;
pub use model::{Cmp, ConstrId, Model, Sense, VarId, VarKind};
pub use simplex::LpWarmStart;
pub use solution::{Solution, SolveStatus};

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SolverError>;

/// Feasibility tolerance at unit scale: a constraint is satisfied when
/// violated by less than this amount. Kept as a re-export of
/// [`tol::FEAS_REL`] for API compatibility; internal comparisons apply it
/// relative to the magnitude of the quantity compared (see [`tol`]).
pub const FEAS_TOL: f64 = tol::FEAS_REL;

/// Integrality tolerance at unit scale: a value within this distance of an
/// integer is considered integral by the branch-and-bound. Re-export of
/// [`tol::INT_REL`]; internal checks use the scale-relative
/// [`tol::is_int`].
pub const INT_TOL: f64 = tol::INT_REL;
